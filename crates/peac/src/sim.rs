//! The executing PEAC simulator.
//!
//! A routine runs its virtual subgrid loop over real node memory: every
//! vector lane is computed, so translation validation can compare the
//! bytes a compiled program produces against the NIR reference
//! evaluator. Cycle accounting comes from [`crate::costs`] and is
//! deterministic.
//!
//! Arrays are allocated padded to a whole number of vectors; the last
//! iteration computes the pad lanes too (harmlessly — each array has its
//! own pad region, and IEEE arithmetic on garbage lanes cannot fault),
//! exactly like real vector hardware running a full final beat.

use crate::costs;
use crate::isa::{Instr, Mem, Operand, Routine, VLEN};
use crate::PeacError;

/// A processing node's local memory: a flat `f64` heap.
#[derive(Debug, Clone, Default)]
pub struct NodeMemory {
    heap: Vec<f64>,
}

/// A base offset into a [`NodeMemory`] heap, as passed over the IFIFO to
/// a PEAC routine.
pub type Ptr = usize;

impl NodeMemory {
    /// An empty node memory.
    pub fn new() -> Self {
        NodeMemory { heap: Vec::new() }
    }

    /// Allocate a buffer initialised from `data`, padded to a whole
    /// number of vectors. Returns its base pointer.
    pub fn alloc(&mut self, data: &[f64]) -> Ptr {
        let base = self.heap.len();
        self.heap.extend_from_slice(data);
        let pad = (VLEN - data.len() % VLEN) % VLEN;
        self.heap.extend(std::iter::repeat_n(0.0, pad));
        base
    }

    /// Allocate an uninitialised (zeroed) buffer of `n` elements.
    pub fn alloc_zeroed(&mut self, n: usize) -> Ptr {
        let base = self.heap.len();
        let padded = n.div_ceil(VLEN) * VLEN;
        self.heap.extend(std::iter::repeat_n(0.0, padded));
        base
    }

    /// Read `n` elements starting at `base`.
    pub fn read(&self, base: Ptr, n: usize) -> Vec<f64> {
        self.heap[base..base + n].to_vec()
    }

    /// Overwrite `n` elements starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds.
    pub fn write(&mut self, base: Ptr, data: &[f64]) {
        self.heap[base..base + data.len()].copy_from_slice(data);
    }

    /// Total words allocated.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Execution statistics for one routine dispatch on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Virtual subgrid loop iterations executed.
    pub iterations: u64,
    /// Node cycles consumed (deterministic, from the cost model).
    pub cycles: u64,
    /// Floating-point operations over the *valid* (unpadded) elements.
    pub flops: u64,
    /// Instructions executed (body length × iterations).
    pub instructions: u64,
}

impl ExecStats {
    /// Accumulate another dispatch's statistics.
    pub fn add(&mut self, other: ExecStats) {
        self.iterations += other.iterations;
        self.cycles += other.cycles;
        self.flops += other.flops;
        self.instructions += other.instructions;
    }
}

/// Execute a routine's virtual subgrid loop over `n_elems` elements.
///
/// `ptr_args` are base pointers (one per pointer argument), `scalar_args`
/// fill the scalar registers. All pointer streams advance one vector per
/// iteration.
///
/// # Errors
///
/// Fails when arguments do not match the routine signature or a pointer
/// stream runs off the heap.
pub fn run_routine(
    routine: &Routine,
    mem: &mut NodeMemory,
    ptr_args: &[Ptr],
    scalar_args: &[f64],
    n_elems: usize,
) -> Result<ExecStats, PeacError> {
    if ptr_args.len() != routine.nargs_ptr() {
        return Err(PeacError::Fault(format!(
            "routine '{}' expects {} pointer arguments, got {}",
            routine.name(),
            routine.nargs_ptr(),
            ptr_args.len()
        )));
    }
    if scalar_args.len() != routine.nargs_scalar() {
        return Err(PeacError::Fault(format!(
            "routine '{}' expects {} scalar arguments, got {}",
            routine.name(),
            routine.nargs_scalar(),
            scalar_args.len()
        )));
    }
    let iterations = n_elems.div_ceil(VLEN);
    let mut pointers: Vec<usize> = ptr_args.to_vec();
    let mut spill = vec![[0.0f64; VLEN]; routine.spill_slots() as usize];
    let mut vregs = [[0.0f64; VLEN]; crate::isa::NUM_VREGS as usize];

    let body = routine.body();
    for _ in 0..iterations {
        // Per-iteration pointer cursor: each stream advances once per
        // iteration regardless of how many instructions touch it —
        // within an iteration all touches of aPn see the same vector.
        for i in body {
            step(i, mem, &pointers, scalar_args, &mut vregs, &mut spill)?;
        }
        for p in &mut pointers {
            *p += VLEN;
        }
    }

    let flops_per_elem: u64 = body.iter().map(Instr::flops_per_elem).sum();
    Ok(ExecStats {
        iterations: iterations as u64,
        cycles: iterations as u64 * costs::body_cycles(body),
        flops: flops_per_elem * n_elems as u64,
        instructions: iterations as u64 * body.len() as u64,
    })
}

/// [`run_routine`] with the opt-in opcode profiler: on success the
/// run's per-opcode hit/cycle histogram is folded into `profile`, whose
/// cycle sum grows by exactly [`ExecStats::cycles`] (the per-iteration
/// loop overhead gets its own [`crate::profile::LOOP_BUCKET`] row).
///
/// # Errors
///
/// As [`run_routine`]; on error nothing is recorded.
pub fn run_routine_profiled(
    routine: &Routine,
    mem: &mut NodeMemory,
    ptr_args: &[Ptr],
    scalar_args: &[f64],
    n_elems: usize,
    profile: &mut crate::profile::OpcodeProfile,
) -> Result<ExecStats, PeacError> {
    let stats = run_routine(routine, mem, ptr_args, scalar_args, n_elems)?;
    profile.record_exec(routine.body(), stats.iterations);
    Ok(stats)
}

fn load_vec(mem: &NodeMemory, pointers: &[usize], m: &Mem) -> Result<[f64; VLEN], PeacError> {
    let base = pointers[m.ptr.0 as usize];
    let slice = mem
        .heap
        .get(base..base + VLEN)
        .ok_or_else(|| PeacError::Fault(format!("pointer {} ran off the heap", m.ptr)))?;
    let mut v = [0.0; VLEN];
    v.copy_from_slice(slice);
    Ok(v)
}

fn store_vec(
    mem: &mut NodeMemory,
    pointers: &[usize],
    m: &Mem,
    v: &[f64; VLEN],
) -> Result<(), PeacError> {
    let base = pointers[m.ptr.0 as usize];
    let slice = mem
        .heap
        .get_mut(base..base + VLEN)
        .ok_or_else(|| PeacError::Fault(format!("pointer {} ran off the heap", m.ptr)))?;
    slice.copy_from_slice(v);
    Ok(())
}

fn step(
    i: &Instr,
    mem: &mut NodeMemory,
    pointers: &[usize],
    sregs: &[f64],
    vregs: &mut [[f64; VLEN]],
    spill: &mut [[f64; VLEN]],
) -> Result<(), PeacError> {
    use Instr::*;
    let operand =
        |o: &Operand, mem: &NodeMemory, vregs: &[[f64; VLEN]]| -> Result<[f64; VLEN], PeacError> {
            Ok(match o {
                Operand::V(r) => vregs[r.0 as usize],
                Operand::S(r) => [sregs[r.0 as usize]; VLEN],
                Operand::M(m) => load_vec_raw(mem, pointers, m)?,
            })
        };
    match i {
        Flodv { src, dst, .. } => {
            vregs[dst.0 as usize] = load_vec(mem, pointers, src)?;
        }
        Fstrv { src, dst, .. } => {
            let v = vregs[src.0 as usize];
            store_vec(mem, pointers, dst, &v)?;
        }
        Faddv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, |p, q| p + q);
        }
        Fsubv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, |p, q| p - q);
        }
        Fmulv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, |p, q| p * q);
        }
        Fdivv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, |p, q| p / q);
        }
        Fmaxv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, f64::max);
        }
        Fminv { a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            vregs[dst.0 as usize] = lanewise(x, y, f64::min);
        }
        Fmaddv { a, b, c, dst } => {
            let x = operand(a, mem, vregs)?;
            let y = operand(b, mem, vregs)?;
            let z = operand(c, mem, vregs)?;
            let mut out = [0.0; VLEN];
            for l in 0..VLEN {
                out[l] = x[l] * y[l] + z[l];
            }
            vregs[dst.0 as usize] = out;
        }
        Fnegv { a, dst } => {
            let x = operand(a, mem, vregs)?;
            vregs[dst.0 as usize] = x.map(|p| -p);
        }
        Fabsv { a, dst } => {
            let x = operand(a, mem, vregs)?;
            vregs[dst.0 as usize] = x.map(f64::abs);
        }
        Ftruncv { a, dst } => {
            let x = operand(a, mem, vregs)?;
            vregs[dst.0 as usize] = x.map(f64::trunc);
        }
        Fcmpv { op, a, b, dst } => {
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            let mut out = [0.0; VLEN];
            for l in 0..VLEN {
                out[l] = if op.apply(x[l], y[l]) { 1.0 } else { 0.0 };
            }
            vregs[dst.0 as usize] = out;
        }
        Fselv { mask, a, b, dst } => {
            let m = vregs[mask.0 as usize];
            let (x, y) = (operand(a, mem, vregs)?, operand(b, mem, vregs)?);
            let mut out = [0.0; VLEN];
            for l in 0..VLEN {
                out[l] = if m[l] != 0.0 { x[l] } else { y[l] };
            }
            vregs[dst.0 as usize] = out;
        }
        Fimmv { value, dst } => {
            vregs[dst.0 as usize] = [*value; VLEN];
        }
        Flib { op, a, b, dst } => {
            let x = operand(a, mem, vregs)?;
            let y = match b {
                Some(b) => Some(operand(b, mem, vregs)?),
                None => None,
            };
            let mut out = [0.0; VLEN];
            for l in 0..VLEN {
                out[l] = match op {
                    crate::isa::LibOp::Sqrt => x[l].sqrt(),
                    crate::isa::LibOp::Sin => x[l].sin(),
                    crate::isa::LibOp::Cos => x[l].cos(),
                    crate::isa::LibOp::Exp => x[l].exp(),
                    crate::isa::LibOp::Log => x[l].ln(),
                    crate::isa::LibOp::Pow => {
                        x[l].powf(y.expect("validator guarantees Pow arity")[l])
                    }
                };
            }
            vregs[dst.0 as usize] = out;
        }
        SpillStore { src, slot, .. } => {
            spill[*slot as usize] = vregs[src.0 as usize];
        }
        SpillLoad { slot, dst, .. } => {
            vregs[dst.0 as usize] = spill[*slot as usize];
        }
    }
    Ok(())
}

fn load_vec_raw(mem: &NodeMemory, pointers: &[usize], m: &Mem) -> Result<[f64; VLEN], PeacError> {
    load_vec(mem, pointers, m)
}

fn lanewise(a: [f64; VLEN], b: [f64; VLEN], f: impl Fn(f64, f64) -> f64) -> [f64; VLEN] {
    let mut out = [0.0; VLEN];
    for l in 0..VLEN {
        out[l] = f(a[l], b[l]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CmpOp, Operand, SReg, VReg};

    fn routine(nptr: usize, nsc: usize, body: Vec<Instr>) -> Routine {
        Routine::new("t", nptr, nsc, body).expect("valid test routine")
    }

    #[test]
    fn axpy_computes_and_counts() {
        // z = a*x + y over 10 elements (non-multiple of VLEN). The
        // output stream is a distinct pointer: post-increment streams
        // are single-direction, so in-place y would not validate.
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..10).map(|i| 100.0 + i as f64).collect();
        let r2 = routine(
            3,
            1,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: false,
                },
                Instr::Fmaddv {
                    a: Operand::S(SReg(0)),
                    b: Operand::V(VReg(0)),
                    c: Operand::V(VReg(1)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let px = mem.alloc(&x);
        let py = mem.alloc(&y);
        let pz = mem.alloc_zeroed(10);
        let stats = run_routine(&r2, &mut mem, &[px, py, pz], &[2.0], 10).unwrap();
        let z = mem.read(pz, 10);
        for i in 0..10 {
            assert_eq!(z[i], 2.0 * x[i] + y[i], "element {i}");
        }
        assert_eq!(stats.iterations, 3); // ceil(10/4)
        assert_eq!(stats.flops, 2 * 10); // fmadd: 2 flops/element, 10 valid
        assert!(stats.cycles > 0);
    }

    #[test]
    fn chained_memory_operand_loads_inline() {
        // out = in0 - in1 with in1 as a chained memory operand (Fig. 12
        // optimized form: `fsubv aV3 [aP4+0]1++ aV1`).
        let r = routine(
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(3),
                    overlapped: false,
                },
                Instr::Fsubv {
                    a: Operand::V(VReg(3)),
                    b: Operand::M(Mem::arg(1)),
                    dst: VReg(1),
                },
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[10.0, 20.0, 30.0, 40.0]);
        let b = mem.alloc(&[1.0, 2.0, 3.0, 4.0]);
        let c = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[a, b, c], &[], 4).unwrap();
        assert_eq!(mem.read(c, 4), vec![9.0, 18.0, 27.0, 36.0]);
    }

    #[test]
    fn masked_select_simulates_conditional_assignment() {
        // The Fig. 10 pattern: B = (coord mod 2 == 0) ? A : 5*A.
        let r = routine(
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                }, // coord
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: false,
                }, // A
                Instr::Fimmv {
                    value: 2.0,
                    dst: VReg(2),
                },
                Instr::Fdivv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(2)),
                    dst: VReg(3),
                },
                Instr::Ftruncv {
                    a: Operand::V(VReg(3)),
                    dst: VReg(3),
                },
                Instr::Fmulv {
                    a: Operand::V(VReg(3)),
                    b: Operand::V(VReg(2)),
                    dst: VReg(3),
                },
                Instr::Fsubv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(3)),
                    dst: VReg(3),
                },
                // mask = (coord mod 2) == 0
                Instr::Fimmv {
                    value: 0.0,
                    dst: VReg(4),
                },
                Instr::Fcmpv {
                    op: CmpOp::Eq,
                    a: Operand::V(VReg(3)),
                    b: Operand::V(VReg(4)),
                    dst: VReg(5),
                },
                Instr::Fimmv {
                    value: 5.0,
                    dst: VReg(6),
                },
                Instr::Fmulv {
                    a: Operand::V(VReg(6)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(6),
                },
                Instr::Fselv {
                    mask: VReg(5),
                    a: Operand::V(VReg(1)),
                    b: Operand::V(VReg(6)),
                    dst: VReg(7),
                },
                Instr::Fstrv {
                    src: VReg(7),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let coord = mem.alloc(&[1.0, 2.0, 3.0, 4.0]);
        let a = mem.alloc(&[10.0, 10.0, 10.0, 10.0]);
        let b = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[coord, a, b], &[], 4).unwrap();
        assert_eq!(mem.read(b, 4), vec![50.0, 10.0, 50.0, 10.0]);
    }

    #[test]
    fn spill_roundtrip_preserves_values() {
        let r = routine(
            2,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::SpillStore {
                    src: VReg(0),
                    slot: 0,
                    overlapped: false,
                },
                Instr::Fimmv {
                    value: 0.0,
                    dst: VReg(0),
                },
                Instr::SpillLoad {
                    slot: 0,
                    dst: VReg(1),
                    overlapped: false,
                },
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[7.0, 8.0, 9.0, 10.0]);
        let b = mem.alloc_zeroed(4);
        run_routine(&r, &mut mem, &[a, b], &[], 4).unwrap();
        assert_eq!(mem.read(b, 4), vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn wrong_arity_faults() {
        let r = routine(
            1,
            0,
            vec![Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            }],
        );
        let mut mem = NodeMemory::new();
        assert!(run_routine(&r, &mut mem, &[], &[], 4).is_err());
        assert!(run_routine(&r, &mut mem, &[0], &[1.0], 4).is_err());
    }

    #[test]
    fn zero_elements_runs_no_iterations() {
        let r = routine(
            1,
            0,
            vec![Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            }],
        );
        let mut mem = NodeMemory::new();
        let a = mem.alloc(&[1.0; 4]);
        let stats = run_routine(&r, &mut mem, &[a], &[], 0).unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.cycles, 0);
    }
}
