//! The PEAC text assembler: parse Figure 12-style listings back into
//! routines.
//!
//! This is the inverse of [`crate::isa::Routine::listing`]: a label
//! line, one instruction per line (overlapped memory instructions share
//! a line after a comma), and a closing `jnz ac2 <label>_`. The argument
//! signature is inferred from the highest register indices used.
//!
//! Round-trip guarantee: for any routine `r`,
//! `listing(parse_listing(r.listing())) == r.listing()` — the *text* is
//! stable. (Body order of overlapped instructions is normalised to
//! their printed position.)

use crate::isa::{CmpOp, Instr, LibOp, Mem, Operand, PReg, Routine, SReg, VReg};
use crate::PeacError;

/// Parse a PEAC listing.
///
/// # Errors
///
/// Fails on malformed syntax or when the assembled body does not
/// validate.
pub fn parse_listing(text: &str) -> Result<Routine, PeacError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| PeacError::Invalid("empty listing".into()))?;
    let name = header
        .trim()
        .strip_suffix('_')
        .ok_or_else(|| PeacError::Invalid(format!("bad label line '{header}'")))?
        .to_string();

    let mut body: Vec<Instr> = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.starts_with("jnz") {
            break;
        }
        for (k, part) in line.split(',').enumerate() {
            let mut i = parse_instr(part.trim())?;
            // Parts after the first on a line are overlapped.
            if k > 0 {
                set_overlapped(&mut i);
            }
            body.push(i);
        }
    }

    // Infer the argument signature from register usage.
    let mut max_p: i32 = -1;
    let mut max_s: i32 = -1;
    for i in &body {
        // Direct memory forms first.
        match i {
            Instr::Flodv { src, .. } => max_p = max_p.max(src.ptr.0 as i32),
            Instr::Fstrv { dst, .. } => max_p = max_p.max(dst.ptr.0 as i32),
            _ => {}
        }
        // Chained memory and broadcast scalar operands.
        for m in i.mem_operands() {
            max_p = max_p.max(m.ptr.0 as i32);
        }
        for o in operand_list(i) {
            if let Operand::S(s) = o {
                max_s = max_s.max(s.0 as i32);
            }
        }
    }
    Routine::new(&name, (max_p + 1) as usize, (max_s + 1) as usize, body)
}

fn set_overlapped(i: &mut Instr) {
    match i {
        Instr::Flodv { overlapped, .. }
        | Instr::Fstrv { overlapped, .. }
        | Instr::SpillStore { overlapped, .. }
        | Instr::SpillLoad { overlapped, .. } => *overlapped = true,
        _ => {}
    }
}

fn parse_instr(text: &str) -> Result<Instr, PeacError> {
    let mut parts = text.split_whitespace();
    let opcode = parts
        .next()
        .ok_or_else(|| PeacError::Invalid("empty instruction".into()))?;
    let rest: Vec<&str> = parts.collect();
    let bad = || PeacError::Invalid(format!("malformed instruction '{text}'"));

    let vreg = |s: &str| -> Result<VReg, PeacError> {
        s.strip_prefix("aV")
            .and_then(|n| n.parse().ok())
            .map(VReg)
            .ok_or_else(bad)
    };
    let operand = |s: &str| -> Result<Operand, PeacError> {
        if let Some(n) = s.strip_prefix("aV") {
            return n.parse().map(|v| Operand::V(VReg(v))).map_err(|_| bad());
        }
        if let Some(n) = s.strip_prefix("aS") {
            return n.parse().map(|v| Operand::S(SReg(v))).map_err(|_| bad());
        }
        mem(s).map(Operand::M)
    };

    match opcode {
        "flodv" => {
            let [src, dst] = rest.as_slice() else {
                return Err(bad());
            };
            if let Some(slot) = spill_slot(src) {
                Ok(Instr::SpillLoad {
                    slot,
                    dst: vreg(dst)?,
                    overlapped: false,
                })
            } else {
                Ok(Instr::Flodv {
                    src: mem(src)?,
                    dst: vreg(dst)?,
                    overlapped: false,
                })
            }
        }
        "fstrv" => {
            let [src, dst] = rest.as_slice() else {
                return Err(bad());
            };
            if let Some(slot) = spill_slot(dst) {
                Ok(Instr::SpillStore {
                    src: vreg(src)?,
                    slot,
                    overlapped: false,
                })
            } else {
                Ok(Instr::Fstrv {
                    src: vreg(src)?,
                    dst: mem(dst)?,
                    overlapped: false,
                })
            }
        }
        "faddv" | "fsubv" | "fmulv" | "fdivv" | "fmaxv" | "fminv" => {
            let [a, b, d] = rest.as_slice() else {
                return Err(bad());
            };
            let (a, b, dst) = (operand(a)?, operand(b)?, vreg(d)?);
            Ok(match opcode {
                "faddv" => Instr::Faddv { a, b, dst },
                "fsubv" => Instr::Fsubv { a, b, dst },
                "fmulv" => Instr::Fmulv { a, b, dst },
                "fdivv" => Instr::Fdivv { a, b, dst },
                "fmaxv" => Instr::Fmaxv { a, b, dst },
                _ => Instr::Fminv { a, b, dst },
            })
        }
        "fmaddv" => {
            let [a, b, c, d] = rest.as_slice() else {
                return Err(bad());
            };
            Ok(Instr::Fmaddv {
                a: operand(a)?,
                b: operand(b)?,
                c: operand(c)?,
                dst: vreg(d)?,
            })
        }
        "fnegv" | "fabsv" | "ftruncv" => {
            let [a, d] = rest.as_slice() else {
                return Err(bad());
            };
            let (a, dst) = (operand(a)?, vreg(d)?);
            Ok(match opcode {
                "fnegv" => Instr::Fnegv { a, dst },
                "fabsv" => Instr::Fabsv { a, dst },
                _ => Instr::Ftruncv { a, dst },
            })
        }
        "fselv" => {
            let [m, a, b, d] = rest.as_slice() else {
                return Err(bad());
            };
            Ok(Instr::Fselv {
                mask: vreg(m)?,
                a: operand(a)?,
                b: operand(b)?,
                dst: vreg(d)?,
            })
        }
        "fimmv" => {
            let [v, d] = rest.as_slice() else {
                return Err(bad());
            };
            Ok(Instr::Fimmv {
                value: v.parse().map_err(|_| bad())?,
                dst: vreg(d)?,
            })
        }
        "fsqrtv" | "fsinv" | "fcosv" | "fexpv" | "flogv" => {
            let [a, d] = rest.as_slice() else {
                return Err(bad());
            };
            let op = match opcode {
                "fsqrtv" => LibOp::Sqrt,
                "fsinv" => LibOp::Sin,
                "fcosv" => LibOp::Cos,
                "fexpv" => LibOp::Exp,
                _ => LibOp::Log,
            };
            Ok(Instr::Flib {
                op,
                a: operand(a)?,
                b: None,
                dst: vreg(d)?,
            })
        }
        "fpowv" => {
            let [a, b, d] = rest.as_slice() else {
                return Err(bad());
            };
            Ok(Instr::Flib {
                op: LibOp::Pow,
                a: operand(a)?,
                b: Some(operand(b)?),
                dst: vreg(d)?,
            })
        }
        other if other.starts_with("fcmpv.") => {
            let pred = &other["fcmpv.".len()..];
            let op = match pred {
                "eq" => CmpOp::Eq,
                "ne" => CmpOp::Ne,
                "lt" => CmpOp::Lt,
                "le" => CmpOp::Le,
                "gt" => CmpOp::Gt,
                "ge" => CmpOp::Ge,
                _ => return Err(bad()),
            };
            let [a, b, d] = rest.as_slice() else {
                return Err(bad());
            };
            Ok(Instr::Fcmpv {
                op,
                a: operand(a)?,
                b: operand(b)?,
                dst: vreg(d)?,
            })
        }
        _ => Err(bad()),
    }
}

fn operand_list(i: &Instr) -> Vec<Operand> {
    use Instr::*;
    match i {
        Faddv { a, b, .. }
        | Fsubv { a, b, .. }
        | Fmulv { a, b, .. }
        | Fdivv { a, b, .. }
        | Fmaxv { a, b, .. }
        | Fminv { a, b, .. }
        | Fcmpv { a, b, .. } => vec![*a, *b],
        Fmaddv { a, b, c, .. } => vec![*a, *b, *c],
        Fselv { a, b, .. } => vec![*a, *b],
        Fnegv { a, .. } | Fabsv { a, .. } | Ftruncv { a, .. } => vec![*a],
        Flib { a, b, .. } => {
            let mut v = vec![*a];
            if let Some(b) = b {
                v.push(*b);
            }
            v
        }
        _ => vec![],
    }
}

fn mem(s: &str) -> Result<Mem, PeacError> {
    // [aPn+0]1++
    s.strip_prefix("[aP")
        .and_then(|t| t.strip_suffix("+0]1++"))
        .and_then(|n| n.parse().ok())
        .map(|p| Mem { ptr: PReg(p) })
        .ok_or_else(|| PeacError::Invalid(format!("malformed memory reference '{s}'")))
}

fn spill_slot(s: &str) -> Option<u16> {
    s.strip_prefix("[spill+")
        .and_then(|t| t.strip_suffix(']'))
        .and_then(|n| n.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG12ISH: &str = "Pk51vs1_
    flodv [aP7+0]1++ aV3
    fsubv aV3 [aP4+0]1++ aV1
    fmulv aS28 aV1 aV3
    flodv [aP8+0]1++ aV4
    fsubv aV3 aV4 aV1, flodv [aP5+0]1++ aV2
    faddv aV2 [aP2+0]1++ aV3
    fdivv aV1 aV3 aV3
    fstrv aV3 [aP6+0]1++
    jnz ac2 Pk51vs1_
";

    #[test]
    fn parses_the_figure_listing() {
        let r = parse_listing(FIG12ISH).unwrap();
        assert_eq!(r.name(), "Pk51vs1");
        assert_eq!(r.len(), 9);
        assert_eq!(r.nargs_ptr(), 9); // aP8 is the highest pointer
        assert_eq!(r.nargs_scalar(), 29); // aS28 is the highest scalar
                                          // The comma-continued flodv is overlapped.
        let overlapped = r.body().iter().filter(|i| i.is_overlapped()).count();
        assert_eq!(overlapped, 1);
    }

    #[test]
    fn listing_round_trips_textually() {
        let r = parse_listing(FIG12ISH).unwrap();
        let text = r.listing();
        let r2 = parse_listing(&text).unwrap();
        assert_eq!(r2.listing(), text);
    }

    #[test]
    fn spills_round_trip() {
        let text = "s_
    flodv [aP0+0]1++ aV0
    fstrv aV0 [spill+2]
    faddv aV0 aV0 aV1
    flodv [spill+2] aV3
    fstrv aV3 [aP1+0]1++
    jnz ac2 s_
";
        let r = parse_listing(text).unwrap();
        assert_eq!(r.spill_slots(), 3);
        assert!(r
            .body()
            .iter()
            .any(|i| matches!(i, Instr::SpillStore { slot: 2, .. })));
    }

    #[test]
    fn malformed_listings_are_rejected() {
        assert!(parse_listing("").is_err());
        assert!(parse_listing("noname\n").is_err());
        assert!(parse_listing("x_\n    frobv aV0 aV1\n").is_err());
        assert!(parse_listing("x_\n    faddv aV0\n").is_err());
        // Valid syntax but invalid semantics (use before def).
        assert!(parse_listing("x_\n    faddv aV0 aV1 aV2\n    jnz ac2 x_\n").is_err());
    }

    #[test]
    fn compiled_listings_reassemble() {
        // Every routine our own emitter prints must re-assemble.
        use crate::isa::{Instr, Mem, Operand, Routine, VReg};
        let r = Routine::new(
            "t",
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: true,
                },
                Instr::Fmaddv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(0)),
                    c: Operand::V(VReg(0)),
                    dst: VReg(2),
                },
                Instr::Fselv {
                    mask: VReg(2),
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(3),
                },
                Instr::Fstrv {
                    src: VReg(3),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        )
        .unwrap();
        let text = r.listing();
        let back = parse_listing(&text).unwrap();
        assert_eq!(back.listing(), text);
    }
}
