//! The PEAC cycle model.
//!
//! All constants are justified either by a sentence of the paper or by a
//! public CM-2 fact; the performance tables depend on *ratios* between
//! these numbers, not their absolute values.
//!
//! Derivation of the base vector-op cost: the paper states that "a single
//! vector spill-restore pair costs 18 cycles — roughly equivalent to
//! three single-precision floating point vector operations" (§5.2), i.e.
//! one vector operation ≈ 6 cycles for a 4-element vector: 4 beats of the
//! pipelined Weitek plus ~2 cycles of issue from the sequencer.

use crate::isa::{Instr, LibOp};

/// Cycles for a plain vector arithmetic operation (add/sub/mul/min/max,
/// compare, select, negate, abs, trunc, immediate broadcast): 4 pipeline
/// beats + 2 issue.
pub const VOP_CYCLES: u64 = 6;

/// Cycles for a chained multiply-add: same occupancy as a plain vector
/// op — that is exactly why the chaining is profitable (2 flops/element
/// in 6 cycles instead of 12).
pub const FMADD_CYCLES: u64 = 6;

/// Cycles for vector division. The WTL3164 divides iteratively; public
/// datasheets put DP divide near 5–6× a multiply. 30 cycles ≈ 5× VOP.
pub const FDIV_CYCLES: u64 = 30;

/// Cycles for a standalone (non-overlapped) vector load or store: memory
/// and arithmetic move at the same beat rate, so 6 cycles like a vector
/// op. When the scheduler overlaps the access with arithmetic it costs
/// nothing extra (paper §6: loads/stores "overlapped with unrelated
/// computations").
pub const MEM_CYCLES: u64 = 6;

/// Cycles for one half of a spill/restore pair: the paper's 18-cycle
/// pair, split evenly. Spill traffic is dearer than ordinary loads
/// because the spill area is outside the chained datapath.
pub const SPILL_HALF_CYCLES: u64 = 9;

/// Cycles for a transcendental library call per vector (software on the
/// Weitek: tens of cycles per element).
pub const LIB_CYCLES: u64 = 60;

/// Cycles for the general-power library call per vector.
pub const POW_CYCLES: u64 = 90;

/// Per-iteration loop overhead: decrement + conditional branch issued by
/// the sequencer (`jnz ac2 …`).
pub const LOOP_OVERHEAD_CYCLES: u64 = 2;

/// Cycles charged for one instruction (per loop iteration), honouring
/// the overlap flag.
pub fn instr_cycles(i: &Instr) -> u64 {
    use Instr::*;
    match i {
        Flodv { overlapped, .. } | Fstrv { overlapped, .. } => {
            if *overlapped {
                0
            } else {
                MEM_CYCLES
            }
        }
        SpillStore { overlapped, .. } | SpillLoad { overlapped, .. } => {
            if *overlapped {
                // Overlap hides the transfer beats but not the issue:
                // spills never become completely free (the paper only
                // claims overlap "minimizes lost cycles").
                2
            } else {
                SPILL_HALF_CYCLES
            }
        }
        Fdivv { .. } => FDIV_CYCLES,
        Fmaddv { .. } => FMADD_CYCLES,
        Flib { op, .. } => match op {
            LibOp::Pow => POW_CYCLES,
            _ => LIB_CYCLES,
        },
        _ => VOP_CYCLES,
    }
}

/// Cycles for one iteration of a routine body (without dispatch).
pub fn body_cycles(body: &[Instr]) -> u64 {
    body.iter().map(instr_cycles).sum::<u64>() + LOOP_OVERHEAD_CYCLES
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Mem, Operand, VReg};

    #[test]
    fn spill_pair_costs_18_cycles_as_in_the_paper() {
        let store = Instr::SpillStore {
            src: VReg(0),
            slot: 0,
            overlapped: false,
        };
        let load = Instr::SpillLoad {
            slot: 0,
            dst: VReg(0),
            overlapped: false,
        };
        assert_eq!(instr_cycles(&store) + instr_cycles(&load), 18);
        // "roughly equivalent to three … vector operations"
        assert_eq!(18 / VOP_CYCLES, 3);
    }

    #[test]
    fn overlapped_memory_is_free() {
        let i = Instr::Flodv {
            src: Mem::arg(0),
            dst: VReg(0),
            overlapped: true,
        };
        assert_eq!(instr_cycles(&i), 0);
        let i = Instr::Flodv {
            src: Mem::arg(0),
            dst: VReg(0),
            overlapped: false,
        };
        assert_eq!(instr_cycles(&i), MEM_CYCLES);
    }

    #[test]
    fn chained_multiply_add_matches_plain_op_occupancy() {
        let fmadd = Instr::Fmaddv {
            a: Operand::V(VReg(0)),
            b: Operand::V(VReg(1)),
            c: Operand::V(VReg(2)),
            dst: VReg(3),
        };
        let fmul = Instr::Fmulv {
            a: Operand::V(VReg(0)),
            b: Operand::V(VReg(1)),
            dst: VReg(3),
        };
        assert_eq!(instr_cycles(&fmadd), instr_cycles(&fmul));
        // Twice the flops for the same cycles.
        assert_eq!(fmadd.flops_per_elem(), 2 * fmul.flops_per_elem());
    }
}
