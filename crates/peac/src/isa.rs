//! The PEAC instruction set, register files and routine form.
//!
//! The textual rendering ([`Routine::listing`]) follows the paper's
//! Figure 12: `flodv [aP7+0]1++ aV3`, `fsubv aV3 [aP4+0]1++ aV1`,
//! `fmulv aS28 aV1 aV3`, closing with `jnz ac2 <label>`. Instructions
//! that the scheduler has overlapped with memory traffic are rendered on
//! a shared line with a trailing comma, as in the optimized listing of
//! Figure 12 (`fsubv aV3 aV4 aV1, flodv [aP5+0]1++ aV2`).

use std::fmt;

use crate::PeacError;

/// Number of lanes of a PEAC vector register (the Weitek programmed
/// four-wide, paper §2.2).
pub const VLEN: usize = 4;

/// Number of vector registers. The WTL3164 exposes 32 64-bit registers;
/// grouped four-wide that is 8 vector registers — scarce enough that
/// "vector registers tend to be the limiting resource" (paper §5.2).
pub const NUM_VREGS: u8 = 8;

/// Number of scalar (broadcast) registers.
pub const NUM_SREGS: u8 = 32;

/// Number of pointer registers.
pub const NUM_PREGS: u8 = 16;

/// A vector register `aVn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u8);

/// A scalar register `aSn` holding one broadcast `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SReg(pub u8);

/// A pointer register `aPn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PReg(pub u8);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aV{}", self.0)
    }
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aS{}", self.0)
    }
}

impl fmt::Display for PReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aP{}", self.0)
    }
}

/// A post-incrementing memory reference `[aPn+0]1++`: the pointer
/// advances by one vector (VLEN elements) per loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// The pointer register.
    pub ptr: PReg,
}

impl Mem {
    /// The memory reference through argument pointer `n` (arguments are
    /// loaded into `aP0..` by the dispatch prologue).
    pub fn arg(n: u8) -> Mem {
        Mem { ptr: PReg(n) }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}+0]1++", self.ptr)
    }
}

/// An arithmetic operand: a vector register, a broadcast scalar
/// register, or (via load chaining) one in-memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Vector register.
    V(VReg),
    /// Broadcast scalar register.
    S(SReg),
    /// Chained in-memory operand (at most one per instruction).
    M(Mem),
}

impl Operand {
    /// `true` for the chained-memory form.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::M(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::V(r) => write!(f, "{r}"),
            Operand::S(r) => write!(f, "{r}"),
            Operand::M(m) => write!(f, "{m}"),
        }
    }
}

/// Comparison predicates for `fcmpv` (result lanes are 1.0/0.0 masks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the predicate.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Vector library operations (transcendentals and friends) implemented
/// by the PE runtime rather than a Weitek opcode; costed accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibOp {
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// General power `a ** b`.
    Pow,
}

impl fmt::Display for LibOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LibOp::Sqrt => "fsqrtv",
            LibOp::Sin => "fsinv",
            LibOp::Cos => "fcosv",
            LibOp::Exp => "fexpv",
            LibOp::Log => "flogv",
            LibOp::Pow => "fpowv",
        };
        f.write_str(s)
    }
}

/// One PEAC instruction of the virtual subgrid loop body.
///
/// The `overlapped` flag on memory instructions records the scheduler's
/// decision to hide the access behind arithmetic ("wherever possible,
/// loads and stores of data have been … overlapped with unrelated
/// computations", paper §6); the validator bounds how many accesses can
/// hide behind the available arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Vector load `flodv [aP+0]1++ aV`.
    Flodv {
        /// Source memory reference.
        src: Mem,
        /// Destination register.
        dst: VReg,
        /// Hidden behind arithmetic by the scheduler.
        overlapped: bool,
    },
    /// Vector store `fstrv aV [aP+0]1++`.
    Fstrv {
        /// Source register.
        src: VReg,
        /// Destination memory reference.
        dst: Mem,
        /// Hidden behind arithmetic by the scheduler.
        overlapped: bool,
    },
    /// `faddv a b dst`.
    Faddv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// `fsubv a b dst`.
    Fsubv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// `fmulv a b dst`.
    Fmulv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// `fdivv a b dst` (expensive on the Weitek).
    Fdivv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// `fmaxv a b dst`.
    Fmaxv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// `fminv a b dst`.
    Fminv {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Chained multiply-add `fmaddv a b c dst`: `dst = a*b + c` in one
    /// instruction (paper §2.2: "supports the Weitek chained
    /// multiply-add instruction").
    Fmaddv {
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Negate `fnegv a dst`.
    Fnegv {
        /// Operand.
        a: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Absolute value `fabsv a dst`.
    Fabsv {
        /// Operand.
        a: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Truncate toward zero `ftruncv a dst` (integer semantics on the
    /// float datapath).
    Ftruncv {
        /// Operand.
        a: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Compare `fcmpv.<op> a b dst`: lanes become 1.0 where the
    /// predicate holds, else 0.0.
    Fcmpv {
        /// Predicate.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Destination mask register.
        dst: VReg,
    },
    /// Masked select `fselv mask a b dst`: per lane,
    /// `dst = mask != 0 ? a : b` — "the programmer must use masked moves
    /// to simulate conditional assignment" (paper §2.2).
    Fselv {
        /// Mask register (1.0/0.0 lanes).
        mask: VReg,
        /// Value where the mask holds.
        a: Operand,
        /// Value where it does not.
        b: Operand,
        /// Destination register.
        dst: VReg,
    },
    /// Broadcast immediate `fimmv value dst`.
    Fimmv {
        /// The immediate.
        value: f64,
        /// Destination register.
        dst: VReg,
    },
    /// A vector library call (transcendental / general power).
    Flib {
        /// Which routine.
        op: LibOp,
        /// First operand.
        a: Operand,
        /// Second operand (`Pow` only).
        b: Option<Operand>,
        /// Destination register.
        dst: VReg,
    },
    /// Spill a vector register to the spill area (half of the paper's
    /// 18-cycle spill/restore pair).
    SpillStore {
        /// Register to spill.
        src: VReg,
        /// Spill slot index.
        slot: u16,
        /// Hidden behind arithmetic by the scheduler.
        overlapped: bool,
    },
    /// Restore a vector register from the spill area.
    SpillLoad {
        /// Spill slot index.
        slot: u16,
        /// Destination register.
        dst: VReg,
        /// Hidden behind arithmetic by the scheduler.
        overlapped: bool,
    },
}

impl Instr {
    /// The assembler mnemonic, as in [`Routine::listing`] — the bucket
    /// key for opcode-level profiling (see [`crate::profile`]). Spill
    /// traffic gets its own `.spill` buckets because the cost model
    /// prices it differently from ordinary loads and stores.
    pub fn mnemonic(&self) -> &'static str {
        use Instr::*;
        match self {
            Flodv { .. } => "flodv",
            Fstrv { .. } => "fstrv",
            Faddv { .. } => "faddv",
            Fsubv { .. } => "fsubv",
            Fmulv { .. } => "fmulv",
            Fdivv { .. } => "fdivv",
            Fmaxv { .. } => "fmaxv",
            Fminv { .. } => "fminv",
            Fmaddv { .. } => "fmaddv",
            Fnegv { .. } => "fnegv",
            Fabsv { .. } => "fabsv",
            Ftruncv { .. } => "ftruncv",
            Fcmpv { .. } => "fcmpv",
            Fselv { .. } => "fselv",
            Fimmv { .. } => "fimmv",
            Flib { op, .. } => match op {
                LibOp::Sqrt => "fsqrtv",
                LibOp::Sin => "fsinv",
                LibOp::Cos => "fcosv",
                LibOp::Exp => "fexpv",
                LibOp::Log => "flogv",
                LibOp::Pow => "fpowv",
            },
            SpillStore { .. } => "fstrv.spill",
            SpillLoad { .. } => "flodv.spill",
        }
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        use Instr::*;
        match self {
            Flodv { dst, .. }
            | Faddv { dst, .. }
            | Fsubv { dst, .. }
            | Fmulv { dst, .. }
            | Fdivv { dst, .. }
            | Fmaxv { dst, .. }
            | Fminv { dst, .. }
            | Fmaddv { dst, .. }
            | Fnegv { dst, .. }
            | Fabsv { dst, .. }
            | Ftruncv { dst, .. }
            | Fcmpv { dst, .. }
            | Fselv { dst, .. }
            | Fimmv { dst, .. }
            | Flib { dst, .. }
            | SpillLoad { dst, .. } => Some(*dst),
            Fstrv { .. } | SpillStore { .. } => None,
        }
    }

    /// The vector registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        use Instr::*;
        let mut out = Vec::new();
        let mut op = |o: &Operand| {
            if let Operand::V(r) = o {
                out.push(*r);
            }
        };
        match self {
            Faddv { a, b, .. }
            | Fsubv { a, b, .. }
            | Fmulv { a, b, .. }
            | Fdivv { a, b, .. }
            | Fmaxv { a, b, .. }
            | Fminv { a, b, .. }
            | Fcmpv { a, b, .. } => {
                op(a);
                op(b);
            }
            Fmaddv { a, b, c, .. } => {
                op(a);
                op(b);
                op(c);
            }
            Fselv { mask, a, b, .. } => {
                op(&Operand::V(*mask));
                op(a);
                op(b);
            }
            Fnegv { a, .. } | Fabsv { a, .. } | Ftruncv { a, .. } => op(a),
            Flib { a, b, .. } => {
                op(a);
                if let Some(b) = b {
                    op(b);
                }
            }
            Fstrv { src, .. } | SpillStore { src, .. } => op(&Operand::V(*src)),
            Flodv { .. } | Fimmv { .. } | SpillLoad { .. } => {}
        }
        let _ = op;
        out
    }

    /// The chained-memory operands of the instruction.
    pub fn mem_operands(&self) -> Vec<Mem> {
        use Instr::*;
        let mut out = Vec::new();
        let mut op = |o: &Operand| {
            if let Operand::M(m) = o {
                out.push(*m);
            }
        };
        match self {
            Faddv { a, b, .. }
            | Fsubv { a, b, .. }
            | Fmulv { a, b, .. }
            | Fdivv { a, b, .. }
            | Fmaxv { a, b, .. }
            | Fminv { a, b, .. }
            | Fcmpv { a, b, .. } => {
                op(a);
                op(b);
            }
            Fmaddv { a, b, c, .. } => {
                op(a);
                op(b);
                op(c);
            }
            Fselv { a, b, .. } => {
                op(a);
                op(b);
            }
            Fnegv { a, .. } | Fabsv { a, .. } | Ftruncv { a, .. } => op(a),
            Flib { a, b, .. } => {
                op(a);
                if let Some(b) = b {
                    op(b);
                }
            }
            Flodv { .. } | Fstrv { .. } | Fimmv { .. } | SpillStore { .. } | SpillLoad { .. } => {}
        }
        out
    }

    /// `true` for pure-arithmetic instructions (which memory traffic can
    /// hide behind).
    pub fn is_arith(&self) -> bool {
        !matches!(
            self,
            Instr::Flodv { .. }
                | Instr::Fstrv { .. }
                | Instr::SpillStore { .. }
                | Instr::SpillLoad { .. }
                | Instr::Fimmv { .. }
        )
    }

    /// `true` when the scheduler marked this memory access overlapped.
    pub fn is_overlapped(&self) -> bool {
        matches!(
            self,
            Instr::Flodv {
                overlapped: true,
                ..
            } | Instr::Fstrv {
                overlapped: true,
                ..
            } | Instr::SpillStore {
                overlapped: true,
                ..
            } | Instr::SpillLoad {
                overlapped: true,
                ..
            }
        )
    }

    /// Floating-point operations per *element* this instruction
    /// contributes (peak-rate accounting; comparisons, selects, moves
    /// and converts count zero).
    pub fn flops_per_elem(&self) -> u64 {
        use Instr::*;
        match self {
            Faddv { .. }
            | Fsubv { .. }
            | Fmulv { .. }
            | Fdivv { .. }
            | Fmaxv { .. }
            | Fminv { .. }
            | Fnegv { .. }
            | Fabsv { .. } => 1,
            Fmaddv { .. } => 2,
            Flib { .. } => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match self {
            Flodv { src, dst, .. } => write!(f, "flodv {src} {dst}"),
            Fstrv { src, dst, .. } => write!(f, "fstrv {src} {dst}"),
            Faddv { a, b, dst } => write!(f, "faddv {a} {b} {dst}"),
            Fsubv { a, b, dst } => write!(f, "fsubv {a} {b} {dst}"),
            Fmulv { a, b, dst } => write!(f, "fmulv {a} {b} {dst}"),
            Fdivv { a, b, dst } => write!(f, "fdivv {a} {b} {dst}"),
            Fmaxv { a, b, dst } => write!(f, "fmaxv {a} {b} {dst}"),
            Fminv { a, b, dst } => write!(f, "fminv {a} {b} {dst}"),
            Fmaddv { a, b, c, dst } => write!(f, "fmaddv {a} {b} {c} {dst}"),
            Fnegv { a, dst } => write!(f, "fnegv {a} {dst}"),
            Fabsv { a, dst } => write!(f, "fabsv {a} {dst}"),
            Ftruncv { a, dst } => write!(f, "ftruncv {a} {dst}"),
            Fcmpv { op, a, b, dst } => write!(f, "fcmpv.{op} {a} {b} {dst}"),
            Fselv { mask, a, b, dst } => write!(f, "fselv {mask} {a} {b} {dst}"),
            Fimmv { value, dst } => write!(f, "fimmv {value} {dst}"),
            Flib { op, a, b, dst } => match b {
                Some(b) => write!(f, "{op} {a} {b} {dst}"),
                None => write!(f, "{op} {a} {dst}"),
            },
            SpillStore { src, slot, .. } => write!(f, "fstrv {src} [spill+{slot}]"),
            SpillLoad { slot, dst, .. } => write!(f, "flodv [spill+{slot}] {dst}"),
        }
    }
}

/// A PEAC routine: one virtual subgrid loop (a single basic block with a
/// single back-edge, paper §5.2), plus its argument signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    name: String,
    nargs_ptr: usize,
    nargs_scalar: usize,
    body: Vec<Instr>,
    spill_slots: u16,
}

impl Routine {
    /// Assemble a routine, running the validator.
    ///
    /// # Errors
    ///
    /// Fails when the body violates the assembler rules (register
    /// ranges, chained-memory limits, overlap budget, use of undefined
    /// registers).
    pub fn new(
        name: &str,
        nargs_ptr: usize,
        nargs_scalar: usize,
        body: Vec<Instr>,
    ) -> Result<Routine, PeacError> {
        let spill_slots = crate::validate::validate(nargs_ptr, nargs_scalar, &body)?;
        Ok(Routine {
            name: name.to_string(),
            nargs_ptr,
            nargs_scalar,
            body,
            spill_slots,
        })
    }

    /// The routine's name (the dispatch label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pointer (array) arguments.
    pub fn nargs_ptr(&self) -> usize {
        self.nargs_ptr
    }

    /// Number of broadcast scalar arguments.
    pub fn nargs_scalar(&self) -> usize {
        self.nargs_scalar
    }

    /// The loop body.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// Number of spill slots the routine uses.
    pub fn spill_slots(&self) -> u16 {
        self.spill_slots
    }

    /// Number of instructions in the loop body (the Figure 12 metric).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Render the routine as a Figure 12 style listing. Overlapped
    /// memory instructions share the line of the instruction they issue
    /// alongside (the preceding one in body order), mirroring the
    /// figure's `fsubv aV3 aV4 aV1, flodv [aP5+0]1++ aV2` form. The text
    /// is stable under [`crate::asm::parse_listing`].
    pub fn listing(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for i in &self.body {
            if i.is_overlapped() {
                if let Some(last) = lines.last_mut() {
                    last.push_str(&format!(", {i}"));
                    continue;
                }
            }
            lines.push(format!("    {i}"));
        }
        let mut out = format!("{}_\n", self.name);
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out.push_str(&format!("    jnz ac2 {}_\n", self.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_fig12_syntax() {
        let i = Instr::Flodv {
            src: Mem::arg(7),
            dst: VReg(3),
            overlapped: false,
        };
        assert_eq!(i.to_string(), "flodv [aP7+0]1++ aV3");
        let i = Instr::Fsubv {
            a: Operand::V(VReg(3)),
            b: Operand::M(Mem::arg(4)),
            dst: VReg(1),
        };
        assert_eq!(i.to_string(), "fsubv aV3 [aP4+0]1++ aV1");
        let i = Instr::Fmulv {
            a: Operand::S(SReg(28)),
            b: Operand::V(VReg(1)),
            dst: VReg(3),
        };
        assert_eq!(i.to_string(), "fmulv aS28 aV1 aV3");
    }

    #[test]
    fn def_use_sets() {
        let i = Instr::Fmaddv {
            a: Operand::V(VReg(1)),
            b: Operand::S(SReg(0)),
            c: Operand::V(VReg(2)),
            dst: VReg(3),
        };
        assert_eq!(i.def(), Some(VReg(3)));
        assert_eq!(i.uses(), vec![VReg(1), VReg(2)]);
        assert_eq!(i.flops_per_elem(), 2);
    }

    #[test]
    fn listing_groups_overlapped_instructions() {
        let r = Routine::new(
            "Pk51vs1",
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: true,
                },
                Instr::Faddv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(0)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        )
        .unwrap();
        let text = r.listing();
        assert!(text.starts_with("Pk51vs1_\n"));
        // The overlapped load shares the line of its predecessor.
        assert!(
            text.contains("flodv [aP0+0]1++ aV0, flodv [aP1+0]1++ aV1"),
            "{text}"
        );
        assert!(text.trim_end().ends_with("jnz ac2 Pk51vs1_"));
    }
}
