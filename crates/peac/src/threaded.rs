//! Threaded-code dispatch: a routine compiled once into op thunks.
//!
//! The original simulator re-matched every instruction of the body on
//! every virtual subgrid iteration — decode cost paid `iterations ×
//! body.len()` times per dispatch. [`CompiledBlock::compile`] pays it
//! once: each instruction becomes a closure ("thunk") with its operand
//! kind, register indices and immediates already resolved, and the hot
//! loop is nothing but `for op in ops { op(ctx)? }`.
//!
//! The block is immutable after compilation and its thunks are
//! `Send + Sync`, so one compiled block is shared by every simulated
//! node of a dispatch — the MIMD engine compiles per dispatch, then
//! fans the same block out across host worker threads. Semantics and
//! cycle accounting are exactly the interpreter's: the same lanewise
//! IEEE arithmetic, the same bounds-checked pointer streams, the same
//! [`ExecStats`] formulas — the pinning tests in [`crate::sim`] run
//! through this path.

use crate::costs;
use crate::isa::{Instr, LibOp, Operand, PReg, Routine, NUM_VREGS, VLEN};
use crate::sim::{ExecStats, NodeMemory, Ptr};
use crate::PeacError;

/// A pre-decoded operand: which file and which index, resolved at
/// compile time so the hot loop never inspects the ISA enum again.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// Vector register lane array.
    V(usize),
    /// Broadcast scalar register.
    S(usize),
    /// Chained in-memory operand through pointer register `PReg`
    /// (kept for the fault message), stream index `usize`.
    M(usize, PReg),
}

impl Src {
    fn decode(o: &Operand) -> Src {
        match o {
            Operand::V(r) => Src::V(r.0 as usize),
            Operand::S(r) => Src::S(r.0 as usize),
            Operand::M(m) => Src::M(m.ptr.0 as usize, m.ptr),
        }
    }
}

/// The per-iteration execution state a thunk reads and writes.
struct Ctx<'a> {
    heap: &'a mut [f64],
    pointers: &'a [usize],
    sregs: &'a [f64],
    vregs: &'a mut [[f64; VLEN]],
    spill: &'a mut [[f64; VLEN]],
}

fn off_heap(reg: PReg) -> PeacError {
    PeacError::Fault(format!("pointer {reg} ran off the heap"))
}

fn load(heap: &[f64], base: usize, reg: PReg) -> Result<[f64; VLEN], PeacError> {
    let slice = heap.get(base..base + VLEN).ok_or_else(|| off_heap(reg))?;
    let mut v = [0.0; VLEN];
    v.copy_from_slice(slice);
    Ok(v)
}

fn fetch(s: Src, ctx: &Ctx) -> Result<[f64; VLEN], PeacError> {
    Ok(match s {
        Src::V(r) => ctx.vregs[r],
        Src::S(r) => [ctx.sregs[r]; VLEN],
        Src::M(p, reg) => load(ctx.heap, ctx.pointers[p], reg)?,
    })
}

type Thunk = Box<dyn Fn(&mut Ctx) -> Result<(), PeacError> + Send + Sync>;

/// A lanewise binary op with both operands pre-decoded; `f` is a plain
/// `fn` pointer, so the closure stays small and copy-free.
fn binop(a: &Operand, b: &Operand, dst: usize, f: fn(f64, f64) -> f64) -> Thunk {
    let (a, b) = (Src::decode(a), Src::decode(b));
    Box::new(move |ctx| {
        let (x, y) = (fetch(a, ctx)?, fetch(b, ctx)?);
        let mut out = [0.0; VLEN];
        for l in 0..VLEN {
            out[l] = f(x[l], y[l]);
        }
        ctx.vregs[dst] = out;
        Ok(())
    })
}

fn unop(a: &Operand, dst: usize, f: fn(f64) -> f64) -> Thunk {
    let a = Src::decode(a);
    Box::new(move |ctx| {
        ctx.vregs[dst] = fetch(a, ctx)?.map(f);
        Ok(())
    })
}

fn compile_instr(i: &Instr) -> Thunk {
    use Instr::*;
    match i {
        Flodv { src, dst, .. } => {
            let (p, reg, dst) = (src.ptr.0 as usize, src.ptr, dst.0 as usize);
            Box::new(move |ctx| {
                ctx.vregs[dst] = load(ctx.heap, ctx.pointers[p], reg)?;
                Ok(())
            })
        }
        Fstrv { src, dst, .. } => {
            let (s, p, reg) = (src.0 as usize, dst.ptr.0 as usize, dst.ptr);
            Box::new(move |ctx| {
                let v = ctx.vregs[s];
                let base = ctx.pointers[p];
                let slice = ctx
                    .heap
                    .get_mut(base..base + VLEN)
                    .ok_or_else(|| off_heap(reg))?;
                slice.copy_from_slice(&v);
                Ok(())
            })
        }
        Faddv { a, b, dst } => binop(a, b, dst.0 as usize, |p, q| p + q),
        Fsubv { a, b, dst } => binop(a, b, dst.0 as usize, |p, q| p - q),
        Fmulv { a, b, dst } => binop(a, b, dst.0 as usize, |p, q| p * q),
        Fdivv { a, b, dst } => binop(a, b, dst.0 as usize, |p, q| p / q),
        Fmaxv { a, b, dst } => binop(a, b, dst.0 as usize, f64::max),
        Fminv { a, b, dst } => binop(a, b, dst.0 as usize, f64::min),
        Fmaddv { a, b, c, dst } => {
            let (a, b, c) = (Src::decode(a), Src::decode(b), Src::decode(c));
            let dst = dst.0 as usize;
            Box::new(move |ctx| {
                let x = fetch(a, ctx)?;
                let y = fetch(b, ctx)?;
                let z = fetch(c, ctx)?;
                let mut out = [0.0; VLEN];
                for l in 0..VLEN {
                    out[l] = x[l] * y[l] + z[l];
                }
                ctx.vregs[dst] = out;
                Ok(())
            })
        }
        Fnegv { a, dst } => unop(a, dst.0 as usize, |p| -p),
        Fabsv { a, dst } => unop(a, dst.0 as usize, f64::abs),
        Ftruncv { a, dst } => unop(a, dst.0 as usize, f64::trunc),
        Fcmpv { op, a, b, dst } => {
            let op = *op;
            let (a, b) = (Src::decode(a), Src::decode(b));
            let dst = dst.0 as usize;
            Box::new(move |ctx| {
                let (x, y) = (fetch(a, ctx)?, fetch(b, ctx)?);
                let mut out = [0.0; VLEN];
                for l in 0..VLEN {
                    out[l] = if op.apply(x[l], y[l]) { 1.0 } else { 0.0 };
                }
                ctx.vregs[dst] = out;
                Ok(())
            })
        }
        Fselv { mask, a, b, dst } => {
            let mask = mask.0 as usize;
            let (a, b) = (Src::decode(a), Src::decode(b));
            let dst = dst.0 as usize;
            Box::new(move |ctx| {
                let m = ctx.vregs[mask];
                let (x, y) = (fetch(a, ctx)?, fetch(b, ctx)?);
                let mut out = [0.0; VLEN];
                for l in 0..VLEN {
                    out[l] = if m[l] != 0.0 { x[l] } else { y[l] };
                }
                ctx.vregs[dst] = out;
                Ok(())
            })
        }
        Fimmv { value, dst } => {
            let (v, dst) = ([*value; VLEN], dst.0 as usize);
            Box::new(move |ctx| {
                ctx.vregs[dst] = v;
                Ok(())
            })
        }
        Flib { op, a, b, dst } => {
            let op = *op;
            let a = Src::decode(a);
            let b = b.as_ref().map(Src::decode);
            let dst = dst.0 as usize;
            Box::new(move |ctx| {
                let x = fetch(a, ctx)?;
                let y = match b {
                    Some(b) => Some(fetch(b, ctx)?),
                    None => None,
                };
                let mut out = [0.0; VLEN];
                for l in 0..VLEN {
                    out[l] = match op {
                        LibOp::Sqrt => x[l].sqrt(),
                        LibOp::Sin => x[l].sin(),
                        LibOp::Cos => x[l].cos(),
                        LibOp::Exp => x[l].exp(),
                        LibOp::Log => x[l].ln(),
                        LibOp::Pow => x[l].powf(y.expect("validator guarantees Pow arity")[l]),
                    };
                }
                ctx.vregs[dst] = out;
                Ok(())
            })
        }
        SpillStore { src, slot, .. } => {
            let (s, slot) = (src.0 as usize, *slot as usize);
            Box::new(move |ctx| {
                ctx.spill[slot] = ctx.vregs[s];
                Ok(())
            })
        }
        SpillLoad { slot, dst, .. } => {
            let (slot, dst) = (*slot as usize, dst.0 as usize);
            Box::new(move |ctx| {
                ctx.vregs[dst] = ctx.spill[slot];
                Ok(())
            })
        }
    }
}

/// A routine compiled to threaded code: one thunk per instruction,
/// operands pre-resolved, signature and cost constants captured.
///
/// `Send + Sync` by construction — compile once, execute from many
/// threads (each [`CompiledBlock::run`] call owns its registers,
/// pointers and spill slots; only the read-only thunks are shared).
pub struct CompiledBlock {
    name: String,
    nargs_ptr: usize,
    nargs_scalar: usize,
    spill_slots: usize,
    ops: Vec<Thunk>,
    body_len: u64,
    body_cycles: u64,
    flops_per_elem: u64,
}

impl CompiledBlock {
    /// Compile `routine`'s body into threaded code.
    #[must_use]
    pub fn compile(routine: &Routine) -> CompiledBlock {
        let body = routine.body();
        CompiledBlock {
            name: routine.name().to_string(),
            nargs_ptr: routine.nargs_ptr(),
            nargs_scalar: routine.nargs_scalar(),
            spill_slots: routine.spill_slots() as usize,
            ops: body.iter().map(compile_instr).collect(),
            body_len: body.len() as u64,
            body_cycles: costs::body_cycles(body),
            flops_per_elem: body.iter().map(Instr::flops_per_elem).sum(),
        }
    }

    /// The compiled routine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execute the virtual subgrid loop over `n_elems` elements —
    /// identical semantics, faults and [`ExecStats`] to the historical
    /// interpreter (see [`crate::sim::run_routine`]).
    ///
    /// # Errors
    ///
    /// Fails when arguments do not match the routine signature or a
    /// pointer stream runs off the heap.
    pub fn run(
        &self,
        mem: &mut NodeMemory,
        ptr_args: &[Ptr],
        scalar_args: &[f64],
        n_elems: usize,
    ) -> Result<ExecStats, PeacError> {
        if ptr_args.len() != self.nargs_ptr {
            return Err(PeacError::Fault(format!(
                "routine '{}' expects {} pointer arguments, got {}",
                self.name,
                self.nargs_ptr,
                ptr_args.len()
            )));
        }
        if scalar_args.len() != self.nargs_scalar {
            return Err(PeacError::Fault(format!(
                "routine '{}' expects {} scalar arguments, got {}",
                self.name,
                self.nargs_scalar,
                scalar_args.len()
            )));
        }
        let iterations = n_elems.div_ceil(VLEN);
        let mut pointers: Vec<usize> = ptr_args.to_vec();
        let mut spill = vec![[0.0f64; VLEN]; self.spill_slots];
        let mut vregs = [[0.0f64; VLEN]; NUM_VREGS as usize];

        for _ in 0..iterations {
            // Per-iteration pointer cursor: each stream advances once
            // per iteration regardless of how many thunks touch it.
            {
                let mut ctx = Ctx {
                    heap: mem.heap.as_mut_slice(),
                    pointers: &pointers,
                    sregs: scalar_args,
                    vregs: &mut vregs,
                    spill: &mut spill,
                };
                for op in &self.ops {
                    op(&mut ctx)?;
                }
            }
            for p in &mut pointers {
                *p += VLEN;
            }
        }

        Ok(ExecStats {
            iterations: iterations as u64,
            cycles: iterations as u64 * self.body_cycles,
            flops: self.flops_per_elem * n_elems as u64,
            instructions: iterations as u64 * self.body_len,
        })
    }
}

impl std::fmt::Debug for CompiledBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledBlock")
            .field("name", &self.name)
            .field("ops", &self.ops.len())
            .field("body_cycles", &self.body_cycles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Mem, Operand, VReg};
    use crate::sim::run_routine;

    fn saxpyish() -> Routine {
        // z = s*x + y, with y as a chained memory operand; streams are
        // single-direction so the output is a distinct pointer.
        Routine::new(
            "t",
            3,
            1,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Fmaddv {
                    a: Operand::S(crate::isa::SReg(0)),
                    b: Operand::V(VReg(0)),
                    c: Operand::M(Mem::arg(1)),
                    dst: VReg(1),
                },
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        )
        .expect("valid test routine")
    }

    #[test]
    fn block_is_send_sync_and_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledBlock>();

        // One block, many threads, disjoint memories: every node must
        // compute the identical bits.
        let block = CompiledBlock::compile(&saxpyish());
        let outputs: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let block = &block;
                    scope.spawn(move || {
                        let mut mem = NodeMemory::new();
                        let x = mem.alloc(&[1.0, 2.0, 3.0, 4.0]);
                        let y = mem.alloc(&[0.5, 0.5, 0.5, 0.5]);
                        let z = mem.alloc_zeroed(4);
                        block.run(&mut mem, &[x, y, z], &[3.0], 4).unwrap();
                        mem.read(z, 4)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &outputs {
            assert_eq!(out, &vec![3.5, 6.5, 9.5, 12.5]);
        }
    }

    #[test]
    fn stats_match_the_interpreter_formulas() {
        let r = saxpyish();
        let block = CompiledBlock::compile(&r);
        let mut mem = NodeMemory::new();
        let x = mem.alloc(&[0.0; 10]);
        let y = mem.alloc(&[0.0; 10]);
        let z = mem.alloc_zeroed(10);
        let fast = block.run(&mut mem, &[x, y, z], &[1.0], 10).unwrap();

        let mut mem2 = NodeMemory::new();
        let x2 = mem2.alloc(&[0.0; 10]);
        let y2 = mem2.alloc(&[0.0; 10]);
        let z2 = mem2.alloc_zeroed(10);
        let slow = run_routine(&r, &mut mem2, &[x2, y2, z2], &[1.0], 10).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.iterations, 3);
    }

    #[test]
    fn arity_and_bounds_faults_are_preserved() {
        let block = CompiledBlock::compile(&saxpyish());
        let mut mem = NodeMemory::new();
        assert!(block.run(&mut mem, &[], &[1.0], 4).is_err());
        // Pointer past the heap: the stream bounds check must fire.
        let err = block.run(&mut mem, &[1_000_000, 0, 0], &[1.0], 4);
        assert!(matches!(err, Err(PeacError::Fault(m)) if m.contains("ran off the heap")));
    }
}
