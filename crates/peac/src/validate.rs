//! Assembler-level validation of PEAC routines.
//!
//! Rules enforced (all grounded in the paper's machine model):
//!
//! 1. Register indices within the files (`aV0..aV7`, `aS0..aS31`,
//!    `aP0..aP15`).
//! 2. Pointer registers only reference declared pointer arguments;
//!    scalar registers only declared scalar arguments.
//! 3. **Load chaining**: at most one in-memory operand per arithmetic
//!    instruction (paper §5.2: "one in-memory operand to be substituted
//!    for a register operand").
//! 4. **Overlap budget**: at most one overlapped memory access per
//!    arithmetic instruction in the body — memory can hide behind
//!    arithmetic, not behind other memory.
//! 5. No use of a vector register before it is defined in the body
//!    (every live range is loop-internal; cross-iteration values would
//!    break the "single basic block with a single back-edge" model).
//! 6. A pointer is consistently used for loading or for storing, not
//!    both (post-increment streams are single-direction).

use std::collections::{HashMap, HashSet};

use crate::isa::{Instr, Mem, Operand, NUM_PREGS, NUM_SREGS, NUM_VREGS};
use crate::PeacError;

fn check_operand(o: &Operand, nargs_ptr: usize, nargs_scalar: usize) -> Result<(), PeacError> {
    match o {
        Operand::V(r) => {
            if r.0 >= NUM_VREGS {
                return Err(PeacError::Invalid(format!(
                    "vector register {r} out of range (file size {NUM_VREGS})"
                )));
            }
        }
        Operand::S(r) => {
            if r.0 >= NUM_SREGS {
                return Err(PeacError::Invalid(format!(
                    "scalar register {r} out of range (file size {NUM_SREGS})"
                )));
            }
            if (r.0 as usize) >= nargs_scalar {
                return Err(PeacError::Invalid(format!(
                    "scalar register {r} reads beyond the {nargs_scalar} scalar arguments"
                )));
            }
        }
        Operand::M(m) => check_mem(m, nargs_ptr)?,
    }
    Ok(())
}

fn check_mem(m: &Mem, nargs_ptr: usize) -> Result<(), PeacError> {
    if m.ptr.0 >= NUM_PREGS {
        return Err(PeacError::Invalid(format!(
            "pointer register {} out of range (file size {NUM_PREGS})",
            m.ptr
        )));
    }
    if (m.ptr.0 as usize) >= nargs_ptr {
        return Err(PeacError::Invalid(format!(
            "pointer register {} references beyond the {nargs_ptr} pointer arguments",
            m.ptr
        )));
    }
    Ok(())
}

/// Validate a routine body; returns the number of spill slots used.
///
/// # Errors
///
/// Fails with [`PeacError::Invalid`] on any rule violation.
pub fn validate(nargs_ptr: usize, nargs_scalar: usize, body: &[Instr]) -> Result<u16, PeacError> {
    if nargs_ptr > NUM_PREGS as usize {
        return Err(PeacError::Invalid(format!(
            "{nargs_ptr} pointer arguments exceed the pointer file ({NUM_PREGS})"
        )));
    }
    if nargs_scalar > NUM_SREGS as usize {
        return Err(PeacError::Invalid(format!(
            "{nargs_scalar} scalar arguments exceed the scalar file ({NUM_SREGS})"
        )));
    }

    let mut defined: HashSet<u8> = HashSet::new();
    let mut spill_defined: HashSet<u16> = HashSet::new();
    let mut max_slot: u16 = 0;
    let mut arith_count: u64 = 0;
    let mut overlap_count: u64 = 0;
    // Direction per pointer: load/store streams must not mix.
    let mut direction: HashMap<u8, bool> = HashMap::new(); // true = load

    for (ix, i) in body.iter().enumerate() {
        // Memory-operand discipline.
        let mems = i.mem_operands();
        if mems.len() > 1 {
            return Err(PeacError::Invalid(format!(
                "instruction {ix} ('{i}') chains {} memory operands; at most one",
                mems.len()
            )));
        }
        for m in &mems {
            check_mem(m, nargs_ptr)?;
            set_direction(&mut direction, m.ptr.0, true, ix, i)?;
        }
        match i {
            Instr::Flodv { src, dst, .. } => {
                check_mem(src, nargs_ptr)?;
                set_direction(&mut direction, src.ptr.0, true, ix, i)?;
                check_operand(&Operand::V(*dst), nargs_ptr, nargs_scalar)?;
            }
            Instr::Fstrv { src, dst, .. } => {
                check_operand(&Operand::V(*src), nargs_ptr, nargs_scalar)?;
                check_mem(dst, nargs_ptr)?;
                set_direction(&mut direction, dst.ptr.0, false, ix, i)?;
            }
            Instr::SpillStore { slot, .. } => {
                spill_defined.insert(*slot);
                max_slot = max_slot.max(*slot + 1);
            }
            Instr::SpillLoad { slot, .. } => {
                if !spill_defined.contains(slot) {
                    return Err(PeacError::Invalid(format!(
                        "instruction {ix} restores spill slot {slot} before any spill"
                    )));
                }
                max_slot = max_slot.max(*slot + 1);
            }
            other => {
                // Validate operand files via uses/def walk below; here
                // check S-register operands, which `uses` does not cover.
                let _ = other;
            }
        }
        // Generic operand checks for arithmetic forms.
        for o in operand_list(i) {
            check_operand(&o, nargs_ptr, nargs_scalar)?;
        }
        // Use-before-def.
        for u in i.uses() {
            if !defined.contains(&u.0) {
                return Err(PeacError::Invalid(format!(
                    "instruction {ix} ('{i}') reads {u} before it is defined in the body"
                )));
            }
        }
        if let Some(d) = i.def() {
            if d.0 >= NUM_VREGS {
                return Err(PeacError::Invalid(format!(
                    "vector register {d} out of range (file size {NUM_VREGS})"
                )));
            }
            defined.insert(d.0);
        }
        if i.is_arith() {
            arith_count += 1;
        }
        if i.is_overlapped() {
            overlap_count += 1;
        }
    }
    if overlap_count > arith_count {
        return Err(PeacError::Invalid(format!(
            "{overlap_count} overlapped memory accesses but only {arith_count} \
             arithmetic instructions to hide them behind"
        )));
    }
    Ok(max_slot)
}

fn set_direction(
    direction: &mut HashMap<u8, bool>,
    ptr: u8,
    is_load: bool,
    ix: usize,
    i: &Instr,
) -> Result<(), PeacError> {
    match direction.insert(ptr, is_load) {
        Some(prev) if prev != is_load => Err(PeacError::Invalid(format!(
            "instruction {ix} ('{i}') mixes load and store streams on aP{ptr}"
        ))),
        _ => Ok(()),
    }
}

fn operand_list(i: &Instr) -> Vec<Operand> {
    use Instr::*;
    match i {
        Faddv { a, b, .. }
        | Fsubv { a, b, .. }
        | Fmulv { a, b, .. }
        | Fdivv { a, b, .. }
        | Fmaxv { a, b, .. }
        | Fminv { a, b, .. }
        | Fcmpv { a, b, .. } => vec![*a, *b],
        Fmaddv { a, b, c, .. } => vec![*a, *b, *c],
        Fselv { a, b, .. } => vec![*a, *b],
        Fnegv { a, .. } | Fabsv { a, .. } | Ftruncv { a, .. } => vec![*a],
        Flib { a, b, .. } => {
            let mut v = vec![*a];
            if let Some(b) = b {
                v.push(*b);
            }
            v
        }
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Mem, Operand, Routine, SReg, VReg};

    fn load(p: u8, v: u8) -> Instr {
        Instr::Flodv {
            src: Mem::arg(p),
            dst: VReg(v),
            overlapped: false,
        }
    }

    fn add(a: u8, b: u8, d: u8) -> Instr {
        Instr::Faddv {
            a: Operand::V(VReg(a)),
            b: Operand::V(VReg(b)),
            dst: VReg(d),
        }
    }

    #[test]
    fn valid_routine_assembles() {
        Routine::new(
            "ok",
            2,
            0,
            vec![
                load(0, 0),
                add(0, 0, 1),
                Instr::Fstrv {
                    src: VReg(1),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        )
        .unwrap();
    }

    #[test]
    fn use_before_def_is_rejected() {
        let err = Routine::new("bad", 1, 0, vec![add(0, 0, 1)]).unwrap_err();
        assert!(err.to_string().contains("before it is defined"));
    }

    #[test]
    fn double_memory_operand_is_rejected() {
        let err = Routine::new(
            "bad",
            2,
            0,
            vec![Instr::Faddv {
                a: Operand::M(Mem::arg(0)),
                b: Operand::M(Mem::arg(1)),
                dst: VReg(0),
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("at most one"));
    }

    #[test]
    fn pointer_beyond_arguments_is_rejected() {
        let err = Routine::new("bad", 1, 0, vec![load(3, 0)]).unwrap_err();
        assert!(err.to_string().contains("beyond the 1 pointer arguments"));
    }

    #[test]
    fn scalar_beyond_arguments_is_rejected() {
        let err = Routine::new(
            "bad",
            1,
            1,
            vec![
                load(0, 0),
                Instr::Fmulv {
                    a: Operand::S(SReg(5)),
                    b: Operand::V(VReg(0)),
                    dst: VReg(1),
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("beyond the 1 scalar arguments"));
    }

    #[test]
    fn overlap_budget_is_enforced() {
        // Two overlapped loads but only one arithmetic instruction.
        let err = Routine::new(
            "bad",
            3,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: true,
                },
                Instr::Flodv {
                    src: Mem::arg(1),
                    dst: VReg(1),
                    overlapped: true,
                },
                add(0, 1, 2),
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(2),
                    overlapped: false,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("hide them behind"));
    }

    #[test]
    fn mixed_direction_pointer_is_rejected() {
        let err = Routine::new(
            "bad",
            1,
            0,
            vec![
                load(0, 0),
                Instr::Fstrv {
                    src: VReg(0),
                    dst: Mem::arg(0),
                    overlapped: false,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("mixes load and store"));
    }

    #[test]
    fn restore_before_spill_is_rejected() {
        let err = Routine::new(
            "bad",
            1,
            0,
            vec![Instr::SpillLoad {
                slot: 0,
                dst: VReg(0),
                overlapped: false,
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("before any spill"));
    }

    #[test]
    fn spill_slots_are_counted() {
        let r = Routine::new(
            "s",
            1,
            0,
            vec![
                load(0, 0),
                Instr::SpillStore {
                    src: VReg(0),
                    slot: 3,
                    overlapped: false,
                },
                Instr::SpillLoad {
                    slot: 3,
                    dst: VReg(1),
                    overlapped: false,
                },
            ],
        )
        .unwrap();
        assert_eq!(r.spill_slots(), 4);
    }

    #[test]
    fn vreg_out_of_range_is_rejected() {
        let err = Routine::new("bad", 1, 0, vec![load(0, 9)]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
