//! The opt-in opcode profiler: per-opcode hit/cycle histograms.
//!
//! The cost model of [`crate::costs`] prices every instruction, and the
//! simulator's [`crate::sim::ExecStats`] reports the total; this module
//! fills the gap between them — *which opcodes* the cycles went to.
//! Two recording modes cover the two cycle domains:
//!
//! * [`OpcodeProfile::record_exec`] — raw PEAC cycles, bucket sums
//!   equal to [`crate::sim::ExecStats::cycles`] exactly (used by
//!   [`crate::sim::run_routine_profiled`]);
//! * [`OpcodeProfile::record_scaled`] — the same shape scaled to an
//!   externally charged total (the CM/2 machine applies a compute
//!   multiplier and truncates to whole cycles; proportional integer
//!   attribution keeps the bucket sums equal to that charge **to the
//!   cycle**, with any rounding remainder assigned to the loop-overhead
//!   bucket).
//!
//! Per-iteration loop overhead ([`crate::costs::LOOP_OVERHEAD_CYCLES`])
//! is a first-class bucket named [`LOOP_BUCKET`]; without it, opcode
//! sums could never reconcile with routine totals.

use std::collections::BTreeMap;

use crate::costs;
use crate::isa::Instr;

/// The histogram bucket carrying per-iteration loop overhead (and any
/// integer rounding remainder from [`OpcodeProfile::record_scaled`]).
pub const LOOP_BUCKET: &str = "loop";

/// One histogram row: executions and cycles attributed to an opcode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpcodeRow {
    /// Dynamic executions (instruction occurrences × loop iterations).
    pub hits: u64,
    /// Cycles attributed to this opcode.
    pub cycles: u64,
}

/// A per-opcode hit/cycle histogram, keyed by assembler mnemonic
/// (see [`Instr::mnemonic`]) plus the [`LOOP_BUCKET`] row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeProfile {
    rows: BTreeMap<&'static str, OpcodeRow>,
}

impl OpcodeProfile {
    /// An empty histogram.
    pub fn new() -> Self {
        OpcodeProfile::default()
    }

    /// Record one execution of `body` over `iterations` subgrid-loop
    /// iterations at raw PEAC cycle prices. After this call the
    /// histogram's cycle sum has grown by exactly
    /// `costs::body_cycles(body) * iterations` — the simulator's own
    /// total for the same run.
    pub fn record_exec(&mut self, body: &[Instr], iterations: u64) {
        if iterations == 0 {
            return;
        }
        for i in body {
            let row = self.rows.entry(i.mnemonic()).or_default();
            row.hits += iterations;
            row.cycles += costs::instr_cycles(i) * iterations;
        }
        let row = self.rows.entry(LOOP_BUCKET).or_default();
        row.hits += iterations;
        row.cycles += costs::LOOP_OVERHEAD_CYCLES * iterations;
    }

    /// Record one execution of `body` over `iterations` iterations,
    /// attributing exactly `total_cycles` across the opcodes in
    /// proportion to their raw cost. Integer division floors each
    /// bucket; the remainder lands in [`LOOP_BUCKET`], so the
    /// histogram's cycle sum grows by exactly `total_cycles` — this is
    /// what lets machine-level charges (which scale and truncate)
    /// reconcile with the histogram to the cycle.
    pub fn record_scaled(&mut self, body: &[Instr], iterations: u64, total_cycles: u64) {
        let raw_total = costs::body_cycles(body).saturating_mul(iterations);
        if raw_total == 0 {
            if total_cycles > 0 {
                self.rows.entry(LOOP_BUCKET).or_default().cycles += total_cycles;
            }
            return;
        }
        let scale = |raw: u64| -> u64 {
            ((u128::from(raw) * u128::from(total_cycles)) / u128::from(raw_total)) as u64
        };
        let mut assigned = 0u64;
        for i in body {
            let raw = costs::instr_cycles(i) * iterations;
            let share = scale(raw);
            assigned += share;
            let row = self.rows.entry(i.mnemonic()).or_default();
            row.hits += iterations;
            row.cycles += share;
        }
        let loop_raw = costs::LOOP_OVERHEAD_CYCLES * iterations;
        let loop_share = scale(loop_raw);
        assigned += loop_share;
        let row = self.rows.entry(LOOP_BUCKET).or_default();
        row.hits += iterations;
        row.cycles += loop_share + (total_cycles - assigned);
    }

    /// The rows in mnemonic order.
    pub fn rows(&self) -> impl Iterator<Item = (&'static str, OpcodeRow)> + '_ {
        self.rows.iter().map(|(k, v)| (*k, *v))
    }

    /// One row by mnemonic.
    pub fn row(&self, mnemonic: &str) -> Option<OpcodeRow> {
        self.rows.get(mnemonic).copied()
    }

    /// Sum of all rows' cycles.
    pub fn total_cycles(&self) -> u64 {
        self.rows.values().map(|r| r.cycles).sum()
    }

    /// Sum of all rows' hits.
    pub fn total_hits(&self) -> u64 {
        self.rows.values().map(|r| r.hits).sum()
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &OpcodeProfile) {
        for (k, v) in &other.rows {
            let row = self.rows.entry(k).or_default();
            row.hits += v.hits;
            row.cycles += v.cycles;
        }
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Mem, Operand, Routine, VReg};

    fn body() -> Vec<Instr> {
        vec![
            Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            },
            Instr::Fmulv {
                a: Operand::V(VReg(0)),
                b: Operand::V(VReg(0)),
                dst: VReg(1),
            },
            Instr::Fdivv {
                a: Operand::V(VReg(1)),
                b: Operand::V(VReg(0)),
                dst: VReg(2),
            },
            Instr::Fstrv {
                src: VReg(2),
                dst: Mem::arg(1),
                overlapped: false,
            },
        ]
    }

    #[test]
    fn exec_totals_match_body_cycles() {
        let body = body();
        let mut p = OpcodeProfile::new();
        p.record_exec(&body, 7);
        assert_eq!(p.total_cycles(), costs::body_cycles(&body) * 7);
        assert_eq!(p.row("fdivv").unwrap().cycles, costs::FDIV_CYCLES * 7);
        assert_eq!(p.row(LOOP_BUCKET).unwrap().hits, 7);
    }

    #[test]
    fn scaled_totals_match_exactly_even_when_truncation_rounds() {
        let body = body();
        // A total that is NOT a multiple of the raw cost: proportional
        // floor division must still account for every cycle.
        for total in [0u64, 1, 97, 1000, 12_345] {
            let mut p = OpcodeProfile::new();
            p.record_scaled(&body, 3, total);
            assert_eq!(p.total_cycles(), total, "total {total}");
        }
    }

    #[test]
    fn scaled_accumulates_across_dispatches() {
        let body = body();
        let mut p = OpcodeProfile::new();
        p.record_scaled(&body, 3, 100);
        p.record_scaled(&body, 5, 201);
        assert_eq!(p.total_cycles(), 301);
        assert_eq!(p.row("fmulv").unwrap().hits, 8);
    }

    #[test]
    fn zero_iterations_record_nothing_raw_but_keep_scaled_totals() {
        let mut p = OpcodeProfile::new();
        p.record_exec(&body(), 0);
        assert!(p.is_empty());
        p.record_scaled(&body(), 0, 42);
        assert_eq!(p.total_cycles(), 42);
        assert_eq!(p.row(LOOP_BUCKET).unwrap().cycles, 42);
    }

    #[test]
    fn merge_sums_rows() {
        let mut a = OpcodeProfile::new();
        a.record_exec(&body(), 2);
        let mut b = OpcodeProfile::new();
        b.record_exec(&body(), 3);
        let mut m = OpcodeProfile::new();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.total_cycles(), a.total_cycles() + b.total_cycles());
        assert_eq!(m.row("flodv").unwrap().hits, 5);
    }

    #[test]
    fn spills_bucket_separately_from_plain_memory() {
        let r = Routine::new(
            "s",
            1,
            0,
            vec![
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::SpillStore {
                    src: VReg(0),
                    slot: 0,
                    overlapped: false,
                },
                Instr::SpillLoad {
                    slot: 0,
                    dst: VReg(1),
                    overlapped: false,
                },
            ],
        )
        .expect("valid");
        let mut p = OpcodeProfile::new();
        p.record_exec(r.body(), 1);
        assert_eq!(
            p.row("fstrv.spill").unwrap().cycles,
            costs::SPILL_HALF_CYCLES
        );
        assert_eq!(
            p.row("flodv.spill").unwrap().cycles,
            costs::SPILL_HALF_CYCLES
        );
        assert_eq!(p.row("flodv").unwrap().cycles, costs::MEM_CYCLES);
    }
}
