//! # f90y-peac — Processing Element Assembly Code
//!
//! PEAC is "the programming language designed by the CM Fortran group"
//! for the slicewise CM/2 processing element (paper §2.2): it programs
//! the Weitek WTL3164 as a **four-wide vector processor**, supports
//! overlapping memory access with arithmetic, load chaining (one
//! in-memory operand per arithmetic instruction) and the chained
//! multiply-add.
//!
//! This crate provides:
//!
//! * [`isa`] — the instruction set, register files and routine form, with
//!   a textual rendering matching the paper's Figure 12 listings;
//! * [`validate`] — the assembler-level well-formedness checks (register
//!   ranges, one memory operand per instruction, overlap legality);
//! * [`costs`] — the cycle model, with each constant justified from the
//!   paper or public CM-2 facts;
//! * [`asm`] — the text assembler: Figure 12-style listings parse back
//!   into routines (round-trip stable with [`isa::Routine::listing`]);
//! * [`sim`] — an *executing* simulator: a routine runs its virtual
//!   subgrid loop over real `f64` node memory, producing both numerical
//!   results (for translation validation against the NIR evaluator) and
//!   a deterministic cycle count (for the performance tables);
//! * [`threaded`] — the threaded-code engine under it:
//!   [`CompiledBlock`] pre-resolves a routine into a `Vec` of op
//!   thunks, compiled once and shared (`Send + Sync`) across every
//!   node of a dispatch;
//! * [`profile`] — the opt-in opcode profiler: per-opcode hit/cycle
//!   histograms whose sums reconcile with the simulator's and the
//!   machine's cycle charges exactly.
//!
//! ## Example
//!
//! ```
//! use f90y_peac::isa::{Instr, Mem, Operand, Routine, VReg};
//! use f90y_peac::sim::{NodeMemory, run_routine};
//!
//! // b = a + 1.0 over an 8-element subgrid.
//! let routine = Routine::new("demo", 2, 0, vec![
//!     Instr::Fimmv { value: 1.0, dst: VReg(1) },
//!     Instr::Flodv { src: Mem::arg(0), dst: VReg(0), overlapped: false },
//!     Instr::Faddv { a: Operand::V(VReg(0)), b: Operand::V(VReg(1)), dst: VReg(2) },
//!     Instr::Fstrv { src: VReg(2), dst: Mem::arg(1), overlapped: false },
//! ])?;
//! let mut mem = NodeMemory::new();
//! let a = mem.alloc(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
//! let b = mem.alloc(&[0.0; 8]);
//! let stats = run_routine(&routine, &mut mem, &[a, b], &[], 8)?;
//! assert_eq!(mem.read(b, 8), vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
//! assert!(stats.cycles > 0);
//! # Ok::<(), f90y_peac::PeacError>(())
//! ```

pub mod asm;
pub mod costs;
pub mod isa;
pub mod profile;
pub mod sim;
pub mod threaded;
pub mod validate;

pub use asm::parse_listing;
pub use isa::{CmpOp, Instr, Mem, Operand, PReg, Routine, SReg, VReg};
pub use profile::{OpcodeProfile, OpcodeRow};
pub use sim::{run_routine, run_routine_profiled, ExecStats, NodeMemory};
pub use threaded::CompiledBlock;

use std::error::Error;
use std::fmt;

/// Errors from PEAC validation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PeacError {
    /// The routine failed assembler-level validation.
    Invalid(String),
    /// A runtime fault in the simulator (bad pointer, missing argument).
    Fault(String),
}

impl fmt::Display for PeacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeacError::Invalid(m) => write!(f, "invalid PEAC routine: {m}"),
            PeacError::Fault(m) => write!(f, "PEAC execution fault: {m}"),
        }
    }
}

impl Error for PeacError {}
