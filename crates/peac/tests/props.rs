//! Property tests for the PEAC simulator: stream semantics, masked
//! selection, arity of the cost model, and validator totality.

use proptest::prelude::*;

use f90y_peac::costs::body_cycles;
use f90y_peac::isa::{CmpOp, Instr, Mem, Operand, Routine, VReg, VLEN};
use f90y_peac::sim::{run_routine, NodeMemory};

fn copy_routine() -> Routine {
    Routine::new(
        "copy",
        2,
        0,
        vec![
            Instr::Flodv {
                src: Mem::arg(0),
                dst: VReg(0),
                overlapped: false,
            },
            Instr::Fstrv {
                src: VReg(0),
                dst: Mem::arg(1),
                overlapped: false,
            },
        ],
    )
    .expect("valid")
}

proptest! {
    /// A copy routine copies exactly, for any element count (including
    /// counts that are not multiples of the vector length).
    #[test]
    fn copy_is_exact(data in proptest::collection::vec(-1e6f64..1e6, 0..70)) {
        let r = copy_routine();
        let mut mem = NodeMemory::new();
        let src = mem.alloc(&data);
        let dst = mem.alloc_zeroed(data.len());
        let stats = run_routine(&r, &mut mem, &[src, dst], &[], data.len()).expect("runs");
        prop_assert_eq!(mem.read(dst, data.len()), data.clone());
        prop_assert_eq!(stats.iterations, data.len().div_ceil(VLEN) as u64);
        // A pure copy performs no floating-point operations.
        prop_assert_eq!(stats.flops, 0);
    }

    /// `fselv` selects per lane exactly like the scalar ternary.
    #[test]
    fn select_matches_ternary(
        a in proptest::collection::vec(-100f64..100.0, 8),
        b in proptest::collection::vec(-100f64..100.0, 8),
        threshold in -50f64..50.0,
    ) {
        let r = Routine::new(
            "sel",
            3,
            1,
            vec![
                Instr::Flodv { src: Mem::arg(0), dst: VReg(0), overlapped: false },
                Instr::Flodv { src: Mem::arg(1), dst: VReg(1), overlapped: false },
                Instr::Fcmpv {
                    op: CmpOp::Gt,
                    a: Operand::V(VReg(0)),
                    b: Operand::S(f90y_peac::isa::SReg(0)),
                    dst: VReg(2),
                },
                Instr::Fselv {
                    mask: VReg(2),
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(3),
                },
                Instr::Fstrv { src: VReg(3), dst: Mem::arg(2), overlapped: false },
            ],
        )
        .expect("valid");
        let mut mem = NodeMemory::new();
        let pa = mem.alloc(&a);
        let pb = mem.alloc(&b);
        let pc = mem.alloc_zeroed(8);
        run_routine(&r, &mut mem, &[pa, pb, pc], &[threshold], 8).expect("runs");
        let out = mem.read(pc, 8);
        for i in 0..8 {
            let expect = if a[i] > threshold { a[i] } else { b[i] };
            prop_assert_eq!(out[i], expect, "lane {}", i);
        }
    }

    /// The cost model is additive over instructions: appending an
    /// instruction never reduces the body cost, and the loop overhead is
    /// charged exactly once.
    #[test]
    fn body_cycles_are_additive(extra in 0usize..12) {
        let mut body = vec![
            Instr::Flodv { src: Mem::arg(0), dst: VReg(0), overlapped: false },
        ];
        let mut last = body_cycles(&body);
        for _ in 0..extra {
            body.push(Instr::Faddv {
                a: Operand::V(VReg(0)),
                b: Operand::V(VReg(0)),
                dst: VReg(0),
            });
            let now = body_cycles(&body);
            prop_assert!(now > last);
            prop_assert_eq!(now - last, f90y_peac::costs::VOP_CYCLES);
            last = now;
        }
    }

    /// Random register indices: the validator either accepts (indices in
    /// range, defined before use) or rejects — never panics — and
    /// whatever it accepts, the simulator runs.
    #[test]
    fn validator_is_total_and_sound(
        ops in proptest::collection::vec((0u8..12, 0u8..12, 0u8..12, 0u8..4), 1..12)
    ) {
        let mut body: Vec<Instr> = vec![Instr::Flodv {
            src: Mem::arg(0),
            dst: VReg(0),
            overlapped: false,
        }];
        for (a, b, d, kind) in ops {
            body.push(match kind {
                0 => Instr::Faddv {
                    a: Operand::V(VReg(a)),
                    b: Operand::V(VReg(b)),
                    dst: VReg(d),
                },
                1 => Instr::Fmulv {
                    a: Operand::V(VReg(a)),
                    b: Operand::V(VReg(b)),
                    dst: VReg(d),
                },
                2 => Instr::Fnegv { a: Operand::V(VReg(a)), dst: VReg(d) },
                _ => Instr::Fimmv { value: a as f64, dst: VReg(d) },
            });
        }
        // Rejection is fine; panicking is not.
        if let Ok(r) = Routine::new("r", 1, 0, body) {
            let mut mem = NodeMemory::new();
            let p = mem.alloc(&[1.0; 8]);
            run_routine(&r, &mut mem, &[p], &[], 8).expect("validated routines run");
        }
    }
}
