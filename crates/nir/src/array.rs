//! Dense multidimensional array values used by the reference evaluator
//! and, as `f64` buffers, by the machine simulators.

use std::fmt;

use crate::error::NirError;
use crate::types::ScalarType;

/// A runtime scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// 32-bit integer.
    I32(i32),
    /// Logical.
    Bool(bool),
    /// Single precision.
    F32(f32),
    /// Double precision.
    F64(f64),
}

impl Scalar {
    /// The scalar's type.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            Scalar::I32(_) => ScalarType::Integer32,
            Scalar::Bool(_) => ScalarType::Logical32,
            Scalar::F32(_) => ScalarType::Float32,
            Scalar::F64(_) => ScalarType::Float64,
        }
    }

    /// Numeric view as `f64`.
    ///
    /// # Errors
    ///
    /// Fails for logical scalars.
    pub fn to_f64(self) -> Result<f64, NirError> {
        match self {
            Scalar::I32(v) => Ok(v as f64),
            Scalar::F32(v) => Ok(v as f64),
            Scalar::F64(v) => Ok(v),
            Scalar::Bool(_) => Err(NirError::Eval("logical used as number".into())),
        }
    }

    /// Logical view.
    ///
    /// # Errors
    ///
    /// Fails for non-logical scalars.
    pub fn to_bool(self) -> Result<bool, NirError> {
        match self {
            Scalar::Bool(b) => Ok(b),
            other => Err(NirError::Eval(format!("{other:?} used as logical"))),
        }
    }

    /// Integer view (exact).
    ///
    /// # Errors
    ///
    /// Fails for logical scalars and non-integral floats.
    pub fn to_i64(self) -> Result<i64, NirError> {
        match self {
            Scalar::I32(v) => Ok(v as i64),
            Scalar::F32(v) if v.fract() == 0.0 => Ok(v as i64),
            Scalar::F64(v) if v.fract() == 0.0 => Ok(v as i64),
            other => Err(NirError::Eval(format!("{other:?} used as index"))),
        }
    }

    /// Convert the scalar to the given type following Fortran assignment
    /// conversion (truncation toward zero for float→integer).
    ///
    /// Logical↔numeric conversions use the machine representation
    /// (`.true.` = 1, nonzero = `.true.`): the simulated CM stores
    /// logicals as 0/1 words, and static typechecking already rejects
    /// *source-level* logical/numeric mixing — this dynamic conversion
    /// only crosses the representation boundary.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` keeps call sites stable if a
    /// stricter mode returns.
    pub fn convert(self, to: ScalarType) -> Result<Scalar, NirError> {
        if self.scalar_type() == to {
            return Ok(self);
        }
        let raw = match self {
            Scalar::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            other => other.to_f64().expect("non-bool scalars are numeric"),
        };
        Ok(match to {
            ScalarType::Logical32 => Scalar::Bool(raw != 0.0),
            ScalarType::Integer32 => Scalar::I32(raw.trunc() as i32),
            ScalarType::Float32 => Scalar::F32(raw as f32),
            ScalarType::Float64 => Scalar::F64(raw),
        })
    }

    /// The zero value of a scalar type (`.false.` for logicals).
    pub fn zero(ty: ScalarType) -> Scalar {
        match ty {
            ScalarType::Integer32 => Scalar::I32(0),
            ScalarType::Logical32 => Scalar::Bool(false),
            ScalarType::Float32 => Scalar::F32(0.0),
            ScalarType::Float64 => Scalar::F64(0.0),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::Bool(v) => write!(f, "{}", if *v { "T" } else { "F" }),
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
        }
    }
}

/// A dense row-major array with per-axis inclusive bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayData {
    bounds: Vec<(i64, i64)>,
    elem: ScalarType,
    data: Vec<Scalar>,
}

impl ArrayData {
    /// Create an array of zeros with the given per-axis inclusive bounds.
    pub fn zeros(bounds: Vec<(i64, i64)>, elem: ScalarType) -> ArrayData {
        let n: usize = bounds
            .iter()
            .map(|&(lo, hi)| if hi < lo { 0 } else { (hi - lo + 1) as usize })
            .product();
        ArrayData {
            bounds,
            elem,
            data: vec![Scalar::zero(elem); n],
        }
    }

    /// Create an array from existing data in row-major order.
    ///
    /// # Errors
    ///
    /// Fails when `data.len()` does not match the bounds.
    pub fn from_vec(
        bounds: Vec<(i64, i64)>,
        elem: ScalarType,
        data: Vec<Scalar>,
    ) -> Result<ArrayData, NirError> {
        let n: usize = bounds
            .iter()
            .map(|&(lo, hi)| if hi < lo { 0 } else { (hi - lo + 1) as usize })
            .product();
        if data.len() != n {
            return Err(NirError::Eval(format!(
                "array data length {} does not match bounds (expect {n})",
                data.len()
            )));
        }
        Ok(ArrayData { bounds, elem, data })
    }

    /// Per-axis inclusive bounds.
    pub fn bounds(&self) -> &[(i64, i64)] {
        &self.bounds
    }

    /// Per-axis lengths.
    pub fn dims(&self) -> Vec<usize> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| if hi < lo { 0 } else { (hi - lo + 1) as usize })
            .collect()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.bounds.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element type.
    pub fn elem_type(&self) -> ScalarType {
        self.elem
    }

    /// Flat row-major view of the elements.
    pub fn as_slice(&self) -> &[Scalar] {
        &self.data
    }

    /// Mutable flat row-major view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [Scalar] {
        &mut self.data
    }

    /// Row-major linear offset of a coordinate vector.
    ///
    /// # Errors
    ///
    /// Fails when the coordinate is out of bounds or has wrong rank.
    pub fn offset(&self, coords: &[i64]) -> Result<usize, NirError> {
        if coords.len() != self.bounds.len() {
            return Err(NirError::Eval(format!(
                "rank mismatch: {} subscripts for rank-{} array",
                coords.len(),
                self.bounds.len()
            )));
        }
        let mut off = 0usize;
        for (i, (&c, &(lo, hi))) in coords.iter().zip(&self.bounds).enumerate() {
            if c < lo || c > hi {
                return Err(NirError::Eval(format!(
                    "subscript {c} out of bounds {lo}..{hi} in axis {}",
                    i + 1
                )));
            }
            let extent = (hi - lo + 1) as usize;
            off = off * extent + (c - lo) as usize;
        }
        Ok(off)
    }

    /// Read the element at a coordinate.
    ///
    /// # Errors
    ///
    /// Fails when the coordinate is invalid.
    pub fn get(&self, coords: &[i64]) -> Result<Scalar, NirError> {
        Ok(self.data[self.offset(coords)?])
    }

    /// Write the element at a coordinate.
    ///
    /// # Errors
    ///
    /// Fails when the coordinate is invalid; the value is converted to the
    /// array's element type.
    pub fn set(&mut self, coords: &[i64], v: Scalar) -> Result<(), NirError> {
        let off = self.offset(coords)?;
        self.data[off] = v.convert(self.elem)?;
        Ok(())
    }

    /// Fill every element with (the converted) `v`.
    ///
    /// # Errors
    ///
    /// Fails when `v` cannot convert to the element type.
    pub fn fill(&mut self, v: Scalar) -> Result<(), NirError> {
        let v = v.convert(self.elem)?;
        self.data.fill(v);
        Ok(())
    }

    /// Circular shift along `axis` (0-based) by `shift` (positive shifts
    /// toward lower indices, Fortran `CSHIFT` convention: element `i`
    /// receives old element `i + shift`).
    ///
    /// # Errors
    ///
    /// Fails when `axis` is out of range.
    pub fn cshift(&self, axis: usize, shift: i64) -> Result<ArrayData, NirError> {
        let dims = self.dims();
        if axis >= dims.len() {
            return Err(NirError::Eval(format!(
                "cshift axis {} out of range for rank {}",
                axis + 1,
                dims.len()
            )));
        }
        let n = dims[axis] as i64;
        if n == 0 {
            return Ok(self.clone());
        }
        let mut out = self.clone();
        // stride of the axis and the size of one "row block" containing it
        let inner: usize = dims[axis + 1..].iter().product();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        for o in 0..outer {
            for a in 0..axis_len {
                let src_a = ((a as i64 + shift).rem_euclid(n)) as usize;
                for i in 0..inner {
                    let dst = (o * axis_len + a) * inner + i;
                    let src = (o * axis_len + src_a) * inner + i;
                    out.data[dst] = self.data[src];
                }
            }
        }
        Ok(out)
    }

    /// End-off shift along `axis` (0-based): like [`ArrayData::cshift`]
    /// but vacated positions take `boundary`.
    ///
    /// # Errors
    ///
    /// Fails when `axis` is out of range or `boundary` cannot convert.
    pub fn eoshift(
        &self,
        axis: usize,
        shift: i64,
        boundary: Scalar,
    ) -> Result<ArrayData, NirError> {
        let dims = self.dims();
        if axis >= dims.len() {
            return Err(NirError::Eval(format!(
                "eoshift axis {} out of range for rank {}",
                axis + 1,
                dims.len()
            )));
        }
        let boundary = boundary.convert(self.elem)?;
        let n = dims[axis] as i64;
        let mut out = self.clone();
        let inner: usize = dims[axis + 1..].iter().product();
        let axis_len = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        for o in 0..outer {
            for a in 0..axis_len {
                let src_a = a as i64 + shift;
                for i in 0..inner {
                    let dst = (o * axis_len + a) * inner + i;
                    out.data[dst] = if src_a < 0 || src_a >= n {
                        boundary
                    } else {
                        self.data[(o * axis_len + src_a as usize) * inner + i]
                    };
                }
            }
        }
        Ok(out)
    }

    /// Matrix transpose (rank-2 arrays only).
    ///
    /// # Errors
    ///
    /// Fails for arrays of other ranks.
    pub fn transpose(&self) -> Result<ArrayData, NirError> {
        let dims = self.dims();
        if dims.len() != 2 {
            return Err(NirError::Eval(format!(
                "TRANSPOSE requires a rank-2 array, got rank {}",
                dims.len()
            )));
        }
        let (r, c) = (dims[0], dims[1]);
        let mut out = ArrayData::zeros(vec![self.bounds[1], self.bounds[0]], self.elem);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Partial reduction along `axis` (0-based): the result drops that
    /// axis; `op` is 0=sum, 1=max, 2=min.
    ///
    /// # Errors
    ///
    /// Fails when `axis` is out of range or the array is logical.
    pub fn reduce_axis(&self, axis: usize, op: u8) -> Result<ArrayData, NirError> {
        let dims = self.dims();
        if axis >= dims.len() {
            return Err(NirError::Eval(format!(
                "reduction DIM={} out of range for rank {}",
                axis + 1,
                dims.len()
            )));
        }
        let mut out_bounds = self.bounds.clone();
        out_bounds.remove(axis);
        let mut out = ArrayData::zeros(out_bounds, self.elem);
        let inner: usize = dims[axis + 1..].iter().product();
        let extent = dims[axis];
        let outer: usize = dims[..axis].iter().product();
        for o in 0..outer {
            for i in 0..inner {
                let mut acc = match op {
                    0 => 0.0,
                    1 => f64::NEG_INFINITY,
                    _ => f64::INFINITY,
                };
                for a in 0..extent {
                    let v = self.data[(o * extent + a) * inner + i].to_f64()?;
                    acc = match op {
                        0 => acc + v,
                        1 => acc.max(v),
                        _ => acc.min(v),
                    };
                }
                out.data[o * inner + i] = Scalar::F64(acc).convert(self.elem)?;
            }
        }
        Ok(out)
    }

    /// Fortran `SPREAD`: replicate the array `ncopies` times along a new
    /// axis inserted at position `axis` (0-based).
    ///
    /// # Errors
    ///
    /// Fails when `axis > rank`.
    pub fn spread(&self, axis: usize, ncopies: usize) -> Result<ArrayData, NirError> {
        let dims = self.dims();
        if axis > dims.len() {
            return Err(NirError::Eval(format!(
                "SPREAD DIM={} out of range for rank {}",
                axis + 1,
                dims.len()
            )));
        }
        let mut out_bounds = self.bounds.clone();
        out_bounds.insert(axis, (1, ncopies as i64));
        let mut out = ArrayData::zeros(out_bounds, self.elem);
        let inner: usize = dims[axis..].iter().product();
        let outer: usize = dims[..axis].iter().product();
        for o in 0..outer {
            for c in 0..ncopies {
                for i in 0..inner {
                    out.data[(o * ncopies + c) * inner + i] = self.data[o * inner + i];
                }
            }
        }
        Ok(out)
    }

    /// Sum of all elements as `f64`.
    ///
    /// # Errors
    ///
    /// Fails for logical arrays.
    pub fn sum(&self) -> Result<f64, NirError> {
        let mut acc = 0.0;
        for s in &self.data {
            acc += s.to_f64()?;
        }
        Ok(acc)
    }

    /// Maximum element as `f64` (`-inf` when empty).
    ///
    /// # Errors
    ///
    /// Fails for logical arrays.
    pub fn maxval(&self) -> Result<f64, NirError> {
        let mut acc = f64::NEG_INFINITY;
        for s in &self.data {
            acc = acc.max(s.to_f64()?);
        }
        Ok(acc)
    }

    /// Minimum element as `f64` (`+inf` when empty).
    ///
    /// # Errors
    ///
    /// Fails for logical arrays.
    pub fn minval(&self) -> Result<f64, NirError> {
        let mut acc = f64::INFINITY;
        for s in &self.data {
            acc = acc.min(s.to_f64()?);
        }
        Ok(acc)
    }

    /// The whole array as an `f64` buffer (row-major); logicals map to
    /// 0/1 (the machine representation).
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` keeps call sites stable.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, NirError> {
        self.data
            .iter()
            .map(|s| match s {
                Scalar::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
                other => other.to_f64(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(n: i64) -> ArrayData {
        let data = (1..=n).map(|i| Scalar::I32(i as i32)).collect();
        ArrayData::from_vec(vec![(1, n)], ScalarType::Integer32, data).expect("well-formed")
    }

    #[test]
    fn offset_is_row_major() {
        let a = ArrayData::zeros(vec![(1, 3), (1, 4)], ScalarType::Float64);
        assert_eq!(a.offset(&[1, 1]).unwrap(), 0);
        assert_eq!(a.offset(&[1, 2]).unwrap(), 1);
        assert_eq!(a.offset(&[2, 1]).unwrap(), 4);
        assert_eq!(a.offset(&[3, 4]).unwrap(), 11);
    }

    #[test]
    fn non_unit_lower_bounds() {
        let a = ArrayData::zeros(vec![(0, 2), (-1, 1)], ScalarType::Integer32);
        assert_eq!(a.len(), 9);
        assert_eq!(a.offset(&[0, -1]).unwrap(), 0);
        assert_eq!(a.offset(&[2, 1]).unwrap(), 8);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let a = ArrayData::zeros(vec![(1, 3)], ScalarType::Integer32);
        assert!(a.get(&[0]).is_err());
        assert!(a.get(&[4]).is_err());
        assert!(a.get(&[1, 1]).is_err());
    }

    #[test]
    fn set_converts_to_element_type() {
        let mut a = ArrayData::zeros(vec![(1, 2)], ScalarType::Integer32);
        a.set(&[1], Scalar::F64(3.9)).unwrap();
        assert_eq!(a.get(&[1]).unwrap(), Scalar::I32(3)); // truncation
    }

    #[test]
    fn cshift_matches_fortran_convention() {
        // CSHIFT([1,2,3,4,5], SHIFT=1) == [2,3,4,5,1]
        let a = iota(5);
        let s = a.cshift(0, 1).unwrap();
        let got: Vec<i64> = s.as_slice().iter().map(|x| x.to_i64().unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 1]);
        // CSHIFT(..., SHIFT=-1) == [5,1,2,3,4]
        let s = a.cshift(0, -1).unwrap();
        let got: Vec<i64> = s.as_slice().iter().map(|x| x.to_i64().unwrap()).collect();
        assert_eq!(got, vec![5, 1, 2, 3, 4]);
    }

    #[test]
    fn cshift_along_each_axis_of_2d() {
        // 2x3 array [[1,2,3],[4,5,6]]
        let a = ArrayData::from_vec(
            vec![(1, 2), (1, 3)],
            ScalarType::Integer32,
            (1..=6).map(Scalar::I32).collect(),
        )
        .unwrap();
        let rows = a.cshift(0, 1).unwrap();
        let got: Vec<i64> = rows
            .as_slice()
            .iter()
            .map(|x| x.to_i64().unwrap())
            .collect();
        assert_eq!(got, vec![4, 5, 6, 1, 2, 3]);
        let cols = a.cshift(1, -1).unwrap();
        let got: Vec<i64> = cols
            .as_slice()
            .iter()
            .map(|x| x.to_i64().unwrap())
            .collect();
        assert_eq!(got, vec![3, 1, 2, 6, 4, 5]);
    }

    #[test]
    fn eoshift_fills_with_boundary() {
        let a = iota(4);
        let s = a.eoshift(0, 2, Scalar::I32(0)).unwrap();
        let got: Vec<i64> = s.as_slice().iter().map(|x| x.to_i64().unwrap()).collect();
        assert_eq!(got, vec![3, 4, 0, 0]);
        let s = a.eoshift(0, -1, Scalar::I32(9)).unwrap();
        let got: Vec<i64> = s.as_slice().iter().map(|x| x.to_i64().unwrap()).collect();
        assert_eq!(got, vec![9, 1, 2, 3]);
    }

    #[test]
    fn cshift_full_cycle_is_identity() {
        let a = iota(7);
        assert_eq!(a.cshift(0, 7).unwrap(), a);
        assert_eq!(a.cshift(0, -14).unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = iota(5);
        assert_eq!(a.sum().unwrap(), 15.0);
        assert_eq!(a.maxval().unwrap(), 5.0);
        assert_eq!(a.minval().unwrap(), 1.0);
    }
}
