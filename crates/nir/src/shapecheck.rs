//! Static shapechecking (paper §4.1): "an analogous operation to static
//! typechecking, but over the shape domain".
//!
//! The pass "satisfies assertions that in all direct computations between
//! arrays, the shapes of interacting arrays agree". It is implemented as
//! the shape mode of the common [`crate::typecheck::Checker`]; this module
//! additionally exposes the shape queries the transformation phase builds
//! on: what shape a value ranges over, and what common shape a `MOVE`
//! executes over.

use crate::error::NirError;
use crate::imp::{Imp, LValue, MoveClause};
use crate::shape::Shape;
use crate::typecheck::{Checker, Ctx, Mode};
use crate::value::Value;

/// Shapecheck a whole program.
///
/// # Errors
///
/// Returns the first shape disagreement found.
pub fn check(imp: &Imp) -> Result<(), NirError> {
    Checker::new(Mode::Shapes).check_program(imp)
}

/// The shape a value ranges over in the given context (`None` when the
/// value is scalar).
///
/// # Errors
///
/// Fails when the term contains static errors that prevent
/// classification.
pub fn shape_of(v: &Value, ctx: &mut Ctx) -> Result<Option<Shape>, NirError> {
    Ok(Checker::new(Mode::Shapes).type_of(v, ctx)?.shape)
}

/// The shape an assignment target ranges over (`None` when scalar).
///
/// # Errors
///
/// Fails when the term contains static errors that prevent
/// classification.
pub fn shape_of_lvalue(lv: &LValue, ctx: &mut Ctx) -> Result<Option<Shape>, NirError> {
    Ok(Checker::new(Mode::Shapes).type_of_lvalue(lv, ctx)?.shape)
}

/// The common shape a `MOVE` clause executes over, per the paper's
/// equivalence `MOVE([(m,(src,tgt))]) ≡ DO(s, pointwise move)` where `s`
/// is the common shape of the operands. `None` for purely scalar moves.
///
/// # Errors
///
/// Fails when the clause contains static errors.
pub fn clause_shape(c: &MoveClause, ctx: &mut Ctx) -> Result<Option<Shape>, NirError> {
    // The destination dictates; conformance of src/mask was checked
    // separately. Fall back to src for scalar targets fed by reductions.
    if let Some(s) = shape_of_lvalue(&c.dst, ctx)? {
        return Ok(Some(s));
    }
    shape_of(&c.src, ctx)
}

/// The common shape of an entire `MOVE` imperative: the clauses' shapes
/// must agree (scalar clauses broadcast); `None` when all clauses are
/// scalar.
///
/// # Errors
///
/// Fails when the clauses range over non-conforming shapes or contain
/// static errors.
pub fn move_shape(clauses: &[MoveClause], ctx: &mut Ctx) -> Result<Option<Shape>, NirError> {
    let mut common: Option<Shape> = None;
    for c in clauses {
        if let Some(s) = clause_shape(c, ctx)? {
            match &common {
                None => common = Some(s),
                Some(prev) => {
                    if !prev.conforms(&s) {
                        return Err(NirError::Shape(format!(
                            "clauses of blocked MOVE range over non-conforming shapes {prev} vs {s}"
                        )));
                    }
                }
            }
        }
    }
    Ok(common)
}

/// `true` when the imperative is a pure computation over a single
/// parallel shape — the form the PE compiler accepts (paper §5.2: "CM/PE
/// only needs to process procedures whose body is a single loop containing
/// a sequence of (optionally masked) moves from the local points of source
/// arrays to the corresponding points in the target").
///
/// # Errors
///
/// Fails when the term contains static errors.
pub fn is_gridlocal_computation(imp: &Imp, ctx: &mut Ctx) -> Result<bool, NirError> {
    match imp {
        Imp::Move(clauses) => {
            for c in clauses {
                if !value_is_gridlocal(&c.mask) || !value_is_gridlocal(&c.src) {
                    return Ok(false);
                }
                if let LValue::AVar(_, fa) = &c.dst {
                    if !fa.is_everywhere() {
                        return Ok(false);
                    }
                }
                if matches!(c.dst, LValue::SVar(_)) {
                    // Writing a front-end scalar is host work.
                    return Ok(false);
                }
            }
            match move_shape(clauses, ctx)? {
                Some(s) => Ok(s.is_parallel()),
                None => Ok(false),
            }
        }
        _ => Ok(false),
    }
}

/// `true` when the value references only local points: `everywhere`
/// accesses, scalars, and coordinate fields. Communication intrinsics and
/// subscripted accesses disqualify.
pub fn value_is_gridlocal(v: &Value) -> bool {
    let mut ok = true;
    v.walk(&mut |node| match node {
        // MERGE is elemental (a masked select at each point); every
        // other primitive call communicates or reduces.
        Value::FcnCall(name, _) if name != "merge" => ok = false,
        Value::AVar(_, fa) if !fa.is_everywhere() => ok = false,
        Value::DoIndex(..) => ok = false,
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn ctx_with(vars: &[(&str, crate::types::Type)]) -> Ctx {
        let mut ctx = Ctx::new();
        for (id, ty) in vars {
            ctx.bind_var((*id).into(), ty.clone());
        }
        ctx
    }

    #[test]
    fn clause_shape_prefers_destination() {
        let mut ctx = ctx_with(&[("a", dfield(grid(&[8]), float64())), ("x", float64())]);
        let c = crate::imp::MoveClause::unmasked(avar("a", everywhere()), svar("x"));
        let s = clause_shape(&c, &mut ctx).unwrap().unwrap();
        assert_eq!(s.size(), 8);
    }

    #[test]
    fn scalar_move_has_no_shape() {
        let mut ctx = ctx_with(&[("x", float64())]);
        let c = crate::imp::MoveClause::unmasked(svar_lv("x"), f64c(1.0));
        assert_eq!(clause_shape(&c, &mut ctx).unwrap(), None);
    }

    #[test]
    fn gridlocal_requires_everywhere_accesses() {
        let mut ctx = ctx_with(&[
            ("a", dfield(grid(&[8]), float64())),
            ("b", dfield(grid(&[8]), float64())),
        ]);
        let local = mv(avar("a", everywhere()), ld("b", everywhere()));
        assert!(is_gridlocal_computation(&local, &mut ctx).unwrap());

        let comm = mv(
            avar("a", everywhere()),
            fcncall(
                "cshift",
                vec![
                    (float64(), ld("b", everywhere())),
                    (int32(), int(1)),
                    (int32(), int(1)),
                ],
            ),
        );
        assert!(!is_gridlocal_computation(&comm, &mut ctx).unwrap());
    }

    #[test]
    fn serial_shapes_are_not_gridlocal() {
        let mut ctx = ctx_with(&[("a", dfield(serial_interval(1, 8), float64()))]);
        let m = mv(avar("a", everywhere()), f64c(0.0));
        assert!(!is_gridlocal_computation(&m, &mut ctx).unwrap());
    }

    #[test]
    fn blocked_move_with_nonconforming_clauses_is_an_error() {
        let mut ctx = ctx_with(&[
            ("a", dfield(grid(&[8]), float64())),
            ("b", dfield(grid(&[4]), float64())),
        ]);
        let clauses = vec![
            crate::imp::MoveClause::unmasked(avar("a", everywhere()), f64c(0.0)),
            crate::imp::MoveClause::unmasked(avar("b", everywhere()), f64c(0.0)),
        ];
        assert!(move_shape(&clauses, &mut ctx).is_err());
    }
}
