//! The declaration domain `D` (paper Figure 5).

use std::fmt;

use crate::types::Type;
use crate::value::Value;
use crate::Ident;

/// Declarative terms. Declarations bind identifiers to types (optionally
/// with initial values); scoping is achieved by the imperative bridge
/// operator `WITH_DECL` (see [`crate::imp::Imp::WithDecl`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `DECL : id*T -> D` — simple declaration.
    Decl(Ident, Type),
    /// `DECLSET : D list -> D` — multiple declarations.
    DeclSet(Vec<Decl>),
    /// `INITIALIZED : id*T*V -> D` — declaration plus initial value.
    Initialized(Ident, Type, Value),
}

impl Decl {
    /// Iterate over every `(id, type, initializer)` binding introduced,
    /// flattening `DECLSET`s.
    pub fn bindings(&self) -> Vec<(&Ident, &Type, Option<&Value>)> {
        let mut out = Vec::new();
        self.push_bindings(&mut out);
        out
    }

    fn push_bindings<'a>(&'a self, out: &mut Vec<(&'a Ident, &'a Type, Option<&'a Value>)>) {
        match self {
            Decl::Decl(id, ty) => out.push((id, ty, None)),
            Decl::Initialized(id, ty, v) => out.push((id, ty, Some(v))),
            Decl::DeclSet(ds) => {
                for d in ds {
                    d.push_bindings(out);
                }
            }
        }
    }
}

impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decl::Decl(id, ty) => write!(f, "DECL('{id}',{ty})"),
            Decl::Initialized(id, ty, v) => write!(f, "INITIALIZED('{id}',{ty},{v})"),
            Decl::DeclSet(ds) => {
                f.write_str("DECLSET[")?;
                for (i, d) in ds.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{d}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarType;

    #[test]
    fn bindings_flatten_declsets() {
        let d = Decl::DeclSet(vec![
            Decl::Decl("m".into(), ScalarType::Float64.into()),
            Decl::DeclSet(vec![Decl::Decl("n".into(), ScalarType::Float64.into())]),
        ]);
        let bs = d.bindings();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].0, "m");
        assert_eq!(bs[1].0, "n");
    }

    #[test]
    fn display_matches_paper_appendix() {
        let d = Decl::DeclSet(vec![
            Decl::Decl("m".into(), ScalarType::Float64.into()),
            Decl::Decl("n".into(), ScalarType::Float64.into()),
        ]);
        assert_eq!(
            d.to_string(),
            "DECLSET[DECL('m',float_64),DECL('n',float_64)]"
        );
    }
}
