//! Operator vocabularies shared by the value domain and later pipeline
//! stages (vectorizer, PEAC emitter).

use std::fmt;

use crate::types::ScalarType;

/// Binary operators usable in `BINARY` value terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`**`).
    Pow,
    /// Integer/float modulus (`MOD` intrinsic).
    Mod,
    /// Elementwise maximum (`MAX` intrinsic).
    Max,
    /// Elementwise minimum (`MIN` intrinsic).
    Min,
    /// Equality comparison; yields `logical_32`.
    Eq,
    /// Inequality comparison; yields `logical_32`.
    Ne,
    /// Less-than comparison; yields `logical_32`.
    Lt,
    /// Less-or-equal comparison; yields `logical_32`.
    Le,
    /// Greater-than comparison; yields `logical_32`.
    Gt,
    /// Greater-or-equal comparison; yields `logical_32`.
    Ge,
    /// Logical conjunction over `logical_32`.
    And,
    /// Logical disjunction over `logical_32`.
    Or,
}

impl BinOp {
    /// `true` for the six relational operators.
    pub fn is_relational(self) -> bool {
        use BinOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge)
    }

    /// `true` for the two logical connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// `true` for operators producing a value of the operands' type.
    pub fn is_arithmetic(self) -> bool {
        !self.is_relational() && !self.is_logical()
    }

    /// Result scalar type given the (already promoted) operand type.
    pub fn result_type(self, operand: ScalarType) -> ScalarType {
        if self.is_relational() || self.is_logical() {
            ScalarType::Logical32
        } else {
            operand
        }
    }

    /// Number of floating-point operations this operator contributes per
    /// element, used for GFLOPS accounting. Comparisons and logical ops
    /// count zero, `Pow` is expanded by the backend and counted there.
    pub fn flops(self) -> u64 {
        use BinOp::*;
        match self {
            Add | Sub | Mul | Div | Max | Min => 1,
            Pow | Mod => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "Add",
            BinOp::Sub => "Sub",
            BinOp::Mul => "Mul",
            BinOp::Div => "Div",
            BinOp::Pow => "Pow",
            BinOp::Mod => "Mod",
            BinOp::Max => "Max",
            BinOp::Min => "Min",
            BinOp::Eq => "Equals",
            BinOp::Ne => "NotEquals",
            BinOp::Lt => "Less",
            BinOp::Le => "LessEq",
            BinOp::Gt => "Greater",
            BinOp::Ge => "GreaterEq",
            BinOp::And => "And",
            BinOp::Or => "Or",
        };
        f.write_str(s)
    }
}

/// Unary operators usable in `UNARY` value terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation over `logical_32`.
    Not,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Conversion to `float_64` (`DBLE`).
    ToFloat64,
    /// Conversion to `float_32` (`REAL`).
    ToFloat32,
    /// Truncating conversion to `integer_32` (`INT`).
    ToInt,
}

impl UnOp {
    /// Result type given the operand type, or `None` when inapplicable.
    pub fn result_type(self, operand: ScalarType) -> Option<ScalarType> {
        use ScalarType::*;
        use UnOp::*;
        match self {
            Neg | Abs => (operand != Logical32).then_some(operand),
            Not => (operand == Logical32).then_some(Logical32),
            Sqrt | Sin | Cos | Exp | Log => match operand {
                Float32 => Some(Float32),
                Float64 | Integer32 => Some(Float64),
                Logical32 => None,
            },
            ToFloat64 => (operand != Logical32).then_some(Float64),
            ToFloat32 => (operand != Logical32).then_some(Float32),
            ToInt => (operand != Logical32).then_some(Integer32),
        }
    }

    /// Floating-point operations contributed per element (transcendental
    /// calls are counted as a single flop, matching how peak-rate
    /// accounting treated them on the CM/2's Weitek units).
    pub fn flops(self) -> u64 {
        use UnOp::*;
        match self {
            Neg | Abs | Sqrt | Sin | Cos | Exp | Log => 1,
            Not | ToFloat64 | ToFloat32 | ToInt => 0,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "Neg",
            UnOp::Not => "Not",
            UnOp::Abs => "Abs",
            UnOp::Sqrt => "Sqrt",
            UnOp::Sin => "Sin",
            UnOp::Cos => "Cos",
            UnOp::Exp => "Exp",
            UnOp::Log => "Log",
            UnOp::ToFloat64 => "Dble",
            UnOp::ToFloat32 => "Real",
            UnOp::ToInt => "Int",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relational_ops_yield_logical() {
        assert_eq!(
            BinOp::Lt.result_type(ScalarType::Float64),
            ScalarType::Logical32
        );
        assert_eq!(
            BinOp::Add.result_type(ScalarType::Float64),
            ScalarType::Float64
        );
    }

    #[test]
    fn not_requires_logical() {
        assert_eq!(UnOp::Not.result_type(ScalarType::Float64), None);
        assert_eq!(
            UnOp::Not.result_type(ScalarType::Logical32),
            Some(ScalarType::Logical32)
        );
    }

    #[test]
    fn transcendentals_promote_integers() {
        assert_eq!(
            UnOp::Sin.result_type(ScalarType::Integer32),
            Some(ScalarType::Float64)
        );
    }
}
