//! Read/write-set dependence analysis over NIR.
//!
//! The blocking transformations of the paper's §4.2 reorder statements to
//! group computations over like shapes (Fig. 9) and to pair masked
//! assignments with disjoint masks (Fig. 10) — "dependencies allow the
//! code movement". This module provides the conservative dependence test
//! those transformations consult: two imperatives *commute* when neither
//! writes anything the other reads or writes.
//!
//! Accesses are tracked per identifier at section granularity, so the
//! analysis can prove that `B(1:32:2,:)` and `B(2:32:2,:)` do not
//! conflict (the Fig. 10 case) while remaining conservative for dynamic
//! subscripts.

use std::collections::HashMap;

use crate::imp::{Imp, LValue};
use crate::value::{FieldAction, SectionRange, Value};
use crate::Ident;

/// A conservative description of which part of a variable an access
/// touches.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Possibly the whole variable (scalars, `everywhere`, dynamic
    /// subscripts).
    Whole,
    /// A strided rectangular section with statically known bounds.
    Section(Vec<SectionRange>),
}

impl Access {
    /// The access a field action denotes: constant subscripts shrink to
    /// a degenerate one-element section per axis; dynamic subscripts
    /// and `everywhere` are conservatively the whole variable.
    #[must_use]
    pub fn of_field_action(fa: &FieldAction) -> Access {
        access_of_field_action(fa)
    }

    /// `true` when the two accesses may touch a common element.
    pub fn overlaps(&self, other: &Access) -> bool {
        match (self, other) {
            (Access::Section(a), Access::Section(b)) => {
                if a.len() != b.len() {
                    // Rank confusion: be conservative.
                    return true;
                }
                // Rectangles are disjoint if disjoint along any axis.
                !a.iter().zip(b).any(|(ra, rb)| ra.disjoint(rb))
            }
            _ => true,
        }
    }
}

fn access_of_field_action(fa: &FieldAction) -> Access {
    match fa {
        FieldAction::Everywhere => Access::Whole,
        FieldAction::Section(ranges) => Access::Section(ranges.clone()),
        FieldAction::Subscript(ixs) => {
            // Constant subscripts shrink to a degenerate section.
            let mut ranges = Vec::with_capacity(ixs.len());
            for ix in ixs {
                match ix.as_const().and_then(|c| c.as_f64()) {
                    Some(c) if c.fract() == 0.0 => {
                        let c = c as i64;
                        ranges.push(SectionRange::new(c, c));
                    }
                    _ => return Access::Whole,
                }
            }
            Access::Section(ranges)
        }
    }
}

/// The read and write sets of an imperative.
#[derive(Debug, Clone, Default)]
pub struct RwSets {
    reads: HashMap<Ident, Vec<Access>>,
    writes: HashMap<Ident, Vec<Access>>,
}

impl RwSets {
    /// Collect the read/write sets of an imperative.
    pub fn of(imp: &Imp) -> RwSets {
        let mut sets = RwSets::default();
        sets.visit_imp(imp);
        sets
    }

    /// Identifiers read (possibly partially).
    pub fn read_idents(&self) -> impl Iterator<Item = &Ident> {
        self.reads.keys()
    }

    /// Identifiers written (possibly partially).
    pub fn written_idents(&self) -> impl Iterator<Item = &Ident> {
        self.writes.keys()
    }

    /// Every read, per identifier, at access granularity.
    pub fn reads(&self) -> impl Iterator<Item = (&Ident, &[Access])> {
        self.reads.iter().map(|(id, a)| (id, a.as_slice()))
    }

    /// Every write, per identifier, at access granularity.
    pub fn writes(&self) -> impl Iterator<Item = (&Ident, &[Access])> {
        self.writes.iter().map(|(id, a)| (id, a.as_slice()))
    }

    /// The recorded read accesses of one identifier, if any.
    #[must_use]
    pub fn reads_of(&self, id: &str) -> Option<&[Access]> {
        self.reads.get(id).map(Vec::as_slice)
    }

    /// The recorded write accesses of one identifier, if any.
    #[must_use]
    pub fn writes_of(&self, id: &str) -> Option<&[Access]> {
        self.writes.get(id).map(Vec::as_slice)
    }

    /// `true` when some write of `self` may touch an element that
    /// `other`'s accesses of the same variable touch.
    fn writes_conflict_with(&self, other: &HashMap<Ident, Vec<Access>>) -> bool {
        for (id, ws) in &self.writes {
            if let Some(os) = other.get(id) {
                for w in ws {
                    if os.iter().any(|o| w.overlaps(o)) {
                        return true;
                    }
                }
            }
        }
        false
    }

    fn add_write(&mut self, id: &Ident, a: Access) {
        self.writes.entry(id.clone()).or_default().push(a);
    }

    fn visit_value(&mut self, v: &Value) {
        v.walk(&mut |node| match node {
            Value::SVar(id) => {
                // `walk` visits subterms; record and move on.
                self.reads
                    .entry(id.clone())
                    .or_default()
                    .push(Access::Whole);
            }
            Value::AVar(id, fa) => {
                let a = access_of_field_action(fa);
                self.reads.entry(id.clone()).or_default().push(a);
            }
            _ => {}
        });
    }

    fn visit_imp(&mut self, imp: &Imp) {
        match imp {
            Imp::Program(b) => self.visit_imp(b),
            Imp::Skip => {}
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
                for x in xs {
                    self.visit_imp(x);
                }
            }
            Imp::Move(clauses) => {
                for c in clauses {
                    self.visit_value(&c.mask);
                    self.visit_value(&c.src);
                    match &c.dst {
                        LValue::SVar(id) => self.add_write(id, Access::Whole),
                        LValue::AVar(id, fa) => {
                            let a = access_of_field_action(fa);
                            // A masked write may also be a partial write;
                            // treating it as a write of the stated region
                            // is conservative for reordering.
                            self.add_write(id, a);
                        }
                    }
                }
            }
            Imp::IfThenElse(c, t, e) => {
                self.visit_value(c);
                self.visit_imp(t);
                self.visit_imp(e);
            }
            Imp::While(c, b) => {
                self.visit_value(c);
                self.visit_imp(b);
            }
            Imp::Do(_, _, b) => {
                // Subscripts inside the body usually involve DoIndex and
                // collapse to Whole accesses — conservative.
                self.visit_imp(b);
            }
            Imp::WithDecl(d, b) => {
                for (_, _, init) in d.bindings() {
                    if let Some(v) = init {
                        self.visit_value(v);
                    }
                }
                self.visit_imp(b);
                // Locally declared names cannot conflict outside, but
                // removing them requires alpha-uniqueness; keep them —
                // conservative.
            }
            Imp::WithDomain(_, _, b) => self.visit_imp(b),
        }
    }
}

/// `true` when the two imperatives may be executed in either order with
/// the same result (no RAW, WAR or WAW hazard between them).
pub fn commutes(a: &Imp, b: &Imp) -> bool {
    let ra = RwSets::of(a);
    let rb = RwSets::of(b);
    !(ra.writes_conflict_with(&rb.reads)
        || rb.writes_conflict_with(&ra.reads)
        || ra.writes_conflict_with(&rb.writes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn independent_moves_commute() {
        let a = mv(avar("a", everywhere()), int(1));
        let b = mv(avar("b", everywhere()), int(2));
        assert!(commutes(&a, &b));
    }

    #[test]
    fn raw_hazard_blocks_reordering() {
        let a = mv(avar("a", everywhere()), int(1));
        let b = mv(avar("b", everywhere()), ld("a", everywhere()));
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn waw_hazard_blocks_reordering() {
        let a = mv(avar("a", everywhere()), int(1));
        let b = mv(avar("a", everywhere()), int(2));
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn war_hazard_blocks_reordering() {
        let a = mv(avar("b", everywhere()), ld("a", everywhere()));
        let b = mv(avar("a", everywhere()), int(1));
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn disjoint_sections_commute() {
        use crate::value::SectionRange;
        // B(1:31:2,:) = ... and B(2:32:2,:) = ... (the Fig. 10 masks)
        let odd = mv(
            avar(
                "b",
                section(vec![
                    SectionRange::strided(1, 31, 2),
                    SectionRange::new(1, 32),
                ]),
            ),
            int(1),
        );
        let even = mv(
            avar(
                "b",
                section(vec![
                    SectionRange::strided(2, 32, 2),
                    SectionRange::new(1, 32),
                ]),
            ),
            int(2),
        );
        assert!(commutes(&odd, &even));
    }

    #[test]
    fn overlapping_sections_do_not_commute() {
        use crate::value::SectionRange;
        let a = mv(avar("b", section(vec![SectionRange::new(1, 16)])), int(1));
        let b = mv(avar("b", section(vec![SectionRange::new(16, 32)])), int(2));
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn constant_subscripts_shrink_to_points() {
        let a = mv(avar("b", subscript(vec![int(1)])), int(1));
        let b = mv(avar("b", subscript(vec![int(2)])), int(2));
        assert!(commutes(&a, &b));
        let c = mv(avar("b", subscript(vec![int(1)])), int(3));
        assert!(!commutes(&a, &c));
    }

    #[test]
    fn dynamic_subscripts_are_conservative() {
        let a = mv(avar("b", subscript(vec![svar("i")])), int(1));
        let b = mv(avar("b", subscript(vec![svar("j")])), int(2));
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn scalar_reads_in_masks_count() {
        let a = mv(svar_lv("n"), int(3));
        let b = mv_masked(
            bin(crate::ops::BinOp::Gt, svar("n"), int(0)),
            avar("x", everywhere()),
            int(1),
        );
        assert!(!commutes(&a, &b));
    }

    #[test]
    fn rank_mismatch_is_conservative() {
        use crate::value::SectionRange;
        // A rank-1 section against a rank-2 section: never provably
        // disjoint, even when the first axes are.
        let r1 = Access::Section(vec![SectionRange::new(1, 4)]);
        let r2 = Access::Section(vec![SectionRange::new(9, 12), SectionRange::new(1, 8)]);
        assert!(r1.overlaps(&r2));
        assert!(r2.overlaps(&r1));
        // And anything against Whole overlaps.
        assert!(Access::Whole.overlaps(&r1));
        assert!(r1.overlaps(&Access::Whole));
        assert!(Access::Whole.overlaps(&Access::Whole));
    }

    #[test]
    fn degenerate_sections_overlap_exactly() {
        use crate::value::SectionRange;
        let point = |i| Access::Section(vec![SectionRange::new(i, i)]);
        assert!(point(3).overlaps(&point(3)));
        assert!(!point(3).overlaps(&point(4)));
        // A point inside / outside a strided section.
        let evens = Access::Section(vec![SectionRange::strided(2, 32, 2)]);
        assert!(point(4).overlaps(&evens));
        assert!(!point(5).overlaps(&evens));
    }

    #[test]
    fn negative_stride_sections_normalize_before_overlap() {
        use crate::value::SectionRange;
        // B(10:2:-2) and B(9:1:-2) — descending parity sections are
        // disjoint once normalized.
        let desc_even = Access::Section(vec![SectionRange::normalized(10, 2, -2)]);
        let desc_odd = Access::Section(vec![SectionRange::normalized(9, 1, -2)]);
        assert!(!desc_even.overlaps(&desc_odd));
        // A descending section still overlaps its ascending mirror.
        let asc_even = Access::Section(vec![SectionRange::strided(2, 10, 2)]);
        assert!(desc_even.overlaps(&asc_even));
    }

    #[test]
    fn access_iterators_expose_granular_sets() {
        use crate::value::SectionRange;
        let stmt = mv(
            avar("b", section(vec![SectionRange::new(1, 16)])),
            ld("a", everywhere()),
        );
        let rw = RwSets::of(&stmt);
        let writes: Vec<_> = rw.writes().collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(
            rw.writes_of("b"),
            Some(&[Access::Section(vec![SectionRange::new(1, 16)])][..])
        );
        assert_eq!(rw.reads_of("a"), Some(&[Access::Whole][..]));
        assert_eq!(rw.reads_of("b"), None);
    }

    #[test]
    fn fig9_diagonal_gather_conflicts_with_a_writes() {
        // MOVE a = ... ; DO beta: c(i) = a(i,i) — RAW on 'a'.
        let write_a = mv(avar("a", everywhere()), int(0));
        let gather = do_over(
            "i",
            domain("beta"),
            mv(
                avar("c", subscript(vec![do_index("i", 1)])),
                ld("a", subscript(vec![do_index("i", 1), do_index("i", 1)])),
            ),
        );
        assert!(!commutes(&write_a, &gather));
        // But it commutes with a write of unrelated 'b'.
        let write_b = mv(avar("b", everywhere()), int(0));
        assert!(commutes(&write_b, &gather));
    }
}
