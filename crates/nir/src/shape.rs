//! The shape domain `S` (paper Figure 6).
//!
//! Shapes are the paper's central novelty: "a class of primitive semantic
//! operators which model iteration" over abstract Cartesian product spaces.
//! A shape describes *where* an action happens; whether the points of the
//! space are visited serially or all at once is a property of the shape
//! itself (`interval` is parallel, `serial_interval` is serial), so a single
//! `DO(S, I)` imperative covers both `DO` loops and data-parallel execution.
//!
//! Shapes may reference named domains bound by `WITH_DOMAIN` (e.g. the
//! paper's Fig. 8 binds `beta = prod_dom[domain 'alpha', interval(1,64)]`);
//! [`Shape::resolve`] eliminates such references against a domain
//! environment, and the geometric queries ([`Shape::extents`],
//! [`Shape::size`], …) require a resolved shape.

use std::collections::HashMap;
use std::fmt;

use crate::error::NirError;
use crate::Ident;

/// A shape: an abstract iteration space (paper Fig. 6, domain `S`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Shape {
    /// `point : int -> S` — a single point.
    Point(i64),
    /// `interval : S*S -> S` — a **parallel** vector shape over
    /// `lo..=hi`. All points may be visited concurrently.
    Interval(i64, i64),
    /// `serial_interval : S*S -> S` — a **serial** vector shape over
    /// `lo..=hi`. Points must be visited in increasing order.
    SerialInterval(i64, i64),
    /// `prod_dom : S list -> S` — shape cross-product.
    Product(Vec<Shape>),
    /// `domain 'name'` — reference to a domain bound by `WITH_DOMAIN`.
    Ref(Ident),
}

/// An environment resolving domain names to (resolved) shapes.
pub type DomainEnv = HashMap<Ident, Shape>;

/// One axis of a resolved shape: bounds plus serial/parallel flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// `true` when the axis must be iterated serially.
    pub serial: bool,
}

impl Extent {
    /// Number of points along this axis (zero when empty).
    pub fn len(&self) -> usize {
        if self.hi < self.lo {
            0
        } else {
            (self.hi - self.lo + 1) as usize
        }
    }

    /// `true` when the axis contains no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Shape {
    /// A parallel one-dimensional shape `lo..=hi`.
    pub fn interval(lo: i64, hi: i64) -> Self {
        Shape::Interval(lo, hi)
    }

    /// A serial one-dimensional shape `lo..=hi`.
    pub fn serial(lo: i64, hi: i64) -> Self {
        Shape::SerialInterval(lo, hi)
    }

    /// A parallel grid with axes `1..=e` for each extent `e`.
    ///
    /// This is the shape of a Fortran array declared `A(e1, e2, ...)`.
    pub fn grid(extents: &[i64]) -> Self {
        Shape::Product(extents.iter().map(|&e| Shape::Interval(1, e)).collect())
    }

    /// A reference to a named domain.
    pub fn domain(name: &str) -> Self {
        Shape::Ref(name.into())
    }

    /// `true` when the shape contains no domain references.
    pub fn is_resolved(&self) -> bool {
        match self {
            Shape::Ref(_) => false,
            Shape::Product(dims) => dims.iter().all(Shape::is_resolved),
            _ => true,
        }
    }

    /// Replace every domain reference by its binding in `env`.
    ///
    /// # Errors
    ///
    /// Fails with [`NirError::UnboundDomain`] when a referenced domain is
    /// not bound.
    pub fn resolve(&self, env: &DomainEnv) -> Result<Shape, NirError> {
        match self {
            Shape::Ref(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| NirError::UnboundDomain(name.clone())),
            Shape::Product(dims) => Ok(Shape::Product(
                dims.iter()
                    .map(|d| d.resolve(env))
                    .collect::<Result<_, _>>()?,
            )),
            other => Ok(other.clone()),
        }
    }

    /// Number of axes after normalisation. Points are rank 0.
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn rank(&self) -> usize {
        self.extents().len()
    }

    /// Total number of points in the space.
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn size(&self) -> usize {
        self.extents().iter().map(Extent::len).product()
    }

    /// The flattened per-axis extents of the shape.
    ///
    /// `Point` contributes no axis (it selects, it does not iterate);
    /// nested products are flattened, matching the paper's reading of the
    /// cross-product as inductively defined iteration (Fig. 4, rule 4).
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn extents(&self) -> Vec<Extent> {
        let mut out = Vec::new();
        self.push_extents(&mut out);
        out
    }

    fn push_extents(&self, out: &mut Vec<Extent>) {
        match self {
            Shape::Point(_) => {}
            Shape::Interval(lo, hi) => out.push(Extent {
                lo: *lo,
                hi: *hi,
                serial: false,
            }),
            Shape::SerialInterval(lo, hi) => out.push(Extent {
                lo: *lo,
                hi: *hi,
                serial: true,
            }),
            Shape::Product(dims) => {
                for d in dims {
                    d.push_extents(out);
                }
            }
            Shape::Ref(name) => panic!("geometric query on unresolved domain reference '{name}'"),
        }
    }

    /// `true` when every axis may be visited concurrently.
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn is_parallel(&self) -> bool {
        self.extents().iter().all(|e| !e.serial)
    }

    /// `true` when at least one axis must be visited serially.
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn has_serial_axis(&self) -> bool {
        self.extents().iter().any(|e| e.serial)
    }

    /// Two shapes *conform* when their axis lengths agree pairwise.
    ///
    /// This is the agreement relation checked by static shapechecking: in
    /// all direct computations between arrays, the shapes of interacting
    /// arrays must conform. Serial/parallel flavour and absolute bounds do
    /// not affect conformance (Fortran array conformance is by extent).
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn conforms(&self, other: &Shape) -> bool {
        let a = self.extents();
        let b = other.extents();
        a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| x.len() == y.len())
    }

    /// Iterate over every point of the shape in row-major order.
    ///
    /// The iterator yields full coordinate vectors. Row-major order is the
    /// canonical visiting order for serial axes and the storage order of
    /// [`crate::array::ArrayData`].
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn points(&self) -> PointIter {
        PointIter::new(self.extents())
    }

    /// The per-axis inclusive bounds, as used to allocate
    /// [`crate::array::ArrayData`] for a field over this shape.
    ///
    /// # Panics
    ///
    /// Panics on unresolved domain references; resolve first.
    pub fn array_bounds(&self) -> Vec<(i64, i64)> {
        self.extents().iter().map(|e| (e.lo, e.hi)).collect()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Point(p) => write!(f, "point {p}"),
            Shape::Interval(lo, hi) => write!(f, "interval(point {lo},point {hi})"),
            Shape::SerialInterval(lo, hi) => {
                write!(f, "serial_interval(point {lo},point {hi})")
            }
            Shape::Product(dims) => {
                write!(f, "prod_dom[")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "]")
            }
            Shape::Ref(name) => write!(f, "domain '{name}'"),
        }
    }
}

/// Row-major iterator over the points of a shape.
///
/// Produced by [`Shape::points`].
#[derive(Debug, Clone)]
pub struct PointIter {
    extents: Vec<Extent>,
    next: Option<Vec<i64>>,
}

impl PointIter {
    fn new(extents: Vec<Extent>) -> Self {
        let empty = extents.iter().any(Extent::is_empty);
        let next = if empty {
            None
        } else {
            Some(extents.iter().map(|e| e.lo).collect())
        };
        PointIter { extents, next }
    }
}

impl Iterator for PointIter {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        let current = self.next.clone()?;
        // Advance odometer-style, last axis fastest.
        let mut coords = current.clone();
        let mut axis = self.extents.len();
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            if coords[axis] < self.extents[axis].hi {
                coords[axis] += 1;
                self.next = Some(coords);
                break;
            }
            coords[axis] = self.extents[axis].lo;
        }
        Some(current)
    }
}

/// Legacy alias kept for API symmetry with the paper's prose, which
/// distinguishes shape *expressions* (possibly containing `domain` refs)
/// from resolved shapes. In this implementation both are [`Shape`].
pub type ShapeExpr = Shape;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_parallel_unit_based_axes() {
        let s = Shape::grid(&[128, 64]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.size(), 128 * 64);
        assert!(s.is_parallel());
        assert_eq!(
            s.extents(),
            vec![
                Extent {
                    lo: 1,
                    hi: 128,
                    serial: false
                },
                Extent {
                    lo: 1,
                    hi: 64,
                    serial: false
                }
            ]
        );
    }

    #[test]
    fn point_contributes_no_axis() {
        let s = Shape::Product(vec![Shape::Point(7), Shape::Interval(1, 4)]);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn nested_products_flatten() {
        let inner = Shape::Product(vec![Shape::Interval(1, 2), Shape::Interval(1, 3)]);
        let s = Shape::Product(vec![inner, Shape::SerialInterval(0, 4)]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.size(), 2 * 3 * 5);
        assert!(s.has_serial_axis());
        assert!(!s.is_parallel());
    }

    #[test]
    fn resolve_substitutes_domain_refs() {
        let mut env = DomainEnv::new();
        env.insert("alpha".into(), Shape::Interval(1, 128));
        let beta = Shape::Product(vec![Shape::domain("alpha"), Shape::Interval(1, 64)]);
        assert!(!beta.is_resolved());
        let resolved = beta.resolve(&env).unwrap();
        assert!(resolved.is_resolved());
        assert_eq!(resolved.size(), 128 * 64);
    }

    #[test]
    fn resolve_unbound_domain_fails() {
        let beta = Shape::domain("nowhere");
        assert_eq!(
            beta.resolve(&DomainEnv::new()),
            Err(NirError::UnboundDomain("nowhere".into()))
        );
    }

    #[test]
    fn conformance_is_by_extent_not_bounds_or_flavour() {
        let a = Shape::Interval(1, 64);
        let b = Shape::SerialInterval(0, 63);
        assert!(a.conforms(&b));
        let c = Shape::Interval(1, 32);
        assert!(!a.conforms(&c));
    }

    #[test]
    fn empty_interval_has_no_points() {
        let s = Shape::Interval(5, 4);
        assert_eq!(s.size(), 0);
        assert_eq!(s.points().count(), 0);
    }

    #[test]
    fn points_are_row_major() {
        let s = Shape::Product(vec![Shape::Interval(1, 2), Shape::Interval(1, 2)]);
        let pts: Vec<Vec<i64>> = s.points().collect();
        assert_eq!(pts, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn points_count_matches_size() {
        let s = Shape::Product(vec![
            Shape::Interval(2, 5),
            Shape::SerialInterval(-1, 1),
            Shape::Interval(1, 3),
        ]);
        assert_eq!(s.points().count(), s.size());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let s = Shape::Product(vec![Shape::domain("alpha"), Shape::Interval(1, 64)]);
        assert_eq!(
            s.to_string(),
            "prod_dom[domain 'alpha',interval(point 1,point 64)]"
        );
    }
}
