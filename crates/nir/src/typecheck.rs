//! Static typechecking of NIR terms (paper §4.1).
//!
//! The semantic lowering stage produces imperatives that "have been
//! typechecked and shapechecked". Both checks are implemented by one
//! walker, [`Checker`], parameterised by a [`Mode`]: the type mode
//! verifies scalar-type correctness, the shape mode verifies that in all
//! direct computations between arrays the shapes of interacting arrays
//! agree (see [`crate::shapecheck`]).

use std::collections::HashMap;

use crate::decl::Decl;
use crate::error::NirError;
use crate::imp::{Imp, LValue, MoveClause};
use crate::ops::BinOp;
use crate::shape::{DomainEnv, Shape};
use crate::types::{ScalarType, Type};
use crate::value::{FieldAction, Value};
use crate::Ident;

/// Which class of static error the checker reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Report scalar-type errors only (shape mismatches are ignored by
    /// treating all conforming-or-not fields alike).
    Types,
    /// Report shape errors only (scalar types are unified to `float_64`).
    Shapes,
    /// Report both.
    Both,
}

/// Static analysis context: variable types, domain bindings, enclosing
/// `DO` loops.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    vars: Vec<HashMap<Ident, Type>>,
    domains: DomainEnv,
    dos: Vec<(Ident, Shape)>,
}

impl Ctx {
    /// An empty context.
    pub fn new() -> Self {
        Ctx {
            vars: vec![HashMap::new()],
            domains: DomainEnv::new(),
            dos: Vec::new(),
        }
    }

    /// Look up a variable's type.
    pub fn var(&self, id: &str) -> Option<&Type> {
        self.vars.iter().rev().find_map(|scope| scope.get(id))
    }

    /// The domain environment accumulated so far.
    pub fn domains(&self) -> &DomainEnv {
        &self.domains
    }

    /// Bind a variable in the innermost scope.
    pub fn bind_var(&mut self, id: Ident, ty: Type) {
        self.vars
            .last_mut()
            .expect("context always has a scope")
            .insert(id, ty);
    }

    /// Bind a domain name to a resolved shape.
    ///
    /// # Errors
    ///
    /// Fails when the shape itself references unbound domains.
    pub fn bind_domain(&mut self, id: Ident, shape: &Shape) -> Result<(), NirError> {
        let resolved = shape.resolve(&self.domains)?;
        self.domains.insert(id, resolved);
        Ok(())
    }

    /// Resolve a shape against the bound domains.
    ///
    /// # Errors
    ///
    /// Fails when the shape references unbound domains.
    pub fn resolve(&self, shape: &Shape) -> Result<Shape, NirError> {
        shape.resolve(&self.domains)
    }

    /// The shape of the innermost enclosing `DO` named `dom`.
    pub fn do_shape(&self, dom: &str) -> Option<&Shape> {
        self.dos
            .iter()
            .rev()
            .find_map(|(name, s)| (name == dom).then_some(s))
    }

    /// Enter a `DO` binding (for analyses walking into loop bodies).
    pub fn push_do(&mut self, dom: Ident, shape: Shape) {
        self.dos.push((dom, shape));
    }

    /// Leave the innermost `DO` binding.
    pub fn pop_do(&mut self) {
        self.dos.pop();
    }

    fn push_scope(&mut self) {
        self.vars.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.vars.pop();
    }
}

/// The inferred classification of a value: its scalar element type and,
/// for parallel values, the (resolved) shape it ranges over.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueType {
    /// Scalar element type.
    pub elem: ScalarType,
    /// `None` for scalars; the resolved shape for field values.
    pub shape: Option<Shape>,
}

impl ValueType {
    /// A scalar classification.
    pub fn scalar(elem: ScalarType) -> Self {
        ValueType { elem, shape: None }
    }

    /// A field classification.
    pub fn field(elem: ScalarType, shape: Shape) -> Self {
        ValueType {
            elem,
            shape: Some(shape),
        }
    }

    /// `true` when the value is a plain scalar.
    pub fn is_scalar(&self) -> bool {
        self.shape.is_none()
    }
}

/// The NIR static checker. Construct with [`Checker::new`] and run with
/// [`Checker::check_program`], or use the convenience function
/// [`check`].
#[derive(Debug)]
pub struct Checker {
    mode: Mode,
}

impl Checker {
    /// A checker reporting the given class of errors.
    pub fn new(mode: Mode) -> Self {
        Checker { mode }
    }

    fn want_types(&self) -> bool {
        matches!(self.mode, Mode::Types | Mode::Both)
    }

    fn want_shapes(&self) -> bool {
        matches!(self.mode, Mode::Shapes | Mode::Both)
    }

    /// Check a whole program.
    ///
    /// # Errors
    ///
    /// Returns the first static error found, of the classes selected by
    /// the checker's [`Mode`].
    pub fn check_program(&self, imp: &Imp) -> Result<(), NirError> {
        let mut ctx = Ctx::new();
        self.check_imp(imp, &mut ctx)
    }

    /// Check one imperative in a given context.
    ///
    /// # Errors
    ///
    /// Returns the first static error found.
    pub fn check_imp(&self, imp: &Imp, ctx: &mut Ctx) -> Result<(), NirError> {
        match imp {
            Imp::Program(body) => self.check_imp(body, ctx),
            Imp::Skip => Ok(()),
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
                for x in xs {
                    self.check_imp(x, ctx)?;
                }
                Ok(())
            }
            Imp::Move(clauses) => {
                for c in clauses {
                    self.check_move(c, ctx)?;
                }
                Ok(())
            }
            Imp::IfThenElse(c, t, e) => {
                self.check_scalar_condition(c, ctx)?;
                self.check_imp(t, ctx)?;
                self.check_imp(e, ctx)
            }
            Imp::While(c, b) => {
                self.check_scalar_condition(c, ctx)?;
                self.check_imp(b, ctx)
            }
            Imp::Do(dom, shape, body) => {
                let resolved = ctx.resolve(shape)?;
                ctx.dos.push((dom.clone(), resolved));
                let r = self.check_imp(body, ctx);
                ctx.dos.pop();
                r
            }
            Imp::WithDecl(d, body) => {
                ctx.push_scope();
                let r = self
                    .check_decl(d, ctx)
                    .and_then(|()| self.check_imp(body, ctx));
                ctx.pop_scope();
                r
            }
            Imp::WithDomain(name, shape, body) => {
                // Domain bindings shadow; keep the old binding to restore.
                let old = ctx.domains.get(name).cloned();
                ctx.bind_domain(name.clone(), shape)?;
                let r = self.check_imp(body, ctx);
                match old {
                    Some(s) => {
                        ctx.domains.insert(name.clone(), s);
                    }
                    None => {
                        ctx.domains.remove(name);
                    }
                }
                r
            }
        }
    }

    fn check_decl(&self, d: &Decl, ctx: &mut Ctx) -> Result<(), NirError> {
        for (id, ty, init) in d.bindings() {
            // Resolve dfield shapes now so later queries cannot fail.
            let resolved_ty = resolve_type(ty, ctx)?;
            if let Some(v) = init {
                let vt = self.type_of(v, ctx)?;
                if self.want_types() {
                    check_assignable(vt.elem, resolved_ty.elem_scalar())?;
                }
                if self.want_shapes() {
                    if let (Some(vs), Some(ds)) = (&vt.shape, resolved_ty.field_shape()) {
                        if !vs.conforms(ds) {
                            return Err(NirError::Shape(format!(
                                "initializer shape {vs} does not conform to declared shape {ds} for '{id}'"
                            )));
                        }
                    }
                }
            }
            ctx.bind_var(id.clone(), resolved_ty);
        }
        Ok(())
    }

    fn check_scalar_condition(&self, c: &Value, ctx: &mut Ctx) -> Result<(), NirError> {
        let vt = self.type_of(c, ctx)?;
        if self.want_types() && vt.elem != ScalarType::Logical32 {
            return Err(NirError::Type(format!(
                "condition must be logical, found {}",
                vt.elem
            )));
        }
        if self.want_shapes() && !vt.is_scalar() {
            return Err(NirError::Shape(
                "control condition must be scalar, found a field".into(),
            ));
        }
        Ok(())
    }

    fn check_move(&self, c: &MoveClause, ctx: &mut Ctx) -> Result<(), NirError> {
        let src_t = self.type_of(&c.src, ctx)?;
        let mask_t = self.type_of(&c.mask, ctx)?;
        if self.want_types() && mask_t.elem != ScalarType::Logical32 {
            return Err(NirError::Type(format!(
                "move mask must be logical, found {}",
                mask_t.elem
            )));
        }
        let dst_t = self.type_of_lvalue(&c.dst, ctx)?;
        if self.want_types() {
            check_assignable(src_t.elem, dst_t.elem)?;
        }
        if self.want_shapes() {
            // Agreement among dst, src and mask shapes (scalars broadcast).
            let shapes: Vec<&Shape> = [&dst_t.shape, &src_t.shape, &mask_t.shape]
                .into_iter()
                .filter_map(|s| s.as_ref())
                .collect();
            for w in shapes.windows(2) {
                if !w[0].conforms(w[1]) {
                    return Err(NirError::Shape(format!(
                        "shapes in MOVE do not agree: {} vs {}",
                        w[0], w[1]
                    )));
                }
            }
            if dst_t.is_scalar() && !src_t.is_scalar() {
                return Err(NirError::Shape("cannot move a field into a scalar".into()));
            }
        }
        Ok(())
    }

    /// Classify an assignment target.
    ///
    /// # Errors
    ///
    /// Fails on unbound identifiers, rank mismatches or bad subscripts.
    pub fn type_of_lvalue(&self, lv: &LValue, ctx: &mut Ctx) -> Result<ValueType, NirError> {
        match lv {
            LValue::SVar(id) => {
                let ty = ctx
                    .var(id)
                    .ok_or_else(|| NirError::Unbound(id.clone()))?
                    .clone();
                if !ty.is_scalar() {
                    return Err(NirError::Type(format!(
                        "SVAR target '{id}' names a field; use AVAR"
                    )));
                }
                Ok(ValueType::scalar(ty.elem_scalar()))
            }
            LValue::AVar(id, fa) => self.classify_avar(id, fa, ctx),
        }
    }

    /// Infer the classification of a value.
    ///
    /// # Errors
    ///
    /// Fails on any static error in the term.
    pub fn type_of(&self, v: &Value, ctx: &mut Ctx) -> Result<ValueType, NirError> {
        match v {
            Value::Scalar(c) => Ok(ValueType::scalar(c.scalar_type())),
            Value::SVar(id) => {
                let ty = ctx
                    .var(id)
                    .ok_or_else(|| NirError::Unbound(id.clone()))?
                    .clone();
                if !ty.is_scalar() {
                    return Err(NirError::Type(format!(
                        "SVAR '{id}' names a field; use AVAR"
                    )));
                }
                Ok(ValueType::scalar(ty.elem_scalar()))
            }
            Value::AVar(id, fa) => self.classify_avar(id, fa, ctx),
            Value::Unary(op, a) => {
                let at = self.type_of(a, ctx)?;
                let elem = if self.want_types() {
                    op.result_type(at.elem).ok_or_else(|| {
                        NirError::Type(format!("operator {op} inapplicable to {}", at.elem))
                    })?
                } else {
                    op.result_type(at.elem).unwrap_or(at.elem)
                };
                Ok(ValueType {
                    elem,
                    shape: at.shape,
                })
            }
            Value::Binary(op, a, b) => {
                let at = self.type_of(a, ctx)?;
                let bt = self.type_of(b, ctx)?;
                let elem = self.join_binop(*op, at.elem, bt.elem)?;
                let shape = match (&at.shape, &bt.shape) {
                    (None, None) => None,
                    (Some(s), None) | (None, Some(s)) => Some(s.clone()),
                    (Some(sa), Some(sb)) => {
                        if self.want_shapes() && !sa.conforms(sb) {
                            return Err(NirError::Shape(format!(
                                "operands of {op} have non-conforming shapes: {sa} vs {sb}"
                            )));
                        }
                        Some(sa.clone())
                    }
                };
                Ok(ValueType { elem, shape })
            }
            Value::FcnCall(name, args) => self.classify_call(name, args, ctx),
            Value::LocalUnder(shape, dim) => {
                let resolved = ctx.resolve(shape)?;
                let rank = resolved.rank();
                if *dim == 0 || *dim > rank {
                    return Err(NirError::Malformed(format!(
                        "local_under dimension {dim} out of range for rank {rank}"
                    )));
                }
                Ok(ValueType::field(ScalarType::Integer32, resolved))
            }
            Value::DoIndex(dom, dim) => {
                let shape = ctx
                    .do_shape(dom)
                    .ok_or_else(|| NirError::UnboundDomain(format!("DO index '{dom}'")))?;
                let rank = shape.rank();
                if *dim == 0 || *dim > rank {
                    return Err(NirError::Malformed(format!(
                        "do_index dimension {dim} out of range for rank {rank}"
                    )));
                }
                Ok(ValueType::scalar(ScalarType::Integer32))
            }
        }
    }

    fn join_binop(&self, op: BinOp, a: ScalarType, b: ScalarType) -> Result<ScalarType, NirError> {
        if op.is_logical() {
            if self.want_types() && (a != ScalarType::Logical32 || b != ScalarType::Logical32) {
                return Err(NirError::Type(format!(
                    "logical operator {op} on {a} and {b}"
                )));
            }
            return Ok(ScalarType::Logical32);
        }
        let joined = match a.promote(b) {
            Some(j) => j,
            None => {
                if self.want_types() {
                    return Err(NirError::Type(format!(
                        "operator {op} inapplicable to {a} and {b}"
                    )));
                }
                ScalarType::Float64
            }
        };
        Ok(op.result_type(joined))
    }

    fn classify_avar(
        &self,
        id: &Ident,
        fa: &FieldAction,
        ctx: &mut Ctx,
    ) -> Result<ValueType, NirError> {
        let ty = ctx
            .var(id)
            .ok_or_else(|| NirError::Unbound(id.clone()))?
            .clone();
        let (shape, elem) = match &ty {
            Type::DField { shape, elem } => (ctx.resolve(shape)?, elem.elem_scalar()),
            Type::Scalar(_) => {
                return Err(NirError::Type(format!(
                    "AVAR '{id}' names a scalar; use SVAR"
                )))
            }
        };
        let rank = shape.rank();
        match fa {
            FieldAction::Everywhere => Ok(ValueType::field(elem, shape)),
            FieldAction::Subscript(ixs) => {
                if ixs.len() != rank {
                    return Err(NirError::Shape(format!(
                        "'{id}' subscripted with {} indices but has rank {rank}",
                        ixs.len()
                    )));
                }
                for ix in ixs {
                    let it = self.type_of(ix, ctx)?;
                    if self.want_types() && !it.elem.is_integer() {
                        return Err(NirError::Type(format!(
                            "subscript of '{id}' must be integer, found {}",
                            it.elem
                        )));
                    }
                    if self.want_shapes() && !it.is_scalar() {
                        return Err(NirError::Shape(format!(
                            "subscript of '{id}' must be scalar (vector subscripts unsupported)"
                        )));
                    }
                }
                Ok(ValueType::scalar(elem))
            }
            FieldAction::Section(ranges) => {
                if ranges.len() != rank {
                    return Err(NirError::Shape(format!(
                        "'{id}' sectioned with {} ranges but has rank {rank}",
                        ranges.len()
                    )));
                }
                let extents = shape.extents();
                for (r, e) in ranges.iter().zip(&extents) {
                    if r.lo < e.lo || r.hi > e.hi {
                        return Err(NirError::Shape(format!(
                            "section {r} of '{id}' exceeds bounds {}..{}",
                            e.lo, e.hi
                        )));
                    }
                }
                let sec_shape = Shape::Product(
                    ranges
                        .iter()
                        .map(|r| Shape::Interval(1, r.len() as i64))
                        .collect(),
                );
                Ok(ValueType::field(elem, sec_shape))
            }
        }
    }

    fn classify_call(
        &self,
        name: &str,
        args: &[(Type, Value)],
        ctx: &mut Ctx,
    ) -> Result<ValueType, NirError> {
        let arg_types: Vec<ValueType> = args
            .iter()
            .map(|(_, v)| self.type_of(v, ctx))
            .collect::<Result<_, _>>()?;
        match name {
            "cshift" | "eoshift" => {
                let min_args = 3; // (array, shift, dim) for both shifts
                if args.len() < min_args || args.len() > min_args + 1 {
                    return Err(NirError::Malformed(format!(
                        "{name} expects {min_args} arguments, got {}",
                        args.len()
                    )));
                }
                let arr = &arg_types[0];
                let shape = arr
                    .shape
                    .clone()
                    .ok_or_else(|| NirError::Shape(format!("{name} requires an array argument")))?;
                for extra in &arg_types[1..] {
                    if self.want_shapes() && !extra.is_scalar() {
                        return Err(NirError::Shape(format!(
                            "{name} shift/dim arguments must be scalar"
                        )));
                    }
                }
                Ok(ValueType::field(arr.elem, shape))
            }
            "merge" => {
                if args.len() != 3 {
                    return Err(NirError::Malformed(format!(
                        "merge expects 3 arguments, got {}",
                        args.len()
                    )));
                }
                let (t, f, m) = (&arg_types[0], &arg_types[1], &arg_types[2]);
                if self.want_types() {
                    if m.elem != ScalarType::Logical32 {
                        return Err(NirError::Type(format!(
                            "merge mask must be logical, found {}",
                            m.elem
                        )));
                    }
                    if t.elem.promote(f.elem).is_none() {
                        return Err(NirError::Type(format!(
                            "merge branches have incompatible types {} and {}",
                            t.elem, f.elem
                        )));
                    }
                }
                let mut shape = None;
                for s in [&t.shape, &f.shape, &m.shape].into_iter().flatten() {
                    match &shape {
                        None => shape = Some(s.clone()),
                        Some(prev) => {
                            if self.want_shapes() && !prev.conforms(s) {
                                return Err(NirError::Shape(format!(
                                    "merge arguments have non-conforming shapes {prev} vs {s}"
                                )));
                            }
                        }
                    }
                }
                let elem = t.elem.promote(f.elem).unwrap_or(ScalarType::Float64);
                Ok(ValueType { elem, shape })
            }
            "transpose" => {
                if args.len() != 1 {
                    return Err(NirError::Malformed(format!(
                        "transpose expects 1 argument, got {}",
                        args.len()
                    )));
                }
                let arr = &arg_types[0];
                let Some(shape) = &arr.shape else {
                    return Err(NirError::Shape("transpose of a scalar".into()));
                };
                let extents = shape.extents();
                if extents.len() != 2 {
                    return Err(NirError::Shape(format!(
                        "transpose requires rank 2, got rank {}",
                        extents.len()
                    )));
                }
                let flipped = Shape::Product(vec![
                    Shape::Interval(extents[1].lo, extents[1].hi),
                    Shape::Interval(extents[0].lo, extents[0].hi),
                ]);
                Ok(ValueType::field(arr.elem, flipped))
            }
            "sum" | "maxval" | "minval" => {
                if args.is_empty() || args.len() > 2 {
                    return Err(NirError::Malformed(format!(
                        "{name} expects (array[, dim]), got {} arguments",
                        args.len()
                    )));
                }
                let arr = &arg_types[0];
                let Some(shape) = &arr.shape else {
                    return Err(NirError::Shape(format!(
                        "{name} requires an array argument"
                    )));
                };
                if let Some((_, dim_v)) = args.get(1) {
                    // Partial reduction: result shape drops the axis.
                    // DIM must be a literal — the result *shape* depends
                    // on it.
                    let Some(dim) = dim_v.as_const().and_then(|c| c.as_f64()) else {
                        return Err(NirError::Malformed(format!(
                            "{name} DIM must be an integer literal \
                             (the result shape depends on it)"
                        )));
                    };
                    let dim = dim as usize;
                    let mut extents = shape.extents();
                    if dim == 0 || dim > extents.len() {
                        return Err(NirError::Shape(format!(
                            "{name} DIM={dim} out of range for rank {}",
                            extents.len()
                        )));
                    }
                    extents.remove(dim - 1);
                    if extents.is_empty() {
                        return Ok(ValueType::scalar(arr.elem));
                    }
                    let shape = Shape::Product(
                        extents
                            .into_iter()
                            .map(|e| Shape::Interval(e.lo, e.hi))
                            .collect(),
                    );
                    return Ok(ValueType::field(arr.elem, shape));
                }
                Ok(ValueType::scalar(arr.elem))
            }
            "spread" => {
                if args.len() != 3 {
                    return Err(NirError::Malformed(format!(
                        "spread expects (source, dim, ncopies), got {} arguments",
                        args.len()
                    )));
                }
                let arr = &arg_types[0];
                let Some(shape) = &arr.shape else {
                    return Err(NirError::Shape("spread of a scalar".into()));
                };
                let (Some(dim), Some(n)) = (
                    args[1].1.as_const().and_then(|c| c.as_f64()),
                    args[2].1.as_const().and_then(|c| c.as_f64()),
                ) else {
                    return Err(NirError::Malformed(
                        "spread DIM and NCOPIES must be integer literals \
                         (the result shape depends on them)"
                            .into(),
                    ));
                };
                let (dim, n) = (dim as usize, n as i64);
                let mut extents = shape.extents();
                if dim == 0 || dim > extents.len() + 1 {
                    return Err(NirError::Shape(format!(
                        "spread DIM={dim} out of range for rank {}",
                        extents.len()
                    )));
                }
                extents.insert(
                    dim - 1,
                    crate::shape::Extent {
                        lo: 1,
                        hi: n,
                        serial: false,
                    },
                );
                let shape = Shape::Product(
                    extents
                        .into_iter()
                        .map(|e| Shape::Interval(e.lo, e.hi))
                        .collect(),
                );
                Ok(ValueType::field(arr.elem, shape))
            }
            other => Err(NirError::Malformed(format!(
                "unknown primitive function '{other}'"
            ))),
        }
    }
}

fn resolve_type(ty: &Type, ctx: &Ctx) -> Result<Type, NirError> {
    match ty {
        Type::Scalar(s) => Ok(Type::Scalar(*s)),
        Type::DField { shape, elem } => Ok(Type::DField {
            shape: ctx.resolve(shape)?,
            elem: Box::new(resolve_type(elem, ctx)?),
        }),
    }
}

fn check_assignable(src: ScalarType, dst: ScalarType) -> Result<(), NirError> {
    let ok = match (src.is_logical(), dst.is_logical()) {
        (true, true) => true,
        (false, false) => true, // numeric conversion on assignment
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(NirError::Type(format!("cannot assign {src} to {dst}")))
    }
}

/// Typecheck and shapecheck a whole program (mode [`Mode::Both`]).
///
/// # Errors
///
/// Returns the first static error found.
pub fn check(imp: &Imp) -> Result<(), NirError> {
    Checker::new(Mode::Both).check_program(imp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn k_l_program(k_rhs: Value) -> Imp {
        with_domain(
            "alpha",
            interval(1, 128),
            with_domain(
                "beta",
                prod(vec![domain("alpha"), interval(1, 64)]),
                with_decl(
                    declset(vec![
                        decl("k", dfield(domain("beta"), int32())),
                        decl("l", dfield(domain("alpha"), int32())),
                    ]),
                    seq(vec![
                        mv(avar("l", everywhere()), int(6)),
                        mv(avar("k", everywhere()), k_rhs),
                    ]),
                ),
            ),
        )
    }

    #[test]
    fn paper_fig8_program_checks() {
        let p = k_l_program(add(mul(int(2), ld("k", everywhere())), int(5)));
        check(&p).unwrap();
    }

    #[test]
    fn mixing_nonconforming_fields_is_a_shape_error() {
        // K (128x64) = L (128) : rank mismatch
        let p = k_l_program(ld("l", everywhere()));
        match check(&p) {
            Err(NirError::Shape(_)) => {}
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_is_reported() {
        let p = mv(avar("ghost", everywhere()), int(0));
        assert!(matches!(check(&p), Err(NirError::Unbound(_))));
    }

    #[test]
    fn unbound_domain_is_reported() {
        let p = with_decl(
            decl("a", dfield(domain("nowhere"), float64())),
            mv(avar("a", everywhere()), f64c(0.0)),
        );
        assert!(matches!(check(&p), Err(NirError::UnboundDomain(_))));
    }

    #[test]
    fn logical_mask_is_required() {
        let p = with_domain(
            "s",
            interval(1, 4),
            with_decl(
                decl("a", dfield(domain("s"), float64())),
                mv_masked(int(1), avar("a", everywhere()), f64c(0.0)),
            ),
        );
        assert!(matches!(check(&p), Err(NirError::Type(_))));
    }

    #[test]
    fn subscript_arity_is_checked() {
        let p = with_domain(
            "s",
            prod(vec![interval(1, 4), interval(1, 4)]),
            with_decl(
                decl("a", dfield(domain("s"), float64())),
                mv(avar("a", subscript(vec![int(1)])), f64c(0.0)),
            ),
        );
        assert!(matches!(check(&p), Err(NirError::Shape(_))));
    }

    #[test]
    fn section_out_of_bounds_is_checked() {
        use crate::value::SectionRange;
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                decl("a", dfield(domain("s"), float64())),
                mv(avar("a", section(vec![SectionRange::new(1, 9)])), f64c(0.0)),
            ),
        );
        assert!(matches!(check(&p), Err(NirError::Shape(_))));
    }

    #[test]
    fn do_index_requires_enclosing_do() {
        let p = with_domain(
            "s",
            serial_interval(1, 4),
            with_decl(decl("x", float64()), mv(svar_lv("x"), do_index("s", 1))),
        );
        assert!(check(&p).is_err());
        // Inside a DO it is fine.
        let p = with_domain(
            "s",
            serial_interval(1, 4),
            with_decl(
                decl("x", float64()),
                do_over("i", domain("s"), mv(svar_lv("x"), do_index("i", 1))),
            ),
        );
        check(&p).unwrap();
    }

    #[test]
    fn cshift_preserves_classification() {
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("s"), float64())),
                    decl("b", dfield(domain("s"), float64())),
                ]),
                mv(
                    avar("b", everywhere()),
                    fcncall(
                        "cshift",
                        vec![
                            (float64(), ld("a", everywhere())),
                            (int32(), int(1)),
                            (int32(), int(1)),
                        ],
                    ),
                ),
            ),
        );
        check(&p).unwrap();
    }

    #[test]
    fn shape_mode_ignores_scalar_type_errors() {
        // Assign logical to float: a type error but not a shape error.
        let p = with_decl(decl("x", float64()), mv(svar_lv("x"), boolc(true)));
        assert!(Checker::new(Mode::Types).check_program(&p).is_err());
        Checker::new(Mode::Shapes).check_program(&p).unwrap();
    }

    #[test]
    fn domain_shadowing_restores_outer_binding() {
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                decl("a", dfield(domain("s"), float64())),
                seq(vec![
                    with_domain(
                        "s",
                        interval(1, 4),
                        with_decl(
                            decl("b", dfield(domain("s"), float64())),
                            mv(avar("b", everywhere()), f64c(0.0)),
                        ),
                    ),
                    // 'a' still sees the outer 8-point domain.
                    mv(avar("a", everywhere()), f64c(1.0)),
                ]),
            ),
        );
        check(&p).unwrap();
    }
}
