//! Error type shared by the NIR analyses and the reference evaluator.

use std::error::Error;
use std::fmt;

/// Errors raised by typechecking, shapechecking or evaluation of NIR.
#[derive(Debug, Clone, PartialEq)]
pub enum NirError {
    /// An identifier was referenced but never declared.
    Unbound(String),
    /// A domain name was referenced but never bound by `WITH_DOMAIN`.
    UnboundDomain(String),
    /// A type error, with a human-readable description.
    Type(String),
    /// A shape error: interacting arrays whose shapes do not agree.
    Shape(String),
    /// A malformed term (e.g. subscript arity mismatch).
    Malformed(String),
    /// A runtime evaluation error (division by zero, bad intrinsic
    /// argument, out-of-bounds subscript).
    Eval(String),
    /// An inter-pass verification failure: a transformation produced a
    /// program that no longer checks, or whose observable behaviour
    /// diverged from its input's. The message names the offending pass.
    Verify(String),
}

impl fmt::Display for NirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NirError::Unbound(id) => write!(f, "unbound identifier '{id}'"),
            NirError::UnboundDomain(id) => write!(f, "unbound domain '{id}'"),
            NirError::Type(msg) => write!(f, "type error: {msg}"),
            NirError::Shape(msg) => write!(f, "shape error: {msg}"),
            NirError::Malformed(msg) => write!(f, "malformed NIR: {msg}"),
            NirError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            NirError::Verify(msg) => write!(f, "pass verification failed: {msg}"),
        }
    }
}

impl Error for NirError {}
