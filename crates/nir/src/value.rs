//! The value domain `V` and field-restrictor domain `F`
//! (paper Figures 5 and 6).

use std::fmt;

use crate::ops::{BinOp, UnOp};
use crate::shape::ShapeExpr;
use crate::types::{ScalarType, Type};
use crate::Ident;

/// Scalar constants carried by `SCALAR` terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// 32-bit integer constant.
    I32(i32),
    /// Logical constant.
    Bool(bool),
    /// Single-precision constant.
    F32(f32),
    /// Double-precision constant.
    F64(f64),
}

impl Const {
    /// The scalar type of the constant.
    pub fn scalar_type(self) -> ScalarType {
        match self {
            Const::I32(_) => ScalarType::Integer32,
            Const::Bool(_) => ScalarType::Logical32,
            Const::F32(_) => ScalarType::Float32,
            Const::F64(_) => ScalarType::Float64,
        }
    }

    /// The constant as an `f64`, when numeric.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::I32(v) => Some(v as f64),
            Const::F32(v) => Some(v as f64),
            Const::F64(v) => Some(v),
            Const::Bool(_) => None,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::I32(v) => write!(f, "{v}"),
            Const::Bool(v) => write!(f, "{}", if *v { ".true." } else { ".false." }),
            Const::F32(v) => write!(f, "{v}"),
            Const::F64(v) => write!(f, "{v}"),
        }
    }
}

/// One axis of an array section: `lo : hi : step` with `step >= 1`.
///
/// Sections are a staging device used by semantic lowering for Fortran-90
/// section syntax (`A(1:32:2, :)`); the mask-padding transformation of the
/// paper's §4.2 (Fig. 10) rewrites them into `everywhere` accesses guarded
/// by a parity mask before any backend sees them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SectionRange {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
    /// Stride, at least 1.
    pub step: i64,
}

impl SectionRange {
    /// A unit-stride section.
    pub fn new(lo: i64, hi: i64) -> Self {
        SectionRange { lo, hi, step: 1 }
    }

    /// A strided section.
    ///
    /// # Panics
    ///
    /// Panics if `step < 1`.
    pub fn strided(lo: i64, hi: i64, step: i64) -> Self {
        assert!(step >= 1, "section stride must be positive, got {step}");
        SectionRange { lo, hi, step }
    }

    /// The section `lo : hi : step` of Fortran section syntax, for any
    /// non-zero `step`, normalized to the ascending representation this
    /// type stores. A negative stride selects the same index *set* as
    /// its ascending mirror (`9:1:-2` selects `{9,7,5,3,1}` = `1:9:2`),
    /// which is all the dependence analyses care about; order within a
    /// section never matters to overlap tests.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn normalized(lo: i64, hi: i64, step: i64) -> Self {
        assert!(step != 0, "section stride must be non-zero");
        if step > 0 {
            return SectionRange { lo, hi, step };
        }
        let step = -step;
        if hi > lo {
            // Empty under a negative stride; keep a canonical empty.
            return SectionRange { lo: 1, hi: 0, step };
        }
        // Descending lo..=hi by step: lowest selected index is the last
        // one reached from `lo` going down.
        let count = (lo - hi) / step; // full steps that stay in range
        let lowest = lo - count * step;
        SectionRange {
            lo: lowest,
            hi: lo,
            step,
        }
    }

    /// Number of selected indices.
    pub fn len(&self) -> usize {
        if self.hi < self.lo {
            0
        } else {
            ((self.hi - self.lo) / self.step + 1) as usize
        }
    }

    /// `true` when no index is selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when index `i` belongs to the section.
    pub fn contains(&self, i: i64) -> bool {
        i >= self.lo && i <= self.hi && (i - self.lo) % self.step == 0
    }

    /// `true` when the two sections select no common index.
    ///
    /// Exact for equal strides (residue comparison); conservative (may
    /// return `false` for actually-disjoint sections) otherwise. Used by
    /// the disjoint-mask blocking transformation to prove that the
    /// `WHERE/ELSEWHERE`-style masked assignments of Fig. 10 may share a
    /// computation block.
    pub fn disjoint(&self, other: &SectionRange) -> bool {
        if self.is_empty() || other.is_empty() {
            return true;
        }
        // No overlap in the bounding intervals.
        if self.hi < other.lo || other.hi < self.lo {
            return true;
        }
        if self.step == other.step {
            // Equal strides: disjoint iff residues differ mod step.
            return (self.lo - other.lo).rem_euclid(self.step) != 0;
        }
        // Small sections: decide exactly by enumeration.
        if self.len().min(other.len()) <= 4096 {
            let (small, big) = if self.len() <= other.len() {
                (self, other)
            } else {
                (other, self)
            };
            let mut i = small.lo;
            while i <= small.hi {
                if big.contains(i) {
                    return false;
                }
                i += small.step;
            }
            return true;
        }
        false
    }
}

impl fmt::Display for SectionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.step == 1 {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.step)
        }
    }
}

/// Field actions (the restrictor domain `F`, paper Fig. 6): how an `AVAR`
/// reference specialises the declared shape of the array it names.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldAction {
    /// `subscript(S)` — shapewise subscripting: one index value per axis.
    ///
    /// The reference denotes a scalar (or lower-rank slice when some axes
    /// use coordinate values inside a surrounding `DO`).
    Subscript(Vec<Value>),
    /// `everywhere` — universal selection: the reference denotes the whole
    /// field, in parallel, with the shape specialised by context.
    Everywhere,
    /// A strided rectangular section, one range per axis (lowering-stage
    /// staging form; see [`SectionRange`]).
    Section(Vec<SectionRange>),
}

impl FieldAction {
    /// `true` for the `everywhere` restrictor.
    pub fn is_everywhere(&self) -> bool {
        matches!(self, FieldAction::Everywhere)
    }
}

impl fmt::Display for FieldAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldAction::Everywhere => f.write_str("everywhere"),
            FieldAction::Subscript(ixs) => {
                f.write_str("subscript[")?;
                for (i, ix) in ixs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{ix}")?;
                }
                f.write_str("]")
            }
            FieldAction::Section(ranges) => {
                f.write_str("section[")?;
                for (i, r) in ranges.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{r}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// Value-producing terms (paper Fig. 5 plus the Fig. 6 extensions).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `SCALAR : T*s_rep -> V` — a scalar constant.
    Scalar(Const),
    /// `SVAR : id -> V` — a scalar variable reference.
    SVar(Ident),
    /// `AVAR : id*F -> V` — an array variable reference through a field
    /// action (Fig. 6).
    AVar(Ident, FieldAction),
    /// `UNARY : monop*V -> V`.
    Unary(UnOp, Box<Value>),
    /// `BINARY : binop*V*V -> V`.
    Binary(BinOp, Box<Value>, Box<Value>),
    /// `FCNCALL : id*(T*V)list -> V` — call of a primitive function.
    ///
    /// Communication intrinsics (`cshift`, `eoshift`, reductions) travel
    /// through lowering as `FCNCALL`s and are replaced by CM runtime calls
    /// in the front-end compiler, exactly as §5.2 describes.
    FcnCall(Ident, Vec<(Type, Value)>),
    /// `local_under : S*int -> F/V` — the coordinate matrix of axis `dim`
    /// (1-based) over the given shape (Fig. 6): at each point of the
    /// shape, the value of that point's `dim`-th coordinate.
    LocalUnder(ShapeExpr, usize),
    /// The loop index of the `dim`-th axis (1-based) of the nearest
    /// enclosing `DO` over the named domain.
    ///
    /// This is how subscripted references inside serial `DO`s (paper
    /// Fig. 9: `AVAR('a', subscript(prod_dom[local_under(beta,1), ...]))`)
    /// name the running coordinate.
    DoIndex(Ident, usize),
}

impl Value {
    /// `true` when the value is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Scalar(_))
    }

    /// The constant payload, if this is a `SCALAR` term.
    pub fn as_const(&self) -> Option<Const> {
        match self {
            Value::Scalar(c) => Some(*c),
            _ => None,
        }
    }

    /// Visit every sub-value (including `self`), pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Value)) {
        visit(self);
        match self {
            Value::Unary(_, a) => a.walk(visit),
            Value::Binary(_, a, b) => {
                a.walk(visit);
                b.walk(visit);
            }
            Value::FcnCall(_, args) => {
                for (_, a) in args {
                    a.walk(visit);
                }
            }
            Value::AVar(_, FieldAction::Subscript(ixs)) => {
                for ix in ixs {
                    ix.walk(visit);
                }
            }
            _ => {}
        }
    }

    /// Collect the identifiers of all variables read by this value.
    pub fn reads(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.walk(&mut |v| match v {
            Value::SVar(id) | Value::AVar(id, _) => out.push(id),
            _ => {}
        });
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(c) => write!(f, "SCALAR({},'{}')", c.scalar_type(), c),
            Value::SVar(id) => write!(f, "SVAR '{id}'"),
            Value::AVar(id, fa) => write!(f, "AVAR('{id}',{fa})"),
            Value::Unary(op, a) => write!(f, "UNARY({op},{a})"),
            Value::Binary(op, a, b) => write!(f, "BINARY({op},{a},{b})"),
            Value::FcnCall(id, args) => {
                write!(f, "FCNCALL('{id}',[")?;
                for (i, (_, a)) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("])")
            }
            Value::LocalUnder(s, d) => write!(f, "local_under({s},{d})"),
            Value::DoIndex(dom, d) => write!(f, "do_index('{dom}',{d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_len_and_contains() {
        let s = SectionRange::strided(1, 31, 2); // 1,3,...,31
        assert_eq!(s.len(), 16);
        assert!(s.contains(1));
        assert!(s.contains(31));
        assert!(!s.contains(2));
        assert!(!s.contains(33));
    }

    #[test]
    fn odd_and_even_sections_are_disjoint() {
        let odd = SectionRange::strided(1, 31, 2);
        let even = SectionRange::strided(2, 32, 2);
        assert!(odd.disjoint(&even));
        assert!(even.disjoint(&odd));
    }

    #[test]
    fn overlapping_sections_are_not_disjoint() {
        let a = SectionRange::new(1, 16);
        let b = SectionRange::new(16, 32);
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn mixed_stride_disjointness_is_exact_for_small_sections() {
        let a = SectionRange::strided(1, 30, 3); // 1,4,...,28
        let b = SectionRange::strided(2, 30, 3); // 2,5,...,29
        assert!(a.disjoint(&b));
        let c = SectionRange::strided(1, 30, 2); // 1,3,5,...
        assert!(!a.disjoint(&c)); // share 1,7,13,...
    }

    #[test]
    fn empty_section_is_disjoint_from_everything() {
        let e = SectionRange::new(5, 4);
        let a = SectionRange::new(1, 100);
        assert!(e.disjoint(&a));
        assert!(a.disjoint(&e));
    }

    #[test]
    fn normalized_mirrors_negative_strides() {
        // 9:1:-2 selects {9,7,5,3,1} = 1:9:2.
        let s = SectionRange::normalized(9, 1, -2);
        assert_eq!(s, SectionRange::strided(1, 9, 2));
        assert_eq!(s.len(), 5);
        // 9:2:-2 selects {9,7,5,3} = 3:9:2 — the low end snaps to the
        // lowest *reached* index, not the written bound.
        let s = SectionRange::normalized(9, 2, -2);
        assert_eq!(s, SectionRange::strided(3, 9, 2));
        assert_eq!(s.len(), 4);
        // A positive stride passes through unchanged.
        assert_eq!(
            SectionRange::normalized(2, 8, 3),
            SectionRange::strided(2, 8, 3)
        );
    }

    #[test]
    fn normalized_negative_stride_preserves_disjointness() {
        // 10:2:-2 = {2,4,6,8,10}; 9:1:-2 = {1,3,5,7,9}: disjoint.
        let even = SectionRange::normalized(10, 2, -2);
        let odd = SectionRange::normalized(9, 1, -2);
        assert!(even.disjoint(&odd));
        // Reversed traversal never changes the selected set: a section
        // overlaps its own mirror.
        let fwd = SectionRange::strided(1, 9, 2);
        assert!(!fwd.disjoint(&odd));
    }

    #[test]
    fn normalized_empty_descending_section() {
        // 1:9:-2 is empty (cannot count down from 1 to 9).
        let e = SectionRange::normalized(1, 9, -2);
        assert!(e.is_empty());
        assert!(e.disjoint(&SectionRange::new(1, 100)));
    }

    #[test]
    fn degenerate_single_element_sections() {
        let p = SectionRange::new(5, 5);
        assert_eq!(p.len(), 1);
        assert!(p.contains(5));
        // A point is disjoint from a strided section exactly when the
        // section skips it.
        assert!(p.disjoint(&SectionRange::strided(2, 10, 2)));
        assert!(!p.disjoint(&SectionRange::strided(1, 9, 2)));
        // Two distinct points are disjoint; the same point is not.
        assert!(p.disjoint(&SectionRange::new(6, 6)));
        assert!(!p.disjoint(&SectionRange::new(5, 5)));
        // Degenerate via a negative stride.
        assert_eq!(
            SectionRange::normalized(5, 5, -3),
            SectionRange::strided(5, 5, 3)
        );
    }

    #[test]
    fn reads_collects_variables() {
        let v = Value::Binary(
            BinOp::Add,
            Box::new(Value::SVar("a".into())),
            Box::new(Value::AVar("k".into(), FieldAction::Everywhere)),
        );
        let reads = v.reads();
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().any(|id| *id == "a"));
        assert!(reads.iter().any(|id| *id == "k"));
    }

    #[test]
    fn display_matches_paper_syntax() {
        let v = Value::Binary(
            BinOp::Add,
            Box::new(Value::SVar("a".into())),
            Box::new(Value::Unary(UnOp::Sin, Box::new(Value::SVar("c".into())))),
        );
        assert_eq!(v.to_string(), "BINARY(Add,SVAR 'a',UNARY(Sin,SVAR 'c'))");
    }
}
