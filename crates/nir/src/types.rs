//! The type domain `T` (paper Figure 5, extended by `dfield` from Figure 6).

use std::fmt;

use crate::shape::ShapeExpr;

/// Machine-level scalar types (paper Fig. 5, type domain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// `integer_32` — 32-bit integer.
    Integer32,
    /// `logical_32` — 32-bit logical.
    Logical32,
    /// `float_32` — single-precision floating point.
    Float32,
    /// `float_64` — double-precision floating point.
    Float64,
}

impl ScalarType {
    /// `true` for the two floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::Float32 | ScalarType::Float64)
    }

    /// `true` for `integer_32`.
    pub fn is_integer(self) -> bool {
        self == ScalarType::Integer32
    }

    /// `true` for `logical_32`.
    pub fn is_logical(self) -> bool {
        self == ScalarType::Logical32
    }

    /// The joined type of a mixed-mode arithmetic operation, following
    /// Fortran's promotion rules (integer < float_32 < float_64).
    ///
    /// Returns `None` when the two types cannot appear together in
    /// arithmetic (e.g. a logical operand).
    pub fn promote(self, other: ScalarType) -> Option<ScalarType> {
        use ScalarType::*;
        match (self, other) {
            (Logical32, _) | (_, Logical32) => None,
            (Float64, _) | (_, Float64) => Some(Float64),
            (Float32, _) | (_, Float32) => Some(Float32),
            (Integer32, Integer32) => Some(Integer32),
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Integer32 => "integer_32",
            ScalarType::Logical32 => "logical_32",
            ScalarType::Float32 => "float_32",
            ScalarType::Float64 => "float_64",
        };
        f.write_str(s)
    }
}

/// An NIR type: a scalar, or a `dfield` of elements laid out over a shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A machine scalar.
    Scalar(ScalarType),
    /// `dfield : S*T -> T` — a field of elements of type `elem`, one per
    /// point of `shape` (paper Fig. 6). `elem` may itself be a `dfield`,
    /// one interpretation of the shape cross-product.
    DField {
        /// The shape of the field.
        shape: ShapeExpr,
        /// The per-point element type.
        elem: Box<Type>,
    },
}

impl Type {
    /// Convenience constructor for a `dfield` type.
    pub fn dfield(shape: impl Into<ShapeExpr>, elem: Type) -> Type {
        Type::DField {
            shape: shape.into(),
            elem: Box::new(elem),
        }
    }

    /// The underlying scalar element type, drilling through nested
    /// `dfield`s.
    pub fn elem_scalar(&self) -> ScalarType {
        match self {
            Type::Scalar(s) => *s,
            Type::DField { elem, .. } => elem.elem_scalar(),
        }
    }

    /// `true` when this is a plain scalar type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// The shape of the outermost `dfield`, if any.
    pub fn field_shape(&self) -> Option<&ShapeExpr> {
        match self {
            Type::Scalar(_) => None,
            Type::DField { shape, .. } => Some(shape),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::DField { shape, elem } => {
                write!(f, "dfield{{shape={shape},element={elem}}}")
            }
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Self {
        Type::Scalar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn promotion_follows_fortran_rules() {
        use ScalarType::*;
        assert_eq!(Integer32.promote(Float64), Some(Float64));
        assert_eq!(Float32.promote(Integer32), Some(Float32));
        assert_eq!(Integer32.promote(Integer32), Some(Integer32));
        assert_eq!(Logical32.promote(Integer32), None);
    }

    #[test]
    fn elem_scalar_drills_through_nested_dfields() {
        let inner = Type::dfield(Shape::interval(1, 4), ScalarType::Float64.into());
        let outer = Type::dfield(Shape::interval(1, 8), inner);
        assert_eq!(outer.elem_scalar(), ScalarType::Float64);
    }

    #[test]
    fn display_matches_paper_syntax() {
        let t = Type::dfield(Shape::domain("beta"), ScalarType::Integer32.into());
        assert_eq!(
            t.to_string(),
            "dfield{shape=domain 'beta',element=integer_32}"
        );
    }
}
