//! Ergonomic constructors for writing NIR terms in Rust.
//!
//! These free functions mirror the paper's operator names closely enough
//! that transcriptions of its figures read almost verbatim; see the golden
//! tests in the lowering crate.
//!
//! ```
//! use f90y_nir::build::*;
//!
//! // MOVE[(True,(BINARY(Add, SVAR 'n', SCALAR(integer_32,'1')), AVAR('c', everywhere)))]
//! let m = mv(avar("c", everywhere()), add(svar("n"), int(1)));
//! ```

use crate::decl::Decl;
use crate::imp::{Imp, LValue, MoveClause};
use crate::ops::{BinOp, UnOp};
use crate::shape::{Shape, ShapeExpr};
use crate::types::{ScalarType, Type};
use crate::value::{Const, FieldAction, SectionRange, Value};

// ---------------------------------------------------------------------
// Shapes
// ---------------------------------------------------------------------

/// `point p`.
pub fn point(p: i64) -> Shape {
    Shape::Point(p)
}

/// `interval(point lo, point hi)` — parallel.
pub fn interval(lo: i64, hi: i64) -> Shape {
    Shape::Interval(lo, hi)
}

/// `serial_interval(point lo, point hi)`.
pub fn serial_interval(lo: i64, hi: i64) -> Shape {
    Shape::SerialInterval(lo, hi)
}

/// `prod_dom[...]`.
pub fn prod(dims: Vec<Shape>) -> Shape {
    Shape::Product(dims)
}

/// A parallel grid with axes `1..=e`.
pub fn grid(extents: &[i64]) -> Shape {
    Shape::grid(extents)
}

/// `domain 'name'`.
pub fn domain(name: &str) -> Shape {
    Shape::domain(name)
}

// ---------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------

/// `integer_32`.
pub fn int32() -> Type {
    Type::Scalar(ScalarType::Integer32)
}

/// `logical_32`.
pub fn logical32() -> Type {
    Type::Scalar(ScalarType::Logical32)
}

/// `float_32`.
pub fn float32() -> Type {
    Type::Scalar(ScalarType::Float32)
}

/// `float_64`.
pub fn float64() -> Type {
    Type::Scalar(ScalarType::Float64)
}

/// `dfield{shape=S, element=T}`.
pub fn dfield(shape: impl Into<ShapeExpr>, elem: Type) -> Type {
    Type::dfield(shape, elem)
}

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

/// `DECL(id, T)`.
pub fn decl(id: &str, ty: Type) -> Decl {
    Decl::Decl(id.into(), ty)
}

/// `DECLSET[...]`.
pub fn declset(ds: Vec<Decl>) -> Decl {
    Decl::DeclSet(ds)
}

/// `INITIALIZED(id, T, V)`.
pub fn initialized(id: &str, ty: Type, v: Value) -> Decl {
    Decl::Initialized(id.into(), ty, v)
}

// ---------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------

/// `SCALAR(integer_32, v)`.
pub fn int(v: i32) -> Value {
    Value::Scalar(Const::I32(v))
}

/// `SCALAR(float_64, v)`.
pub fn f64c(v: f64) -> Value {
    Value::Scalar(Const::F64(v))
}

/// `SCALAR(logical_32, v)`.
pub fn boolc(v: bool) -> Value {
    Value::Scalar(Const::Bool(v))
}

/// `SVAR id`.
pub fn svar(id: &str) -> Value {
    Value::SVar(id.into())
}

/// `AVAR(id, F)` as a value (right-hand side read).
pub fn ld(id: &str, fa: FieldAction) -> Value {
    Value::AVar(id.into(), fa)
}

/// `everywhere`.
pub fn everywhere() -> FieldAction {
    FieldAction::Everywhere
}

/// `subscript[...]`.
pub fn subscript(ixs: Vec<Value>) -> FieldAction {
    FieldAction::Subscript(ixs)
}

/// `section[...]` — lowering-stage staging restrictor.
pub fn section(ranges: Vec<SectionRange>) -> FieldAction {
    FieldAction::Section(ranges)
}

/// `local_under(S, dim)` with 1-based `dim`.
pub fn local_under(s: impl Into<ShapeExpr>, dim: usize) -> Value {
    Value::LocalUnder(s.into(), dim)
}

/// The running coordinate of axis `dim` (1-based) of the enclosing
/// `DO` over domain `dom`.
pub fn do_index(dom: &str, dim: usize) -> Value {
    Value::DoIndex(dom.into(), dim)
}

/// `BINARY(op, a, b)`.
pub fn bin(op: BinOp, a: Value, b: Value) -> Value {
    Value::Binary(op, Box::new(a), Box::new(b))
}

/// `BINARY(Add, a, b)`.
pub fn add(a: Value, b: Value) -> Value {
    bin(BinOp::Add, a, b)
}

/// `BINARY(Sub, a, b)`.
pub fn sub(a: Value, b: Value) -> Value {
    bin(BinOp::Sub, a, b)
}

/// `BINARY(Mul, a, b)`.
pub fn mul(a: Value, b: Value) -> Value {
    bin(BinOp::Mul, a, b)
}

/// `BINARY(Div, a, b)`.
pub fn div(a: Value, b: Value) -> Value {
    bin(BinOp::Div, a, b)
}

/// `UNARY(op, a)`.
pub fn un(op: UnOp, a: Value) -> Value {
    Value::Unary(op, Box::new(a))
}

/// `FCNCALL(name, args)` with types inferred later.
pub fn fcncall(name: &str, args: Vec<(Type, Value)>) -> Value {
    Value::FcnCall(name.into(), args)
}

// ---------------------------------------------------------------------
// Imperatives
// ---------------------------------------------------------------------

/// An `AVAR` assignment target.
pub fn avar(id: &str, fa: FieldAction) -> LValue {
    LValue::AVar(id.into(), fa)
}

/// An `SVAR` assignment target.
pub fn svar_lv(id: &str) -> LValue {
    LValue::SVar(id.into())
}

/// `MOVE[(True,(src,dst))]` — a single unmasked move.
pub fn mv(dst: LValue, src: Value) -> Imp {
    Imp::Move(vec![MoveClause::unmasked(dst, src)])
}

/// `MOVE[(mask,(src,dst))]` — a single masked move.
pub fn mv_masked(mask: Value, dst: LValue, src: Value) -> Imp {
    Imp::Move(vec![MoveClause { mask, src, dst }])
}

/// A multi-clause `MOVE`.
pub fn mv_multi(clauses: Vec<MoveClause>) -> Imp {
    Imp::Move(clauses)
}

/// `SEQUENTIALLY[...]` (flattened).
pub fn seq(actions: Vec<Imp>) -> Imp {
    Imp::seq(actions)
}

/// `CONCURRENTLY[...]`.
pub fn conc(actions: Vec<Imp>) -> Imp {
    Imp::Concurrently(actions)
}

/// `DO(S, I)` over a named domain, binding the index name.
pub fn do_over(dom: &str, shape: impl Into<ShapeExpr>, body: Imp) -> Imp {
    Imp::Do(dom.into(), shape.into(), Box::new(body))
}

/// `WITH_DECL(d, I)`.
pub fn with_decl(d: Decl, body: Imp) -> Imp {
    Imp::WithDecl(d, Box::new(body))
}

/// `WITH_DOMAIN((name, S), I)`.
pub fn with_domain(name: &str, shape: impl Into<ShapeExpr>, body: Imp) -> Imp {
    Imp::WithDomain(name.into(), shape.into(), Box::new(body))
}

/// `IFTHENELSE(c, t, e)`.
pub fn ifte(c: Value, t: Imp, e: Imp) -> Imp {
    Imp::IfThenElse(c, Box::new(t), Box::new(e))
}

/// `WHILE(c, body)`.
pub fn while_loop(c: Value, body: Imp) -> Imp {
    Imp::While(c, Box::new(body))
}

/// `PROGRAM(I)`.
pub fn program(body: Imp) -> Imp {
    Imp::Program(Box::new(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_terms() {
        let m = mv(avar("c", everywhere()), add(svar("n"), int(1)));
        match m {
            Imp::Move(clauses) => {
                assert_eq!(clauses.len(), 1);
                assert!(clauses[0].is_unmasked());
                assert_eq!(clauses[0].dst.ident(), "c");
            }
            other => panic!("expected Move, got {other:?}"),
        }
    }

    #[test]
    fn program_shape_binders_nest() {
        let p = with_domain(
            "alpha",
            interval(1, 8),
            with_decl(
                decl("a", dfield(domain("alpha"), float64())),
                mv(avar("a", everywhere()), f64c(0.0)),
            ),
        );
        assert_eq!(p.count_moves(), 1);
    }
}
