//! # f90y-nir — Native Intermediate Language (NIR)
//!
//! The semantic algebra at the centre of the Fortran-90-Y compiler
//! (Chen & Cowie, *Prototyping Fortran-90 Compilers for Massively Parallel
//! Machines*, PLDI 1992).
//!
//! NIR models dynamic program behaviour with a small set of semantic
//! domains — the four classical domains of the paper's appendix plus the
//! paper's new **shape** domain (its Figure 6):
//!
//! | Domain | Module | Paper figure |
//! |---|---|---|
//! | Types `T` | [`types`] | Fig. 5 |
//! | Declarations `D` | [`decl`] | Fig. 5 |
//! | Values `V` | [`value`] | Fig. 5 |
//! | Imperatives `I` | [`imp`] | Fig. 5 |
//! | Shapes `S` + field restrictors `F` | [`shape`], [`value::FieldAction`] | Fig. 6 |
//!
//! On top of the algebra this crate provides everything a *specified*
//! compiler needs to manipulate NIR programs:
//!
//! * [`typecheck`] — static typechecking of NIR terms;
//! * [`shapecheck`] — static *shape*checking (the paper's analogue of
//!   typechecking over the shape domain);
//! * [`eval`] — a reference interpreter giving NIR its ground-truth
//!   semantics, used for translation validation of every backend;
//! * [`deps`] — read/write-set dependence analysis enabling the blocking
//!   transformations of the paper's §4.2;
//! * [`loop_rules`] — the inductive LOOP expansion rules of Figure 4;
//! * [`pretty`] — a printer producing the paper's concrete NIR syntax;
//! * [`build`] — ergonomic constructors for writing NIR in Rust.
//!
//! ## Example
//!
//! Build and evaluate the paper's `L = 6; L = 2*L + 5` example (cf. its
//! Fig. 8):
//!
//! ```
//! use f90y_nir::build::*;
//! use f90y_nir::eval::Evaluator;
//!
//! let program = with_domain(
//!     "alpha",
//!     interval(1, 128),
//!     with_decl(
//!         decl("l", dfield(domain("alpha"), int32())),
//!         seq(vec![
//!             mv(avar("l", everywhere()), int(6)),
//!             mv(avar("l", everywhere()),
//!                add(mul(int(2), ld("l", everywhere())), int(5))),
//!         ]),
//!     ),
//! );
//! let mut ev = Evaluator::new();
//! ev.run(&program)?;
//! # Ok::<(), f90y_nir::NirError>(())
//! ```

pub mod array;
pub mod build;
pub mod decl;
pub mod deps;
pub mod error;
pub mod eval;
pub mod imp;
pub mod loop_rules;
pub mod ops;
pub mod pretty;
pub mod shape;
pub mod shapecheck;
pub mod typecheck;
pub mod types;
pub mod value;
pub mod verify;

pub use array::{ArrayData, Scalar};
pub use decl::Decl;
pub use error::NirError;
pub use imp::{Imp, LValue, MoveClause};
pub use ops::{BinOp, UnOp};
pub use shape::{Extent, Shape, ShapeExpr};
pub use types::{ScalarType, Type};
pub use value::{Const, FieldAction, SectionRange, Value};

/// Identifiers for variables, domains and procedures.
///
/// A plain `String` keeps the algebra trivially printable and hashable; the
/// compiler is nowhere identifier-bound.
pub type Ident = String;
