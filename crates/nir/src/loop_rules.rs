//! The inductive LOOP expansion rules of paper Figure 4.
//!
//! The paper models serial loops over shapes inductively:
//!
//! 1. `LOOP(action, point X)            ⇒ action(X)`
//! 2. `LOOP(action, interval(min..max)) ⇒ SEQUENTIALLY [LOOP(action, point min);
//!                                          LOOP(action, interval(succ min..max))]`
//! 3. `LOOP(action, prod[dim1])         ⇒ LOOP(action, dim1)`
//! 4. `LOOP(action, prod[dim1,dims..])  ⇒ LOOP(LOOP(action, prod[dims..]), dim1)`
//!
//! [`expand`] applies these rules to rewrite a `DO` over an arbitrary
//! serial shape into a `SEQUENTIALLY` of point actions; it is the
//! *definition* of what serial iteration means, and the reference
//! evaluator's loop semantics are tested against it.

use crate::imp::Imp;
use crate::shape::Shape;

/// The result of one expansion step: either a fully reduced action or an
/// intermediate `LOOP` form (kept symbolic for step-by-step inspection).
#[derive(Debug, Clone, PartialEq)]
pub enum LoopForm {
    /// `LOOP(action, shape)` — not yet reduced.
    Loop(Box<LoopForm>, Shape),
    /// An action applied at one point: `action(X)`, with accumulated
    /// coordinates outermost-first.
    At(Vec<i64>),
    /// Sequential composition of expanded forms.
    Seq(Vec<LoopForm>),
}

/// Fully expand `LOOP(action, shape)` into the sequence of visited points,
/// applying the Figure 4 rules until no `LOOP` form remains.
///
/// Returns the points in visiting order (outer axes vary slowest), which
/// for any shape equals row-major order — the same order
/// [`Shape::points`] yields, a correspondence the tests rely on.
pub fn expand(shape: &Shape) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    expand_into(shape, &mut Vec::new(), &mut out);
    out
}

fn expand_into(shape: &Shape, prefix: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) {
    match shape {
        // Rule 1: LOOP(action, point X) => action(X)
        Shape::Point(p) => {
            prefix.push(*p);
            out.push(prefix.clone());
            prefix.pop();
        }
        // Rule 2: interval unrolls head-first.
        Shape::Interval(lo, hi) | Shape::SerialInterval(lo, hi) => {
            if lo > hi {
                return;
            }
            // LOOP(action, point min)
            expand_into(&Shape::Point(*lo), prefix, out);
            // LOOP(action, interval(succ min .. max))
            expand_into(&Shape::SerialInterval(lo + 1, *hi), prefix, out);
        }
        Shape::Ref(name) => panic!("LOOP expansion of unresolved domain '{name}'; resolve first"),
        Shape::Product(dims) => match dims.split_first() {
            None => out.push(prefix.clone()),
            // Rule 3: LOOP(action, prod[dim1]) => LOOP(action, dim1)
            Some((dim1, [])) => expand_into(dim1, prefix, out),
            // Rule 4: LOOP(action, prod[dim1, dims..])
            //         => LOOP(LOOP(action, prod[dims..]), dim1)
            Some((dim1, rest)) => {
                // `expand` of the head dimension supplies its coordinate
                // prefixes (including Point coordinates, per rule 1).
                for p in expand(dim1) {
                    let depth = p.len();
                    prefix.extend(p);
                    expand_into(&Shape::Product(rest.to_vec()), prefix, out);
                    prefix.truncate(prefix.len() - depth);
                }
            }
        },
    }
}

/// Perform a *single* Figure 4 rewrite step on a symbolic [`LoopForm`],
/// returning `None` when the form is already fully reduced.
///
/// This is exposed so the Figure 4 harness binary can show the derivation
/// sequence the paper presents.
pub fn step(form: &LoopForm) -> Option<LoopForm> {
    match form {
        LoopForm::At(_) => None,
        LoopForm::Seq(xs) => {
            for (i, x) in xs.iter().enumerate() {
                if let Some(x2) = step(x) {
                    let mut xs2 = xs.clone();
                    xs2[i] = x2;
                    return Some(LoopForm::Seq(xs2));
                }
            }
            None
        }
        LoopForm::Loop(action, shape) => Some(step_loop(action, shape)),
    }
}

fn step_loop(action: &LoopForm, shape: &Shape) -> LoopForm {
    match shape {
        Shape::Ref(name) => {
            panic!("LOOP expansion of unresolved domain '{name}'; resolve first")
        }
        Shape::Point(p) => apply(action, *p),
        Shape::Interval(lo, hi) | Shape::SerialInterval(lo, hi) => {
            if lo > hi {
                LoopForm::Seq(vec![])
            } else {
                LoopForm::Seq(vec![
                    LoopForm::Loop(Box::new(action.clone()), Shape::Point(*lo)),
                    LoopForm::Loop(Box::new(action.clone()), Shape::SerialInterval(lo + 1, *hi)),
                ])
            }
        }
        Shape::Product(dims) => match dims.split_first() {
            None => action.clone(),
            Some((dim1, [])) => LoopForm::Loop(Box::new(action.clone()), dim1.clone()),
            Some((dim1, rest)) => LoopForm::Loop(
                Box::new(LoopForm::Loop(
                    Box::new(action.clone()),
                    Shape::Product(rest.to_vec()),
                )),
                dim1.clone(),
            ),
        },
    }
}

fn apply(action: &LoopForm, coord: i64) -> LoopForm {
    match action {
        LoopForm::At(cs) => {
            // The outer loop supplies coordinates *before* the inner ones.
            let mut cs2 = vec![coord];
            cs2.extend(cs.iter().copied());
            LoopForm::At(cs2)
        }
        LoopForm::Seq(xs) => LoopForm::Seq(xs.iter().map(|x| apply(x, coord)).collect()),
        LoopForm::Loop(a, s) => LoopForm::Loop(Box::new(apply(a, coord)), s.clone()),
    }
}

/// Expand a `DO` over a *serial* shape into explicit `SEQUENTIALLY`
/// composition of per-point bodies — rule 2 at the imperative level.
///
/// The body is duplicated per point; this is the semantic definition used
/// by tests, not a code-generation strategy (the backends keep loops as
/// loops).
pub fn unroll_do(body: &Imp, shape: &Shape, instantiate: impl Fn(&Imp, &[i64]) -> Imp) -> Imp {
    let mut steps = Vec::new();
    for p in shape.points() {
        steps.push(instantiate(body, &p));
    }
    Imp::seq(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule1_point_applies_action() {
        assert_eq!(expand(&Shape::Point(7)), vec![vec![7]]);
    }

    #[test]
    fn rule2_interval_unrolls_in_order() {
        assert_eq!(
            expand(&Shape::SerialInterval(2, 5)),
            vec![vec![2], vec![3], vec![4], vec![5]]
        );
    }

    #[test]
    fn rule3_singleton_product_unwraps() {
        assert_eq!(
            expand(&Shape::Product(vec![Shape::Interval(1, 3)])),
            vec![vec![1], vec![2], vec![3]]
        );
    }

    #[test]
    fn rule4_product_nests_outer_first() {
        let s = Shape::Product(vec![Shape::Interval(1, 2), Shape::Interval(1, 2)]);
        assert_eq!(
            expand(&s),
            vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]
        );
    }

    #[test]
    fn expansion_matches_shape_points_order() {
        let s = Shape::Product(vec![
            Shape::SerialInterval(0, 2),
            Shape::Point(9),
            Shape::Interval(1, 3),
        ]);
        let via_rules = expand(&s);
        // Shape::points drops Point axes; the rules keep them. Compare
        // after removing the constant coordinate.
        let via_points: Vec<Vec<i64>> = s.points().map(|p| vec![p[0], 9, p[1]]).collect();
        assert_eq!(via_rules, via_points);
    }

    #[test]
    fn empty_interval_expands_to_nothing() {
        assert_eq!(expand(&Shape::SerialInterval(3, 2)), Vec::<Vec<i64>>::new());
    }

    #[test]
    fn symbolic_stepper_reaches_fixpoint() {
        let mut form = LoopForm::Loop(Box::new(LoopForm::At(vec![])), Shape::SerialInterval(1, 3));
        let mut steps = 0;
        while let Some(next) = step(&form) {
            form = next;
            steps += 1;
            assert!(steps < 100, "derivation did not terminate");
        }
        // Fully reduced: a (nested) Seq of At(point) leaves, in order.
        fn leaves(f: &LoopForm, out: &mut Vec<Vec<i64>>) {
            match f {
                LoopForm::At(c) => out.push(c.clone()),
                LoopForm::Seq(xs) => xs.iter().for_each(|x| leaves(x, out)),
                LoopForm::Loop(..) => panic!("unreduced LOOP"),
            }
        }
        let mut out = Vec::new();
        leaves(&form, &mut out);
        assert_eq!(out, vec![vec![1], vec![2], vec![3]]);
    }
}
