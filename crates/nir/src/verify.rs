//! Inter-pass verification hooks.
//!
//! The pass manager in `f90y-transform` calls into this module between
//! passes: [`check_static`] re-runs the type and shape checkers over the
//! rewritten program, and [`snapshot`]/[`compare_snapshots`] run the
//! reference evaluator and compare the observable final values of every
//! variable the two programs have in common.  A pass that miscompiles a
//! program therefore fails loudly at its own boundary, with a
//! [`NirError::Verify`] naming it, instead of surfacing later as a wrong
//! answer on the simulator.
//!
//! The comparison is over the *intersection* of captured variables:
//! passes are allowed to introduce or delete compiler temporaries
//! (`comm-split` adds them, `dce-temps` removes them), but must leave
//! every surviving variable bit-identical.

use std::collections::HashMap;

use crate::error::NirError;
use crate::eval::{Cell, Evaluator};
use crate::imp::Imp;
use crate::{shapecheck, typecheck};

/// The observable outcome of running a program: every variable's final
/// value, captured when its declaring scope exited.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    finals: HashMap<String, Cell>,
}

impl Snapshot {
    /// The number of captured variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.finals.len()
    }

    /// Whether nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.finals.is_empty()
    }

    /// The captured final value of a variable, if any.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&Cell> {
        self.finals.get(id)
    }
}

/// Re-run the static checkers (types, then shapes) over a program.
///
/// # Errors
///
/// Propagates the first [`NirError`] either checker raises.
pub fn check_static(imp: &Imp) -> Result<(), NirError> {
    typecheck::check(imp)?;
    shapecheck::check(imp)
}

/// Run the reference evaluator and capture every final value.
///
/// # Errors
///
/// Propagates any dynamic error the evaluator raises.
pub fn snapshot(imp: &Imp) -> Result<Snapshot, NirError> {
    let mut ev = Evaluator::new();
    ev.run(imp)?;
    let finals = ev
        .finals()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    Ok(Snapshot { finals })
}

/// Compare two snapshots over their common variables.
///
/// # Errors
///
/// Returns [`NirError::Verify`] naming `pass` when any variable present
/// in both snapshots has diverged.
pub fn compare_snapshots(pass: &str, before: &Snapshot, after: &Snapshot) -> Result<(), NirError> {
    let mut names: Vec<&String> = before
        .finals
        .keys()
        .filter(|k| after.finals.contains_key(*k))
        .collect();
    names.sort();
    for name in names {
        if before.finals[name] != after.finals[name] {
            return Err(NirError::Verify(format!(
                "pass '{pass}' changed the final value of '{name}'"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn little_program(k_init: i32) -> Imp {
        // L = 6 ; K = 2*K + <k_init> over K(16), L(16)
        with_domain(
            "alpha",
            interval(1, 16),
            with_decl(
                declset(vec![
                    decl("k", dfield(domain("alpha"), int32())),
                    decl("l", dfield(domain("alpha"), int32())),
                ]),
                seq(vec![
                    mv(avar("l", everywhere()), int(6)),
                    mv(
                        avar("k", everywhere()),
                        add(mul(int(2), ld("k", everywhere())), int(k_init)),
                    ),
                ]),
            ),
        )
    }

    #[test]
    fn static_check_passes_on_well_formed_program() {
        check_static(&little_program(5)).unwrap();
    }

    #[test]
    fn identical_programs_compare_equal() {
        let p = little_program(5);
        let before = snapshot(&p).unwrap();
        let after = snapshot(&p).unwrap();
        compare_snapshots("noop", &before, &after).unwrap();
        assert!(before.get("k").is_some());
        assert!(!before.is_empty());
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn divergence_is_reported_with_the_pass_name() {
        let before = snapshot(&little_program(5)).unwrap();
        let after = snapshot(&little_program(7)).unwrap();
        let err = compare_snapshots("evil-pass", &before, &after).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("evil-pass"), "message was: {msg}");
        assert!(msg.contains("'k'"), "message was: {msg}");
    }

    #[test]
    fn extra_temporaries_are_ignored() {
        // A snapshot with an extra variable (a compiler temp) still
        // compares equal over the intersection, in both directions.
        let p = little_program(5);
        let before = snapshot(&p).unwrap();
        let mut extra = before.clone();
        extra
            .finals
            .insert("tmp0".into(), Cell::Scalar(crate::array::Scalar::F64(1.0)));
        compare_snapshots("comm-split", &before, &extra).unwrap();
        compare_snapshots("dce-temps", &extra, &before).unwrap();
    }
}
