//! A reference interpreter for NIR: the ground-truth semantics.
//!
//! Every backend in the Fortran-90-Y pipeline (PE/NIR, FE/NIR, the
//! baseline compilers) is validated against this evaluator: compile a
//! program, run it on the machine simulator, and compare every array
//! against what the evaluator computed. The evaluator is deliberately
//! simple — whole-array operations, no blocking, no layout — so that its
//! correctness is easy to audit.
//!
//! ## Semantics notes
//!
//! * `MOVE` evaluates each clause in order; within a clause the whole
//!   right-hand side (and mask) is evaluated before any element of the
//!   destination is written, giving Fortran-90 array-assignment semantics.
//! * `DO` visits the points of its shape in row-major order. For parallel
//!   shapes any visiting order would yield the same result on valid
//!   programs; row-major keeps the interpreter deterministic.
//! * When a `WITH_DECL` scope exits, its bindings are captured into a
//!   `finals` map (innermost binding of each name wins) so tests can
//!   observe program results after `run` returns.

use std::collections::HashMap;

use crate::array::{ArrayData, Scalar};
use crate::decl::Decl;
use crate::error::NirError;
use crate::imp::{Imp, LValue, MoveClause};
use crate::ops::{BinOp, UnOp};
use crate::shape::DomainEnv;
use crate::types::{ScalarType, Type};
use crate::value::{Const, FieldAction, Value};
use crate::Ident;

/// A runtime cell: a scalar or an array.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A scalar value.
    Scalar(Scalar),
    /// An array value.
    Array(ArrayData),
}

impl Cell {
    /// The scalar, or an error for arrays.
    ///
    /// # Errors
    ///
    /// Fails when the cell holds an array.
    pub fn into_scalar(self) -> Result<Scalar, NirError> {
        match self {
            Cell::Scalar(s) => Ok(s),
            Cell::Array(_) => Err(NirError::Eval("array used where scalar expected".into())),
        }
    }

    /// The array, or an error for scalars.
    ///
    /// # Errors
    ///
    /// Fails when the cell holds a scalar.
    pub fn into_array(self) -> Result<ArrayData, NirError> {
        match self {
            Cell::Array(a) => Ok(a),
            Cell::Scalar(_) => Err(NirError::Eval("scalar used where array expected".into())),
        }
    }
}

#[derive(Debug)]
struct Binding {
    ty: Type,
    cell: Cell,
}

/// The NIR reference evaluator.
#[derive(Debug, Default)]
pub struct Evaluator {
    scopes: Vec<HashMap<Ident, Binding>>,
    domains: DomainEnv,
    do_indices: Vec<(Ident, Vec<i64>)>,
    finals: HashMap<Ident, Cell>,
}

impl Evaluator {
    /// A fresh evaluator with empty environments.
    pub fn new() -> Self {
        Evaluator {
            scopes: vec![HashMap::new()],
            domains: DomainEnv::new(),
            do_indices: Vec::new(),
            finals: HashMap::new(),
        }
    }

    /// Execute a program.
    ///
    /// # Errors
    ///
    /// Fails on any dynamic error (unbound names, shape disagreement at
    /// run time, division by zero, out-of-bounds subscripts).
    pub fn run(&mut self, imp: &Imp) -> Result<(), NirError> {
        self.exec(imp)
    }

    /// The final value of a variable, captured when its declaring scope
    /// exited (innermost binding of the name wins).
    pub fn final_cell(&self, id: &str) -> Option<&Cell> {
        self.finals.get(id)
    }

    /// The final value of an array variable as an `f64` buffer.
    ///
    /// # Errors
    ///
    /// Fails when the variable was not captured or is not a numeric
    /// array.
    pub fn final_array_f64(&self, id: &str) -> Result<Vec<f64>, NirError> {
        match self.finals.get(id) {
            Some(Cell::Array(a)) => a.to_f64_vec(),
            Some(Cell::Scalar(_)) => Err(NirError::Eval(format!("'{id}' is a scalar"))),
            None => Err(NirError::Unbound(id.into())),
        }
    }

    /// The final value of a scalar variable as `f64` (logicals map to
    /// 0/1, the machine representation).
    ///
    /// # Errors
    ///
    /// Fails when the variable was not captured or is an array.
    pub fn final_scalar_f64(&self, id: &str) -> Result<f64, NirError> {
        match self.finals.get(id) {
            Some(Cell::Scalar(Scalar::Bool(b))) => Ok(if *b { 1.0 } else { 0.0 }),
            Some(Cell::Scalar(s)) => s.to_f64(),
            Some(Cell::Array(_)) => Err(NirError::Eval(format!("'{id}' is an array"))),
            None => Err(NirError::Unbound(id.into())),
        }
    }

    /// All captured final values, in no particular order.  Used by the
    /// pass-verification machinery to compare observable behaviour
    /// before and after a transformation.
    pub fn finals(&self) -> impl Iterator<Item = (&str, &Cell)> {
        self.finals.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Pre-bind a variable in the outermost scope (for harnesses that
    /// inject input data).
    pub fn preset(&mut self, id: &str, ty: Type, cell: Cell) {
        self.scopes[0].insert(id.into(), Binding { ty, cell });
    }

    fn lookup(&self, id: &str) -> Result<&Binding, NirError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(id))
            .ok_or_else(|| NirError::Unbound(id.into()))
    }

    fn lookup_mut(&mut self, id: &str) -> Result<&mut Binding, NirError> {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.get_mut(id))
            .ok_or_else(|| NirError::Unbound(id.into()))
    }

    fn exec(&mut self, imp: &Imp) -> Result<(), NirError> {
        match imp {
            Imp::Program(body) => self.exec(body),
            Imp::Skip => Ok(()),
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
                for x in xs {
                    self.exec(x)?;
                }
                Ok(())
            }
            Imp::Move(clauses) => {
                for c in clauses {
                    self.exec_move(c)?;
                }
                Ok(())
            }
            Imp::IfThenElse(c, t, e) => {
                if self.eval(c)?.into_scalar()?.to_bool()? {
                    self.exec(t)
                } else {
                    self.exec(e)
                }
            }
            Imp::While(c, body) => {
                let mut fuel: u64 = 100_000_000;
                while self.eval(c)?.into_scalar()?.to_bool()? {
                    self.exec(body)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(NirError::Eval("WHILE exceeded iteration fuel".into()));
                    }
                }
                Ok(())
            }
            Imp::Do(dom, shape, body) => {
                let resolved = shape.resolve(&self.domains)?;
                for p in resolved.points() {
                    self.do_indices.push((dom.clone(), p));
                    let r = self.exec(body);
                    self.do_indices.pop();
                    r?;
                }
                Ok(())
            }
            Imp::WithDecl(d, body) => {
                self.scopes.push(HashMap::new());
                let r = self.exec_decl(d).and_then(|()| self.exec(body));
                let frame = self.scopes.pop().expect("frame pushed above");
                for (id, b) in frame {
                    self.finals.entry(id).or_insert(b.cell);
                }
                r
            }
            Imp::WithDomain(name, shape, body) => {
                let resolved = shape.resolve(&self.domains)?;
                let old = self.domains.insert(name.clone(), resolved);
                let r = self.exec(body);
                match old {
                    Some(s) => {
                        self.domains.insert(name.clone(), s);
                    }
                    None => {
                        self.domains.remove(name);
                    }
                }
                r
            }
        }
    }

    fn exec_decl(&mut self, d: &Decl) -> Result<(), NirError> {
        for (id, ty, init) in d.bindings() {
            let resolved_ty = self.resolve_type(ty)?;
            let mut cell = self.zero_cell(&resolved_ty)?;
            if let Some(v) = init {
                let val = self.eval(v)?;
                cell = coerce_into(val, &cell)?;
            }
            self.scopes
                .last_mut()
                .expect("context always has a scope")
                .insert(
                    id.clone(),
                    Binding {
                        ty: resolved_ty,
                        cell,
                    },
                );
        }
        Ok(())
    }

    fn resolve_type(&self, ty: &Type) -> Result<Type, NirError> {
        match ty {
            Type::Scalar(s) => Ok(Type::Scalar(*s)),
            Type::DField { shape, elem } => Ok(Type::DField {
                shape: shape.resolve(&self.domains)?,
                elem: Box::new(self.resolve_type(elem)?),
            }),
        }
    }

    fn zero_cell(&self, ty: &Type) -> Result<Cell, NirError> {
        match ty {
            Type::Scalar(s) => Ok(Cell::Scalar(Scalar::zero(*s))),
            Type::DField { shape, elem } => {
                let resolved = shape.resolve(&self.domains)?;
                Ok(Cell::Array(ArrayData::zeros(
                    resolved.array_bounds(),
                    elem.elem_scalar(),
                )))
            }
        }
    }

    fn exec_move(&mut self, c: &MoveClause) -> Result<(), NirError> {
        let src = self.eval(&c.src)?;
        let mask = self.eval(&c.mask)?;
        match &c.dst {
            LValue::SVar(id) => {
                let enabled = match mask {
                    Cell::Scalar(s) => s.to_bool()?,
                    Cell::Array(_) => {
                        return Err(NirError::Eval("array mask on scalar destination".into()))
                    }
                };
                if enabled {
                    let s = src.into_scalar()?;
                    let b = self.lookup_mut(id)?;
                    let converted = s.convert(b.ty.elem_scalar())?;
                    b.cell = Cell::Scalar(converted);
                }
                Ok(())
            }
            LValue::AVar(id, fa) => self.store_avar(id, fa, src, mask),
        }
    }

    fn store_avar(
        &mut self,
        id: &str,
        fa: &FieldAction,
        src: Cell,
        mask: Cell,
    ) -> Result<(), NirError> {
        // Pre-compute subscript coordinates before mutably borrowing.
        let coords = match fa {
            FieldAction::Subscript(ixs) => Some(self.eval_subscripts(ixs)?),
            _ => None,
        };
        let binding = self.lookup_mut(id)?;
        let arr = match &mut binding.cell {
            Cell::Array(a) => a,
            Cell::Scalar(_) => return Err(NirError::Eval(format!("AVAR '{id}' names a scalar"))),
        };
        match fa {
            FieldAction::Subscript(_) => {
                let coords = coords.expect("computed above");
                let enabled = match mask {
                    Cell::Scalar(s) => s.to_bool()?,
                    Cell::Array(m) => m.get(&coords)?.to_bool()?,
                };
                if enabled {
                    arr.set(&coords, src.into_scalar()?)?;
                }
                Ok(())
            }
            FieldAction::Everywhere => {
                let dims = arr.dims();
                let n = arr.len();
                for flat in 0..n {
                    let enabled = match &mask {
                        Cell::Scalar(s) => s.to_bool()?,
                        Cell::Array(m) => {
                            if m.len() != n {
                                return Err(NirError::Eval(format!(
                                    "mask shape does not conform to '{id}'"
                                )));
                            }
                            m.as_slice()[flat].to_bool()?
                        }
                    };
                    if !enabled {
                        continue;
                    }
                    let v = match &src {
                        Cell::Scalar(s) => *s,
                        Cell::Array(a) => {
                            if a.len() != n {
                                return Err(NirError::Eval(format!(
                                    "source shape does not conform to '{id}' \
                                     ({} vs {} elements)",
                                    a.len(),
                                    n
                                )));
                            }
                            a.as_slice()[flat]
                        }
                    };
                    let elem = arr.elem_type();
                    arr.as_mut_slice()[flat] = v.convert(elem)?;
                }
                let _ = dims;
                Ok(())
            }
            FieldAction::Section(ranges) => {
                if ranges.len() != arr.rank() {
                    return Err(NirError::Eval(format!(
                        "section rank {} does not match '{id}' rank {}",
                        ranges.len(),
                        arr.rank()
                    )));
                }
                // Enumerate section points in row-major order; the flat
                // index into src/mask follows the same order.
                let mut flat = 0usize;
                let total: usize = ranges.iter().map(|r| r.len()).product();
                let mut coords: Vec<i64> = ranges.iter().map(|r| r.lo).collect();
                while flat < total {
                    let enabled = match &mask {
                        Cell::Scalar(s) => s.to_bool()?,
                        Cell::Array(m) => {
                            if m.len() != total {
                                return Err(NirError::Eval(
                                    "mask does not conform to section".into(),
                                ));
                            }
                            m.as_slice()[flat].to_bool()?
                        }
                    };
                    if enabled {
                        let v = match &src {
                            Cell::Scalar(s) => *s,
                            Cell::Array(a) => {
                                if a.len() != total {
                                    return Err(NirError::Eval(format!(
                                        "source does not conform to section of '{id}' \
                                         ({} vs {total} elements)",
                                        a.len()
                                    )));
                                }
                                a.as_slice()[flat]
                            }
                        };
                        arr.set(&coords.clone(), v)?;
                    }
                    flat += 1;
                    // Advance section odometer.
                    for axis in (0..ranges.len()).rev() {
                        coords[axis] += ranges[axis].step;
                        if coords[axis] <= ranges[axis].hi {
                            break;
                        }
                        coords[axis] = ranges[axis].lo;
                    }
                }
                Ok(())
            }
        }
    }

    fn eval_subscripts(&mut self, ixs: &[Value]) -> Result<Vec<i64>, NirError> {
        ixs.iter()
            .map(|ix| self.eval(ix)?.into_scalar()?.to_i64())
            .collect()
    }

    /// Evaluate a value term to a cell (whole-array semantics).
    ///
    /// # Errors
    ///
    /// Fails on any dynamic error in the term.
    pub fn eval(&mut self, v: &Value) -> Result<Cell, NirError> {
        match v {
            Value::Scalar(c) => Ok(Cell::Scalar(const_to_scalar(*c))),
            Value::SVar(id) => match &self.lookup(id)?.cell {
                Cell::Scalar(s) => Ok(Cell::Scalar(*s)),
                Cell::Array(_) => Err(NirError::Eval(format!("SVAR '{id}' names an array"))),
            },
            Value::AVar(id, fa) => self.load_avar(id, fa),
            Value::Unary(op, a) => {
                let av = self.eval(a)?;
                map_cell(av, |s| apply_unop(*op, s))
            }
            Value::Binary(op, a, b) => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                zip_cells(av, bv, |x, y| apply_binop(*op, x, y))
            }
            Value::FcnCall(name, args) => self.eval_call(name, args),
            Value::LocalUnder(shape, dim) => {
                let resolved = shape.resolve(&self.domains)?;
                let bounds = resolved.array_bounds();
                let mut arr = ArrayData::zeros(bounds, ScalarType::Integer32);
                for (flat, p) in resolved.points().enumerate() {
                    arr.as_mut_slice()[flat] = Scalar::I32(p[*dim - 1] as i32);
                }
                Ok(Cell::Array(arr))
            }
            Value::DoIndex(dom, dim) => {
                let (_, coords) = self
                    .do_indices
                    .iter()
                    .rev()
                    .find(|(name, _)| name == dom)
                    .ok_or_else(|| NirError::Eval(format!("do_index outside DO '{dom}'")))?;
                let c = *coords.get(*dim - 1).ok_or_else(|| {
                    NirError::Eval(format!("do_index dimension {dim} out of range"))
                })?;
                Ok(Cell::Scalar(Scalar::I32(c as i32)))
            }
        }
    }

    fn load_avar(&mut self, id: &str, fa: &FieldAction) -> Result<Cell, NirError> {
        match fa {
            FieldAction::Subscript(ixs) => {
                let coords = self.eval_subscripts(ixs)?;
                let binding = self.lookup(id)?;
                match &binding.cell {
                    Cell::Array(a) => Ok(Cell::Scalar(a.get(&coords)?)),
                    Cell::Scalar(_) => Err(NirError::Eval(format!("AVAR '{id}' names a scalar"))),
                }
            }
            FieldAction::Everywhere => match &self.lookup(id)?.cell {
                Cell::Array(a) => Ok(Cell::Array(a.clone())),
                Cell::Scalar(_) => Err(NirError::Eval(format!("AVAR '{id}' names a scalar"))),
            },
            FieldAction::Section(ranges) => {
                let binding = self.lookup(id)?;
                let arr = match &binding.cell {
                    Cell::Array(a) => a,
                    Cell::Scalar(_) => {
                        return Err(NirError::Eval(format!("AVAR '{id}' names a scalar")))
                    }
                };
                if ranges.len() != arr.rank() {
                    return Err(NirError::Eval(format!(
                        "section rank {} does not match '{id}' rank {}",
                        ranges.len(),
                        arr.rank()
                    )));
                }
                let out_bounds: Vec<(i64, i64)> =
                    ranges.iter().map(|r| (1, r.len() as i64)).collect();
                let mut out = ArrayData::zeros(out_bounds, arr.elem_type());
                let total = out.len();
                let mut coords: Vec<i64> = ranges.iter().map(|r| r.lo).collect();
                for flat in 0..total {
                    out.as_mut_slice()[flat] = arr.get(&coords)?;
                    for axis in (0..ranges.len()).rev() {
                        coords[axis] += ranges[axis].step;
                        if coords[axis] <= ranges[axis].hi {
                            break;
                        }
                        coords[axis] = ranges[axis].lo;
                    }
                }
                Ok(Cell::Array(out))
            }
        }
    }

    fn eval_call(&mut self, name: &str, args: &[(Type, Value)]) -> Result<Cell, NirError> {
        let vals: Vec<Cell> = args
            .iter()
            .map(|(_, v)| self.eval(v))
            .collect::<Result<_, _>>()?;
        match name {
            "cshift" => {
                if vals.len() != 3 {
                    return Err(NirError::Eval("cshift expects (array, shift, dim)".into()));
                }
                let arr = vals[0].clone().into_array()?;
                let shift = vals[1].clone().into_scalar()?.to_i64()?;
                let dim = vals[2].clone().into_scalar()?.to_i64()?;
                if dim < 1 || dim as usize > arr.rank() {
                    return Err(NirError::Eval(format!("cshift DIM={dim} out of range")));
                }
                Ok(Cell::Array(arr.cshift(dim as usize - 1, shift)?))
            }
            "eoshift" => {
                if vals.len() != 3 && vals.len() != 4 {
                    return Err(NirError::Eval(
                        "eoshift expects (array, shift, dim[, boundary])".into(),
                    ));
                }
                let arr = vals[0].clone().into_array()?;
                let shift = vals[1].clone().into_scalar()?.to_i64()?;
                let dim = vals[2].clone().into_scalar()?.to_i64()?;
                if dim < 1 || dim as usize > arr.rank() {
                    return Err(NirError::Eval(format!("eoshift DIM={dim} out of range")));
                }
                let boundary = match vals.get(3) {
                    Some(c) => c.clone().into_scalar()?,
                    None => Scalar::zero(arr.elem_type()),
                };
                Ok(Cell::Array(arr.eoshift(
                    dim as usize - 1,
                    shift,
                    boundary,
                )?))
            }
            "merge" => {
                if vals.len() != 3 {
                    return Err(NirError::Eval(
                        "merge expects (tsource, fsource, mask)".into(),
                    ));
                }
                let mask = vals[2].clone();
                let (t, f) = (vals[0].clone(), vals[1].clone());
                // Elementwise select with scalar broadcast on any slot.
                let n = [&t, &f, &mask].iter().find_map(|c| match c {
                    Cell::Array(a) => Some(a.len()),
                    Cell::Scalar(_) => None,
                });
                match n {
                    None => {
                        let m = mask.into_scalar()?.to_bool()?;
                        Ok(if m { t } else { f })
                    }
                    Some(n) => {
                        let template = [&t, &f]
                            .iter()
                            .find_map(|c| match c {
                                Cell::Array(a) => Some(a.clone()),
                                Cell::Scalar(_) => None,
                            })
                            .or_else(|| match &mask {
                                Cell::Array(m) => {
                                    Some(ArrayData::zeros(m.bounds().to_vec(), ScalarType::Float64))
                                }
                                Cell::Scalar(_) => None,
                            })
                            .expect("n came from an array");
                        let mut out = template;
                        for i in 0..n {
                            let m = match &mask {
                                Cell::Scalar(s) => s.to_bool()?,
                                Cell::Array(a) => a.as_slice()[i].to_bool()?,
                            };
                            let v = match (m, &t, &f) {
                                (true, Cell::Scalar(s), _) => *s,
                                (true, Cell::Array(a), _) => a.as_slice()[i],
                                (false, _, Cell::Scalar(s)) => *s,
                                (false, _, Cell::Array(a)) => a.as_slice()[i],
                            };
                            let elem = out.elem_type();
                            out.as_mut_slice()[i] = v.convert(elem)?;
                        }
                        Ok(Cell::Array(out))
                    }
                }
            }
            "transpose" => {
                if vals.len() != 1 {
                    return Err(NirError::Eval("transpose expects one argument".into()));
                }
                Ok(Cell::Array(vals[0].clone().into_array()?.transpose()?))
            }
            "sum" | "maxval" | "minval" => {
                if vals.is_empty() || vals.len() > 2 {
                    return Err(NirError::Eval(format!("{name} expects (array[, dim])")));
                }
                let arr = vals[0].clone().into_array()?;
                let elem = arr.elem_type();
                if let Some(dim_cell) = vals.get(1) {
                    let dim = dim_cell.clone().into_scalar()?.to_i64()?;
                    if dim < 1 || dim as usize > arr.rank() {
                        return Err(NirError::Eval(format!("{name} DIM={dim} out of range")));
                    }
                    let op = match name {
                        "sum" => 0,
                        "maxval" => 1,
                        _ => 2,
                    };
                    return Ok(Cell::Array(arr.reduce_axis(dim as usize - 1, op)?));
                }
                let x = match name {
                    "sum" => arr.sum()?,
                    "maxval" => arr.maxval()?,
                    _ => arr.minval()?,
                };
                Ok(Cell::Scalar(Scalar::F64(x).convert(match elem {
                    ScalarType::Integer32 => ScalarType::Integer32,
                    other => other,
                })?))
            }
            "spread" => {
                if vals.len() != 3 {
                    return Err(NirError::Eval(
                        "spread expects (source, dim, ncopies)".into(),
                    ));
                }
                let arr = vals[0].clone().into_array()?;
                let dim = vals[1].clone().into_scalar()?.to_i64()?;
                let n = vals[2].clone().into_scalar()?.to_i64()?;
                if dim < 1 || dim as usize > arr.rank() + 1 {
                    return Err(NirError::Eval(format!("spread DIM={dim} out of range")));
                }
                if n < 0 {
                    return Err(NirError::Eval("spread NCOPIES must be nonnegative".into()));
                }
                Ok(Cell::Array(arr.spread(dim as usize - 1, n as usize)?))
            }
            other => Err(NirError::Eval(format!("unknown primitive '{other}'"))),
        }
    }
}

fn const_to_scalar(c: Const) -> Scalar {
    match c {
        Const::I32(v) => Scalar::I32(v),
        Const::Bool(v) => Scalar::Bool(v),
        Const::F32(v) => Scalar::F32(v),
        Const::F64(v) => Scalar::F64(v),
    }
}

fn coerce_into(src: Cell, template: &Cell) -> Result<Cell, NirError> {
    match (src, template) {
        (Cell::Scalar(s), Cell::Scalar(t)) => Ok(Cell::Scalar(s.convert(t.scalar_type())?)),
        (Cell::Scalar(s), Cell::Array(a)) => {
            let mut out = a.clone();
            out.fill(s)?;
            Ok(Cell::Array(out))
        }
        (Cell::Array(src), Cell::Array(a)) => {
            if src.len() != a.len() {
                return Err(NirError::Eval(
                    "initializer does not conform to declared shape".into(),
                ));
            }
            let mut out = a.clone();
            for (o, s) in out.as_mut_slice().iter_mut().zip(src.as_slice().iter()) {
                *o = s.convert(a.elem_type())?;
            }
            Ok(Cell::Array(out))
        }
        (Cell::Array(_), Cell::Scalar(_)) => {
            Err(NirError::Eval("array initializer for scalar".into()))
        }
    }
}

fn map_cell(c: Cell, f: impl Fn(Scalar) -> Result<Scalar, NirError>) -> Result<Cell, NirError> {
    match c {
        Cell::Scalar(s) => Ok(Cell::Scalar(f(s)?)),
        Cell::Array(mut a) => {
            for s in a.as_mut_slice() {
                *s = f(*s)?;
            }
            Ok(Cell::Array(a))
        }
    }
}

fn zip_cells(
    a: Cell,
    b: Cell,
    f: impl Fn(Scalar, Scalar) -> Result<Scalar, NirError>,
) -> Result<Cell, NirError> {
    match (a, b) {
        (Cell::Scalar(x), Cell::Scalar(y)) => Ok(Cell::Scalar(f(x, y)?)),
        (Cell::Array(mut xs), Cell::Scalar(y)) => {
            for x in xs.as_mut_slice() {
                *x = f(*x, y)?;
            }
            Ok(Cell::Array(xs))
        }
        (Cell::Scalar(x), Cell::Array(ys)) => {
            let mut out = ys.clone();
            for (o, y) in out.as_mut_slice().iter_mut().zip(ys.as_slice()) {
                *o = f(x, *y)?;
            }
            Ok(Cell::Array(out))
        }
        (Cell::Array(xs), Cell::Array(ys)) => {
            if xs.len() != ys.len() {
                return Err(NirError::Eval(format!(
                    "elementwise operation on non-conforming arrays ({} vs {})",
                    xs.len(),
                    ys.len()
                )));
            }
            let mut out = xs.clone();
            for (o, (x, y)) in out
                .as_mut_slice()
                .iter_mut()
                .zip(xs.as_slice().iter().zip(ys.as_slice()))
            {
                *o = f(*x, *y)?;
            }
            Ok(Cell::Array(out))
        }
    }
}

/// Apply a binary operator to two scalars with Fortran promotion.
///
/// # Errors
///
/// Fails on type misuse, division by zero, or out-of-domain `**`.
pub fn apply_binop(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, NirError> {
    use BinOp::*;
    if op.is_logical() {
        let (x, y) = (a.to_bool()?, b.to_bool()?);
        return Ok(Scalar::Bool(match op {
            And => x && y,
            Or => x || y,
            _ => unreachable!("logical ops are And/Or"),
        }));
    }
    // Logical equality is permitted (.EQV.-style via Eq).
    if let (Scalar::Bool(x), Scalar::Bool(y)) = (a, b) {
        return match op {
            Eq => Ok(Scalar::Bool(x == y)),
            Ne => Ok(Scalar::Bool(x != y)),
            _ => Err(NirError::Eval(format!("operator {op} on logicals"))),
        };
    }
    let joined = a
        .scalar_type()
        .promote(b.scalar_type())
        .ok_or_else(|| NirError::Eval(format!("operator {op} on mixed logical operands")))?;
    if op.is_relational() {
        let (x, y) = (a.to_f64()?, b.to_f64()?);
        return Ok(Scalar::Bool(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
            _ => unreachable!("relational ops enumerated"),
        }));
    }
    if joined == ScalarType::Integer32 {
        let (x, y) = (a.to_i64()? as i32, b.to_i64()? as i32);
        let r = match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(NirError::Eval("integer division by zero".into()));
                }
                x.wrapping_div(y)
            }
            Mod => {
                if y == 0 {
                    return Err(NirError::Eval("MOD by zero".into()));
                }
                x.wrapping_rem(y)
            }
            Pow => {
                if y < 0 {
                    return Err(NirError::Eval("negative integer exponent".into()));
                }
                x.wrapping_pow(y as u32)
            }
            Max => x.max(y),
            Min => x.min(y),
            _ => unreachable!("arithmetic ops enumerated"),
        };
        return Ok(Scalar::I32(r));
    }
    let (x, y) = (a.to_f64()?, b.to_f64()?);
    let r = match op {
        Add => x + y,
        Sub => x - y,
        Mul => x * y,
        Div => {
            if y == 0.0 {
                return Err(NirError::Eval("division by zero".into()));
            }
            x / y
        }
        Mod => x % y,
        Pow => x.powf(y),
        Max => x.max(y),
        Min => x.min(y),
        _ => unreachable!("arithmetic ops enumerated"),
    };
    Ok(match joined {
        ScalarType::Float32 => Scalar::F32(r as f32),
        _ => Scalar::F64(r),
    })
}

/// Apply a unary operator to a scalar.
///
/// # Errors
///
/// Fails on type misuse (e.g. `NOT` on numerics).
pub fn apply_unop(op: UnOp, a: Scalar) -> Result<Scalar, NirError> {
    use UnOp::*;
    match op {
        Not => Ok(Scalar::Bool(!a.to_bool()?)),
        Neg => match a {
            Scalar::I32(v) => Ok(Scalar::I32(v.wrapping_neg())),
            Scalar::F32(v) => Ok(Scalar::F32(-v)),
            Scalar::F64(v) => Ok(Scalar::F64(-v)),
            Scalar::Bool(_) => Err(NirError::Eval("negation of logical".into())),
        },
        Abs => match a {
            Scalar::I32(v) => Ok(Scalar::I32(v.wrapping_abs())),
            Scalar::F32(v) => Ok(Scalar::F32(v.abs())),
            Scalar::F64(v) => Ok(Scalar::F64(v.abs())),
            Scalar::Bool(_) => Err(NirError::Eval("ABS of logical".into())),
        },
        Sqrt | Sin | Cos | Exp | Log => {
            let x = a.to_f64()?;
            let r = match op {
                Sqrt => x.sqrt(),
                Sin => x.sin(),
                Cos => x.cos(),
                Exp => x.exp(),
                Log => x.ln(),
                _ => unreachable!("transcendentals enumerated"),
            };
            Ok(match a {
                Scalar::F32(_) => Scalar::F32(r as f32),
                _ => Scalar::F64(r),
            })
        }
        ToFloat64 => Ok(Scalar::F64(a.to_f64()?)),
        ToFloat32 => Ok(Scalar::F32(a.to_f64()? as f32)),
        ToInt => Ok(Scalar::I32(a.to_f64()?.trunc() as i32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::value::SectionRange;

    #[test]
    fn fig8_whole_array_assignments() {
        // L = 6 ; K = 2*K + 5 over K(128,64), L(128)
        let p = with_domain(
            "alpha",
            interval(1, 128),
            with_domain(
                "beta",
                prod(vec![domain("alpha"), interval(1, 64)]),
                with_decl(
                    declset(vec![
                        decl("k", dfield(domain("beta"), int32())),
                        decl("l", dfield(domain("alpha"), int32())),
                    ]),
                    seq(vec![
                        mv(avar("l", everywhere()), int(6)),
                        mv(
                            avar("k", everywhere()),
                            add(mul(int(2), ld("k", everywhere())), int(5)),
                        ),
                    ]),
                ),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let l = ev.final_array_f64("l").unwrap();
        assert_eq!(l.len(), 128);
        assert!(l.iter().all(|&x| x == 6.0));
        let k = ev.final_array_f64("k").unwrap();
        assert_eq!(k.len(), 128 * 64);
        assert!(k.iter().all(|&x| x == 5.0)); // K started at 0
    }

    #[test]
    fn fig7_forall_coordinate_sum() {
        // FORALL (i=1:32, j=1:32) A(i,j) = i+j
        let p = with_domain(
            "alpha",
            prod(vec![interval(1, 32), interval(1, 32)]),
            with_decl(
                decl("a", dfield(domain("alpha"), int32())),
                mv(
                    avar("a", everywhere()),
                    add(
                        local_under(domain("alpha"), 1),
                        local_under(domain("alpha"), 2),
                    ),
                ),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let a = ev.final_array_f64("a").unwrap();
        // a[(i-1)*32 + (j-1)] == i+j
        assert_eq!(a[0], 2.0);
        assert_eq!(a[31], 1.0 + 32.0);
        assert_eq!(a[32 * 31 + 31], 64.0);
    }

    #[test]
    fn masked_move_only_touches_masked_points() {
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                decl("a", dfield(domain("s"), int32())),
                seq(vec![
                    mv(avar("a", everywhere()), int(1)),
                    mv_masked(
                        bin(
                            crate::ops::BinOp::Eq,
                            bin(crate::ops::BinOp::Mod, local_under(domain("s"), 1), int(2)),
                            int(0),
                        ),
                        avar("a", everywhere()),
                        int(9),
                    ),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let a = ev.final_array_f64("a").unwrap();
        assert_eq!(a, vec![1.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 9.0]);
    }

    #[test]
    fn section_read_and_write() {
        // L(1:3) = L(5:7) style with strides
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                decl("l", dfield(domain("s"), int32())),
                seq(vec![
                    mv(avar("l", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("l", section(vec![SectionRange::new(1, 3)])),
                        ld("l", section(vec![SectionRange::new(5, 7)])),
                    ),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let l = ev.final_array_f64("l").unwrap();
        assert_eq!(l, vec![5.0, 6.0, 7.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn rhs_is_fully_evaluated_before_assignment() {
        // L(2:8) = L(1:7): Fortran semantics requires old values.
        let p = with_domain(
            "s",
            interval(1, 8),
            with_decl(
                decl("l", dfield(domain("s"), int32())),
                seq(vec![
                    mv(avar("l", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("l", section(vec![SectionRange::new(2, 8)])),
                        ld("l", section(vec![SectionRange::new(1, 7)])),
                    ),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let l = ev.final_array_f64("l").unwrap();
        assert_eq!(l, vec![1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn serial_do_with_subscripts() {
        // DO i=1,64: C(i) = A(i,i) — the Fig. 9 diagonal gather.
        let p = with_domain(
            "gamma",
            interval(1, 8),
            with_domain(
                "beta",
                serial_interval(1, 8),
                with_domain(
                    "alpha",
                    prod(vec![domain("beta"), domain("gamma")]),
                    with_decl(
                        declset(vec![
                            decl("a", dfield(domain("alpha"), int32())),
                            decl("c", dfield(domain("beta"), int32())),
                        ]),
                        seq(vec![
                            mv(
                                avar("a", everywhere()),
                                mul(
                                    local_under(domain("alpha"), 1),
                                    local_under(domain("alpha"), 2),
                                ),
                            ),
                            do_over(
                                "i",
                                domain("beta"),
                                mv(
                                    avar("c", subscript(vec![do_index("i", 1)])),
                                    ld("a", subscript(vec![do_index("i", 1), do_index("i", 1)])),
                                ),
                            ),
                        ]),
                    ),
                ),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let c = ev.final_array_f64("c").unwrap();
        let expect: Vec<f64> = (1..=8).map(|i| (i * i) as f64).collect();
        assert_eq!(c, expect);
    }

    #[test]
    fn cshift_intrinsic_through_fcncall() {
        let p = with_domain(
            "s",
            interval(1, 5),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("s"), int32())),
                    decl("b", dfield(domain("s"), int32())),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        avar("b", everywhere()),
                        fcncall(
                            "cshift",
                            vec![
                                (int32(), ld("a", everywhere())),
                                (int32(), int(-1)),
                                (int32(), int(1)),
                            ],
                        ),
                    ),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        let b = ev.final_array_f64("b").unwrap();
        assert_eq!(b, vec![5.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn while_and_if_control_flow() {
        // x = 0; while x < 5 { if even(x) { y = y + 10 } else { y = y + 1 }; x = x + 1 }
        let p = with_decl(
            declset(vec![decl("x", int32()), decl("y", int32())]),
            while_loop(
                bin(crate::ops::BinOp::Lt, svar("x"), int(5)),
                seq(vec![
                    ifte(
                        bin(
                            crate::ops::BinOp::Eq,
                            bin(crate::ops::BinOp::Mod, svar("x"), int(2)),
                            int(0),
                        ),
                        mv(svar_lv("y"), add(svar("y"), int(10))),
                        mv(svar_lv("y"), add(svar("y"), int(1))),
                    ),
                    mv(svar_lv("x"), add(svar("x"), int(1))),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        assert_eq!(ev.final_scalar_f64("y").unwrap(), 32.0); // 10+1+10+1+10
    }

    #[test]
    fn sum_reduction() {
        let p = with_domain(
            "s",
            interval(1, 100),
            with_decl(
                declset(vec![
                    decl("a", dfield(domain("s"), int32())),
                    decl("t", int32()),
                ]),
                seq(vec![
                    mv(avar("a", everywhere()), local_under(domain("s"), 1)),
                    mv(
                        svar_lv("t"),
                        fcncall("sum", vec![(int32(), ld("a", everywhere()))]),
                    ),
                ]),
            ),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        assert_eq!(ev.final_scalar_f64("t").unwrap(), 5050.0);
    }

    #[test]
    fn integer_division_truncates() {
        assert_eq!(
            apply_binop(BinOp::Div, Scalar::I32(7), Scalar::I32(2)).unwrap(),
            Scalar::I32(3)
        );
        assert_eq!(
            apply_binop(BinOp::Div, Scalar::I32(-7), Scalar::I32(2)).unwrap(),
            Scalar::I32(-3)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(apply_binop(BinOp::Div, Scalar::F64(1.0), Scalar::F64(0.0)).is_err());
        assert!(apply_binop(BinOp::Div, Scalar::I32(1), Scalar::I32(0)).is_err());
    }

    #[test]
    fn initialized_declarations() {
        let p = with_decl(
            initialized("x", float64(), f64c(2.5)),
            mv(svar_lv("x"), mul(svar("x"), f64c(4.0))),
        );
        let mut ev = Evaluator::new();
        ev.run(&p).unwrap();
        assert_eq!(ev.final_scalar_f64("x").unwrap(), 10.0);
    }
}
