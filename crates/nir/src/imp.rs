//! The imperative domain `I` (paper Figure 5, extended by `DO` from
//! Figure 6).

use std::fmt;

use crate::decl::Decl;
use crate::shape::ShapeExpr;
use crate::value::{FieldAction, Value};
use crate::Ident;

/// An assignment target: the left-hand side of one `MOVE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    SVar(Ident),
    /// An array variable specialised by a field action.
    AVar(Ident, FieldAction),
}

impl LValue {
    /// The identifier written by this target.
    pub fn ident(&self) -> &Ident {
        match self {
            LValue::SVar(id) | LValue::AVar(id, _) => id,
        }
    }

    /// The field action, for array targets.
    pub fn field_action(&self) -> Option<&FieldAction> {
        match self {
            LValue::SVar(_) => None,
            LValue::AVar(_, fa) => Some(fa),
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::SVar(id) => write!(f, "SVAR '{id}'"),
            LValue::AVar(id, fa) => write!(f, "AVAR('{id}',{fa})"),
        }
    }
}

/// One clause of a `MOVE`: under `mask`, move `src` to `dst`.
///
/// The paper's `MOVE : (V*(V*V))list -> I` moves multiple values under
/// masks; a mask of constant `.true.` is the unmasked case.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveClause {
    /// Guard; the move happens only at points where the mask is true.
    pub mask: Value,
    /// Source value.
    pub src: Value,
    /// Destination.
    pub dst: LValue,
}

impl MoveClause {
    /// An unmasked clause (mask ≡ `.true.`).
    pub fn unmasked(dst: LValue, src: Value) -> Self {
        MoveClause {
            mask: Value::Scalar(crate::value::Const::Bool(true)),
            src,
            dst,
        }
    }

    /// `true` when the mask is the constant `.true.`.
    pub fn is_unmasked(&self) -> bool {
        matches!(self.mask, Value::Scalar(crate::value::Const::Bool(true)))
    }
}

impl fmt::Display for MoveClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unmasked() {
            write!(f, "(True,({},{}))", self.src, self.dst)
        } else {
            write!(f, "({},({},{}))", self.mask, self.src, self.dst)
        }
    }
}

/// Imperative actions (paper Fig. 5, plus `DO` and `WITH_DOMAIN` from the
/// shape extensions of Fig. 6 and the worked examples of Figs. 8–10).
#[derive(Debug, Clone, PartialEq)]
pub enum Imp {
    /// `PROGRAM : I -> I` — top-level program action.
    Program(Box<Imp>),
    /// `SEQUENTIALLY : I list -> I` — sequential composition.
    Sequentially(Vec<Imp>),
    /// `CONCURRENTLY : I list -> I` — concurrent composition: the actions
    /// are independent and may run in any order or simultaneously.
    Concurrently(Vec<Imp>),
    /// `MOVE : (V*(V*V))list -> I` — move multiple values under masks.
    Move(Vec<MoveClause>),
    /// `IFTHENELSE : V*I*I -> I`.
    IfThenElse(Value, Box<Imp>, Box<Imp>),
    /// `WHILE : V*I -> I`.
    While(Value, Box<Imp>),
    /// `DO : S*I -> I` — carry out the action at each point of the shape
    /// (Fig. 6). Serial or parallel execution is a property of the shape.
    ///
    /// The `Ident` names the domain so the body can reference the running
    /// coordinates via [`Value::DoIndex`].
    Do(Ident, ShapeExpr, Box<Imp>),
    /// `WITH_DECL : D*I -> I` — execute in an environment extended with
    /// the declaration.
    WithDecl(Decl, Box<Imp>),
    /// `WITH_DOMAIN : (id*S)*I -> I` — bind a shape to a domain name for
    /// the duration of the body (used pervasively in paper Figs. 7–10).
    WithDomain(Ident, ShapeExpr, Box<Imp>),
    /// `SKIP : I` — defined as `SEQUENTIALLY nil`.
    Skip,
}

impl Imp {
    /// Sequential composition, flattening nested `SEQUENTIALLY` and
    /// dropping `SKIP`s.
    pub fn seq(actions: Vec<Imp>) -> Imp {
        let mut flat = Vec::new();
        for a in actions {
            match a {
                Imp::Skip => {}
                Imp::Sequentially(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Imp::Skip,
            1 => flat.pop().expect("len checked"),
            _ => Imp::Sequentially(flat),
        }
    }

    /// Visit every imperative node (including `self`), pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Imp)) {
        visit(self);
        match self {
            Imp::Program(b) | Imp::Do(_, _, b) | Imp::WithDecl(_, b) | Imp::WithDomain(_, _, b) => {
                b.walk(visit)
            }
            Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
                for x in xs {
                    x.walk(visit);
                }
            }
            Imp::IfThenElse(_, t, e) => {
                t.walk(visit);
                e.walk(visit);
            }
            Imp::While(_, b) => b.walk(visit),
            Imp::Move(_) | Imp::Skip => {}
        }
    }

    /// Number of `MOVE` statements anywhere in the action.
    pub fn count_moves(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |i| {
            if matches!(i, Imp::Move(_)) {
                n += 1;
            }
        });
        n
    }
}

impl fmt::Display for Imp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::write_imp(f, self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Const;

    fn mv(name: &str) -> Imp {
        Imp::Move(vec![MoveClause::unmasked(
            LValue::SVar(name.into()),
            Value::Scalar(Const::I32(1)),
        )])
    }

    #[test]
    fn seq_flattens_and_drops_skip() {
        let s = Imp::seq(vec![
            Imp::Skip,
            Imp::Sequentially(vec![mv("a"), mv("b")]),
            mv("c"),
        ]);
        match s {
            Imp::Sequentially(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected Sequentially, got {other:?}"),
        }
    }

    #[test]
    fn seq_of_nothing_is_skip() {
        assert_eq!(Imp::seq(vec![]), Imp::Skip);
        assert_eq!(Imp::seq(vec![Imp::Skip, Imp::Skip]), Imp::Skip);
    }

    #[test]
    fn seq_of_one_unwraps() {
        assert_eq!(Imp::seq(vec![mv("a")]), mv("a"));
    }

    #[test]
    fn count_moves_walks_nesting() {
        let p = Imp::Program(Box::new(Imp::seq(vec![
            mv("a"),
            Imp::IfThenElse(
                Value::Scalar(Const::Bool(true)),
                Box::new(mv("b")),
                Box::new(Imp::Skip),
            ),
        ])));
        assert_eq!(p.count_moves(), 2);
    }
}
