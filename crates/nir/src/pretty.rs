//! A pretty printer producing the paper's concrete NIR syntax.
//!
//! The output format follows the worked examples of Figures 7–10 closely:
//! `WITH_DOMAIN`, `WITH_DECL`, `SEQUENTIALLY [...]`, `MOVE[...]`, `DO(...)`.
//! Golden tests in the lowering crate compare printed programs against
//! transcriptions of the paper's figures.

use std::fmt::{self, Write as _};

use crate::imp::Imp;

/// Render an imperative action as paper-style NIR text.
pub fn print_imp(imp: &Imp) -> String {
    let mut s = String::new();
    // Writing to a String cannot fail.
    write_imp_fmt(&mut s, imp, 0).expect("string write");
    s
}

/// Write an imperative at the given indent depth (used by `Display`).
pub(crate) fn write_imp(f: &mut fmt::Formatter<'_>, imp: &Imp, depth: usize) -> fmt::Result {
    let mut s = String::new();
    write_imp_fmt(&mut s, imp, depth).expect("string write");
    f.write_str(&s)
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_imp_fmt(out: &mut String, imp: &Imp, depth: usize) -> fmt::Result {
    match imp {
        Imp::Program(body) => {
            pad(out, depth);
            out.push_str("PROGRAM(\n");
            write_imp_fmt(out, body, depth + 1)?;
            out.push(')');
        }
        Imp::Skip => {
            pad(out, depth);
            out.push_str("SKIP");
        }
        Imp::Sequentially(xs) => {
            pad(out, depth);
            out.push_str("SEQUENTIALLY\n");
            pad(out, depth);
            out.push_str("[ ");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                    let mut inner = String::new();
                    write_imp_fmt(&mut inner, x, depth + 1)?;
                    out.push_str(&inner);
                } else {
                    let mut inner = String::new();
                    write_imp_fmt(&mut inner, x, depth + 1)?;
                    out.push_str(inner.trim_start());
                }
            }
            out.push_str(" ]");
        }
        Imp::Concurrently(xs) => {
            pad(out, depth);
            out.push_str("CONCURRENTLY\n");
            pad(out, depth);
            out.push_str("[ ");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                    let mut inner = String::new();
                    write_imp_fmt(&mut inner, x, depth + 1)?;
                    out.push_str(&inner);
                } else {
                    let mut inner = String::new();
                    write_imp_fmt(&mut inner, x, depth + 1)?;
                    out.push_str(inner.trim_start());
                }
            }
            out.push_str(" ]");
        }
        Imp::Move(clauses) => {
            pad(out, depth);
            out.push_str("MOVE[");
            for (i, c) in clauses.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                    pad(out, depth + 2);
                }
                write!(out, "{c}")?;
            }
            out.push(']');
        }
        Imp::IfThenElse(c, t, e) => {
            pad(out, depth);
            writeln!(out, "IFTHENELSE({c},")?;
            write_imp_fmt(out, t, depth + 1)?;
            out.push_str(",\n");
            write_imp_fmt(out, e, depth + 1)?;
            out.push(')');
        }
        Imp::While(c, b) => {
            pad(out, depth);
            writeln!(out, "WHILE({c},")?;
            write_imp_fmt(out, b, depth + 1)?;
            out.push(')');
        }
        Imp::Do(dom, shape, body) => {
            pad(out, depth);
            writeln!(out, "DO('{dom}',{shape},")?;
            write_imp_fmt(out, body, depth + 1)?;
            out.push(')');
        }
        Imp::WithDecl(d, body) => {
            pad(out, depth);
            writeln!(out, "WITH_DECL({d},")?;
            write_imp_fmt(out, body, depth + 1)?;
            out.push(')');
        }
        Imp::WithDomain(name, shape, body) => {
            pad(out, depth);
            writeln!(out, "WITH_DOMAIN(('{name}',{shape}),")?;
            write_imp_fmt(out, body, depth + 1)?;
            out.push(')');
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn move_prints_paper_style() {
        let m = mv(avar("l", everywhere()), int(6));
        assert_eq!(
            print_imp(&m),
            "MOVE[(True,(SCALAR(integer_32,'6'),AVAR('l',everywhere)))]"
        );
    }

    #[test]
    fn with_domain_nests() {
        let p = with_domain(
            "alpha",
            interval(1, 128),
            mv(avar("l", everywhere()), int(6)),
        );
        let text = print_imp(&p);
        assert!(text.starts_with("WITH_DOMAIN(('alpha',interval(point 1,point 128)),"));
        assert!(text.contains("MOVE[(True,(SCALAR(integer_32,'6'),AVAR('l',everywhere)))]"));
    }

    #[test]
    fn sequence_brackets_items() {
        let p = seq(vec![
            mv(avar("a", everywhere()), int(1)),
            mv(avar("b", everywhere()), int(2)),
        ]);
        let text = print_imp(&p);
        assert!(text.starts_with("SEQUENTIALLY"));
        assert!(text.contains("'1'"));
        assert!(text.contains("'2'"));
    }
}
