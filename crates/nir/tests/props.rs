//! Property tests over the NIR semantic algebra: arithmetic laws the
//! evaluator must respect, array-intrinsic algebra, shape geometry, and
//! the Figure 4 loop rules against the point iterator.

use proptest::prelude::*;

use f90y_nir::array::{ArrayData, Scalar};
use f90y_nir::eval::{apply_binop, apply_unop};
use f90y_nir::loop_rules;
use f90y_nir::{BinOp, ScalarType, SectionRange, Shape, UnOp};

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        (-50i32..50).prop_map(Scalar::I32),
        (-50i64..50).prop_map(|v| Scalar::F64(v as f64 / 4.0)),
        any::<bool>().prop_map(Scalar::Bool),
    ]
}

fn arb_numeric() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        (-50i32..50).prop_map(Scalar::I32),
        (-50i64..50).prop_map(|v| Scalar::F64(v as f64 / 4.0)),
    ]
}

proptest! {
    // -----------------------------------------------------------------
    // Evaluator arithmetic laws
    // -----------------------------------------------------------------

    #[test]
    fn add_mul_max_min_commute(a in arb_numeric(), b in arb_numeric()) {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Max, BinOp::Min] {
            let x = apply_binop(op, a, b).expect("numeric");
            let y = apply_binop(op, b, a).expect("numeric");
            prop_assert_eq!(x, y, "{} must commute", op);
        }
    }

    #[test]
    fn neg_is_an_involution(a in arb_numeric()) {
        let once = apply_unop(UnOp::Neg, a).expect("numeric");
        let twice = apply_unop(UnOp::Neg, once).expect("numeric");
        prop_assert_eq!(twice, a);
    }

    #[test]
    fn abs_is_idempotent_and_nonnegative(a in arb_numeric()) {
        let x = apply_unop(UnOp::Abs, a).expect("numeric");
        prop_assert!(x.to_f64().expect("numeric") >= 0.0);
        prop_assert_eq!(apply_unop(UnOp::Abs, x).expect("numeric"), x);
    }

    #[test]
    fn relational_trichotomy(a in arb_numeric(), b in arb_numeric()) {
        let lt = apply_binop(BinOp::Lt, a, b).expect("numeric").to_bool().expect("bool");
        let eq = apply_binop(BinOp::Eq, a, b).expect("numeric").to_bool().expect("bool");
        let gt = apply_binop(BinOp::Gt, a, b).expect("numeric").to_bool().expect("bool");
        prop_assert_eq!(
            [lt, eq, gt].iter().filter(|&&x| x).count(),
            1,
            "exactly one of <, ==, > holds"
        );
    }

    #[test]
    fn integer_mod_matches_truncated_division(a in -60i32..60, p in 1i32..12) {
        let q = apply_binop(BinOp::Div, Scalar::I32(a), Scalar::I32(p)).expect("ok");
        let m = apply_binop(BinOp::Mod, Scalar::I32(a), Scalar::I32(p)).expect("ok");
        let (q, m) = (q.to_i64().expect("int"), m.to_i64().expect("int"));
        prop_assert_eq!(q * p as i64 + m, a as i64, "a = q*p + MOD(a,p)");
        prop_assert!(m.abs() < p as i64);
    }

    #[test]
    fn logical_ops_require_logicals(a in arb_scalar(), b in arb_scalar()) {
        let r = apply_binop(BinOp::And, a, b);
        let both_bool = matches!((a, b), (Scalar::Bool(_), Scalar::Bool(_)));
        prop_assert_eq!(r.is_ok(), both_bool);
    }

    // -----------------------------------------------------------------
    // Array intrinsics
    // -----------------------------------------------------------------

    #[test]
    fn cshift_roundtrips(
        data in proptest::collection::vec(-100i32..100, 1..40),
        shift in -50i64..50,
    ) {
        let n = data.len();
        let arr = ArrayData::from_vec(
            vec![(1, n as i64)],
            ScalarType::Integer32,
            data.iter().map(|&v| Scalar::I32(v)).collect(),
        )
        .expect("well-formed");
        let there = arr.cshift(0, shift).expect("in range");
        let back = there.cshift(0, -shift).expect("in range");
        prop_assert_eq!(back, arr.clone());
        // Shifting by a multiple of n is the identity.
        let full = arr.cshift(0, n as i64 * shift.signum()).expect("in range");
        prop_assert_eq!(full, arr);
    }

    #[test]
    fn cshift_preserves_multiset(
        data in proptest::collection::vec(-100i32..100, 1..40),
        shift in -50i64..50,
    ) {
        let n = data.len();
        let arr = ArrayData::from_vec(
            vec![(1, n as i64)],
            ScalarType::Integer32,
            data.iter().map(|&v| Scalar::I32(v)).collect(),
        )
        .expect("well-formed");
        let shifted = arr.cshift(0, shift).expect("in range");
        let mut a: Vec<i64> = arr.as_slice().iter().map(|s| s.to_i64().unwrap()).collect();
        let mut b: Vec<i64> = shifted.as_slice().iter().map(|s| s.to_i64().unwrap()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn eoshift_composition_loses_at_the_ends(
        data in proptest::collection::vec(1i32..100, 2..30),
        shift in 1i64..10,
    ) {
        let n = data.len() as i64;
        let arr = ArrayData::from_vec(
            vec![(1, n)],
            ScalarType::Integer32,
            data.iter().map(|&v| Scalar::I32(v)).collect(),
        )
        .expect("well-formed");
        let boundary = Scalar::I32(0);
        let out = arr
            .eoshift(0, shift, boundary)
            .expect("in range")
            .eoshift(0, -shift, boundary)
            .expect("in range");
        // Positive then negative shift: the first `shift` positions are
        // shifted off the end and come back boundary-filled; the rest
        // survive (y[i] = x[i+s] ⇒ z[i] = y[i-s] = x[i] for i ≥ s).
        let k = shift.min(n) as usize;
        for (i, s) in out.as_slice().iter().enumerate() {
            let expect = if i < k { 0 } else { data[i] };
            prop_assert_eq!(s.to_i64().unwrap(), expect as i64, "index {}", i);
        }
    }

    #[test]
    fn reductions_agree_with_std(
        data in proptest::collection::vec(-100i32..100, 1..40),
    ) {
        let arr = ArrayData::from_vec(
            vec![(1, data.len() as i64)],
            ScalarType::Integer32,
            data.iter().map(|&v| Scalar::I32(v)).collect(),
        )
        .expect("well-formed");
        prop_assert_eq!(arr.sum().unwrap(), data.iter().map(|&v| v as f64).sum::<f64>());
        prop_assert_eq!(
            arr.maxval().unwrap(),
            data.iter().copied().max().unwrap() as f64
        );
        prop_assert_eq!(
            arr.minval().unwrap(),
            data.iter().copied().min().unwrap() as f64
        );
    }

    // -----------------------------------------------------------------
    // Shapes and Figure 4
    // -----------------------------------------------------------------

    #[test]
    fn loop_rules_expand_in_point_iterator_order(
        extents in proptest::collection::vec((1i64..5, -2i64..3), 1..4),
    ) {
        let dims: Vec<Shape> = extents
            .iter()
            .map(|&(len, lo)| Shape::SerialInterval(lo, lo + len - 1))
            .collect();
        let s = Shape::Product(dims);
        let via_rules = loop_rules::expand(&s);
        let via_points: Vec<Vec<i64>> = s.points().collect();
        prop_assert_eq!(via_rules, via_points);
    }

    #[test]
    fn grid_layout_bounds_roundtrip(extents in proptest::collection::vec(1i64..9, 1..4)) {
        let s = Shape::grid(&extents);
        let bounds = s.array_bounds();
        prop_assert_eq!(bounds.len(), extents.len());
        for ((lo, hi), e) in bounds.iter().zip(&extents) {
            prop_assert_eq!(*lo, 1);
            prop_assert_eq!(*hi, *e);
        }
    }

    #[test]
    fn section_len_counts_contained_points(
        lo in 1i64..20, len in 0i64..30, step in 1i64..5,
    ) {
        let s = SectionRange::strided(lo, lo + len, step);
        let counted = (lo..=lo + len).filter(|&i| s.contains(i)).count();
        prop_assert_eq!(s.len(), counted);
    }
}
