//! # f90y-accel — an accelerator-style third target
//!
//! The paper's §5.3 argues the prototype's value is how cheaply it
//! retargets: the CM/5 port "retains the majority of its structure".
//! This crate pushes the claim past the paper's two machines to a third
//! execution model — a host-directed accelerator in the mold of
//! ForOpenCL's Fortran-to-OpenCL translation (PAPERS.md): array
//! statements become **kernel launches** over a device memory region,
//! and every host↔device byte is an explicit **transfer event** on the
//! simulated clock.
//!
//! The same compiled host program drives all three targets through
//! [`f90y_backend::Machine`]; nothing upstream of the machine changes.
//! What distinguishes this target is entirely in its capability
//! manifest ([`f90y_hal::ACCEL`]) and its accounting:
//!
//! * [`config`] — [`AccelConfig`]: compute units and the manifest cost
//!   table (device clock, launch overhead, bus transfer costs);
//! * [`machine`] — [`Accel`]: device arrays, kernel launches staged
//!   through the shared PEAC simulator, device-side shifts/reductions,
//!   and the transfer ledger ([`AccelStats`]) in which — unlike the
//!   CM/2's free front-end peek — **every** host read or write of
//!   device memory is a charged DMA transfer.
//!
//! Data is bit-identical to the other targets by construction (shared
//! arithmetic, shared shift reference, canonical reduction order); the
//! three-way differential suite asserts it end to end.
//!
//! ## Example
//!
//! ```
//! use f90y_accel::{run, AccelConfig};
//!
//! let unit = f90y_frontend::parse("REAL A(32,32), S\nA = A + 1.0\nS = SUM(A)\n")?;
//! let nir = f90y_lowering::lower(&unit)?;
//! let optimized = f90y_transform::optimize(&nir)?;
//! let compiled = f90y_backend::compile(&optimized)?;
//!
//! let (run, stats) = run(&compiled, &AccelConfig::new(16))?;
//! assert_eq!(run.final_scalar("s")?, 1024.0);
//! assert_eq!(stats.kernel_launches, 1);
//! assert!(stats.h2d_transfers + stats.d2h_transfers > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod machine;

pub use config::AccelConfig;
pub use machine::{Accel, AccelStats, DeviceId};

use f90y_backend::fe::{HostExecutor, HostRun};
use f90y_backend::{BackendError, CompiledProgram};

/// Execute a compiled program on a fresh accelerator; returns the
/// host-run results and the machine statistics.
///
/// # Errors
///
/// Fails on host-execution or runtime errors.
pub fn run(
    compiled: &CompiledProgram,
    config: &AccelConfig,
) -> Result<(HostRun, AccelStats), BackendError> {
    let mut machine = Accel::new(config.clone());
    let run = HostExecutor::new(&mut machine).run(compiled)?;
    let stats = machine.stats();
    Ok((run, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> CompiledProgram {
        let unit = f90y_frontend::parse(src).expect("parses");
        let nir = f90y_lowering::lower(&unit).expect("lowers");
        let optimized = f90y_transform::optimize(&nir).expect("optimizes");
        f90y_backend::compile(&optimized).expect("compiles")
    }

    #[test]
    fn whole_program_matches_the_cm2() {
        let compiled = compile(
            "
REAL v(32,32), t(32,32), s
FORALL (i=1:32, j=1:32) v(i,j) = MOD(i+j, 7)
DO step = 1, 3
  t = CSHIFT(v, DIM=1, SHIFT=1)
  v = 0.5*(v + t) + 0.25*v*t
END DO
s = SUM(v)
",
        );
        let (accel_run, stats) = run(&compiled, &AccelConfig::new(16)).expect("accel run");
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(16));
        let cm_run = f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .expect("cm2 run");
        assert_eq!(
            accel_run.final_array("v").unwrap(),
            cm_run.final_array("v").unwrap()
        );
        assert_eq!(
            accel_run.final_scalar("s").unwrap().to_bits(),
            cm_run.final_scalar("s").unwrap().to_bits()
        );
        assert!(stats.kernel_launches > 0);
        assert!(stats.comm_calls > 0);
        // The finals read-back itself crossed the bus.
        assert!(stats.d2h_transfers > 0);
        stats.verify().expect("stats invariants");
    }

    #[test]
    fn gflops_are_positive_and_below_peak() {
        let compiled = compile("REAL a(64,64)\na = a + 1.0\n");
        let config = AccelConfig::new(64);
        let (_, stats) = run(&compiled, &config).expect("runs");
        assert!(stats.gflops(&config) > 0.0);
        assert!(stats.gflops(&config) < config.peak_gflops());
    }
}
