//! Device memory, kernel launches, transfers and accounting.
//!
//! The execution model is ForOpenCL's (PAPERS.md): the host program
//! runs on the front end and *directs* the device — every array lives in
//! device memory, every elementwise computation is a kernel launch, and
//! every byte the host touches crosses the host↔device bus as an
//! explicit transfer event on the simulated clock. That last point is
//! the deliberate departure from the CM targets: the CM/2 front end can
//! peek at PE memory as a free harness affordance, but on an
//! accelerator nothing crosses the bus free of charge — [`Accel::read`]
//! is a D2H transfer, [`Accel::write`] and `alloc_from` are H2D
//! transfers, and the differential suite runs with those costs on the
//! clock.
//!
//! Data is exact and shared with the CM/2 machine model: kernels stage
//! device arrays through the PEAC simulator (`f90y_peac::sim`), shifts
//! use the reference [`f90y_cm2::runtime::shift_data`], and reductions
//! fold in canonical element order — so finals are bit-identical across
//! all three targets by construction, which `tests/target_differential`
//! asserts.

use std::cell::RefCell;
use std::collections::HashMap;

use f90y_backend::machine::Machine;
use f90y_cm2::runtime::shift_data;
use f90y_cm2::{Cm2Error, ReduceOp};
use f90y_obs::trace::{Actor, ClockDomain, Trace, TraceEvent as FlightEvent};
use f90y_peac::costs::{body_cycles, MEM_CYCLES, VOP_CYCLES};
use f90y_peac::isa::{Instr, Routine, VLEN};
use f90y_peac::sim::{run_routine, NodeMemory};

use crate::config::AccelConfig;

/// Handle to an array living in (simulated) device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

#[derive(Debug, Clone)]
struct DeviceArray {
    dims: Vec<usize>,
    lower: Vec<i64>,
    data: Vec<f64>,
}

/// Cycle, flop, launch and transfer accounting for one simulated run.
///
/// Device cycles split by what the device was doing — kernel bodies,
/// launch overhead, device-side communication, bus transfers — and sum
/// to the device's elapsed time ([`AccelStats::device_cycles`]); host
/// cycles accumulate separately at the host clock and serialise with
/// device time, the same conservative choice the CM/2 model makes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelStats {
    /// Device cycles spent executing kernel bodies.
    pub kernel_cycles: u64,
    /// Device cycles of kernel-launch overhead (queue submission,
    /// argument binding).
    pub launch_cycles: u64,
    /// Device cycles in device-side communication and reductions
    /// (shifts, gathers, combine trees, coordinate generation).
    pub comm_cycles: u64,
    /// Device cycles moving bytes over the host↔device bus.
    pub transfer_cycles: u64,
    /// Host (front end) cycles.
    pub host_cycles: u64,
    /// Floating-point operations executed device-wide.
    pub flops: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Host→device transfer calls.
    pub h2d_transfers: u64,
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Device→host transfer calls.
    pub d2h_transfers: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Device-side communication calls (shifts and gathers).
    pub comm_calls: u64,
    /// Reduction calls.
    pub reductions: u64,
}

impl AccelStats {
    /// Total device cycles (the device's elapsed time).
    pub fn device_cycles(&self) -> u64 {
        self.kernel_cycles + self.launch_cycles + self.comm_cycles + self.transfer_cycles
    }

    /// Elapsed seconds: device time plus host time, serialised.
    pub fn elapsed_seconds(&self, config: &AccelConfig) -> f64 {
        self.device_cycles() as f64 / config.costs.device_clock_hz
            + self.host_cycles as f64 / config.costs.host_clock_hz
    }

    /// Sustained GFLOPS over the run.
    pub fn gflops(&self, config: &AccelConfig) -> f64 {
        let secs = self.elapsed_seconds(config);
        if secs == 0.0 {
            0.0
        } else {
            self.flops as f64 / secs / 1e9
        }
    }

    /// Check internal consistency: transfer byte counts agree with the
    /// call counts' minimum sizes, and categories are self-consistent.
    ///
    /// # Errors
    ///
    /// Returns which invariant failed.
    pub fn verify(&self) -> Result<(), String> {
        if self.h2d_bytes < self.h2d_transfers * 8 {
            return Err(format!(
                "h2d bytes ({}) below one element per transfer ({})",
                self.h2d_bytes, self.h2d_transfers
            ));
        }
        if self.d2h_bytes < self.d2h_transfers * 8 {
            return Err(format!(
                "d2h bytes ({}) below one element per transfer ({})",
                self.d2h_bytes, self.d2h_transfers
            ));
        }
        if self.kernel_launches > 0 && self.launch_cycles == 0 {
            return Err("kernels launched but no launch overhead charged".into());
        }
        Ok(())
    }
}

/// Interior-mutable accounting: [`Accel::read`] is `&self` by the
/// [`Machine`] trait's signature but must still put a D2H transfer on
/// the clock, so stats and the flight recorder live behind a `RefCell`.
#[derive(Debug, Default)]
struct AccelState {
    stats: AccelStats,
    flight: Option<Trace>,
}

/// A simulated accelerator: configuration, device memory, accounting.
#[derive(Debug)]
pub struct Accel {
    config: AccelConfig,
    arrays: Vec<Option<DeviceArray>>,
    coord_cache: HashMap<(Vec<usize>, Vec<i64>, usize), DeviceId>,
    state: RefCell<AccelState>,
}

impl Accel {
    /// A device with the given configuration.
    pub fn new(config: AccelConfig) -> Self {
        Accel {
            config,
            arrays: Vec::new(),
            coord_cache: HashMap::new(),
            state: RefCell::new(AccelState::default()),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &AccelConfig {
        &self.config
    }

    /// Accounting so far.
    pub fn stats(&self) -> AccelStats {
        self.state.borrow().stats
    }

    /// Start the flight recorder (clears any previous flight trace).
    /// Events are stamped with the device's deterministic cycle clock.
    pub fn enable_flight_recorder(&mut self) {
        self.state.borrow_mut().flight = Some(Trace::new(ClockDomain::Cycle));
    }

    /// Take ownership of the flight-recorder trace, leaving it disabled.
    pub fn take_flight(&mut self) -> Option<Trace> {
        self.state.borrow_mut().flight.take()
    }

    /// The flight recorder's clock: all simulated cycles charged so far
    /// (device cycles plus host cycles).
    fn flight_clock(&self) -> u64 {
        let s = &self.state.borrow().stats;
        s.device_cycles() + s.host_cycles
    }

    /// Record a phase slice spanning from `start` (a clock captured
    /// before charging) to the current clock. Because every cycle is
    /// charged between a `flight_clock()` capture and the matching
    /// `flight_phase`, phases tile the clock with no gaps.
    fn flight_phase(&self, actor: Actor, label: &str, start: u64) {
        let end = self.flight_clock();
        if let Some(t) = &mut self.state.borrow_mut().flight {
            t.record(FlightEvent::Phase {
                actor,
                label: label.to_string(),
                start,
                end,
            });
        }
    }

    /// The per-unit kernel loop trip count for `total` elements:
    /// elements divide blockwise over the compute units, and each unit
    /// strides its share in `VLEN`-lane vectors (the same virtual-
    /// subgrid looping the CM targets use, with units in place of PEs).
    fn iterations(&self, total: usize) -> u64 {
        let per_unit = total.div_ceil(self.config.compute_units);
        per_unit.div_ceil(VLEN) as u64
    }

    fn array(&self, id: DeviceId) -> Result<&DeviceArray, Cm2Error> {
        self.arrays
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))
    }

    fn array_mut(&mut self, id: DeviceId) -> Result<&mut DeviceArray, Cm2Error> {
        self.arrays
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))
    }

    /// Allocate a zeroed device array (device-side, nothing crosses the
    /// bus).
    pub fn alloc_device(&mut self, dims: &[usize], lower: &[i64]) -> DeviceId {
        let total = dims.iter().product();
        let id = DeviceId(self.arrays.len());
        self.arrays.push(Some(DeviceArray {
            dims: dims.to_vec(),
            lower: lower.to_vec(),
            data: vec![0.0; total],
        }));
        id
    }

    /// Charge one host→device transfer of `elems` elements.
    fn charge_h2d(&self, elems: usize) {
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.transfer_cycles += self.config.costs.transfer_setup_cycles
                + elems as u64 * self.config.costs.transfer_cycles_per_elem;
            s.h2d_transfers += 1;
            s.h2d_bytes += elems as u64 * 8;
        }
        self.flight_phase(Actor::Host, "h2d", t0);
    }

    /// Charge one device→host transfer of `elems` elements.
    fn charge_d2h(&self, elems: usize) {
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.transfer_cycles += self.config.costs.transfer_setup_cycles
                + elems as u64 * self.config.costs.transfer_cycles_per_elem;
            s.d2h_transfers += 1;
            s.d2h_bytes += elems as u64 * 8;
        }
        self.flight_phase(Actor::Host, "d2h", t0);
    }

    /// Launch a kernel: stage the device arrays through the PEAC
    /// simulator (the exact arithmetic every target executes), charge
    /// launch overhead plus the per-unit loop cost.
    ///
    /// # Errors
    ///
    /// Fails on stale handles, mismatched extents or PEAC faults — the
    /// same contract, with the same messages, as the CM/2 dispatch.
    pub fn launch(
        &mut self,
        routine: &Routine,
        ptr_args: &[DeviceId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        if ptr_args.is_empty() {
            return Err(Cm2Error::Runtime(
                "dispatch needs at least one array argument".into(),
            ));
        }
        let total = self.array(ptr_args[0])?.data.len();
        for &id in ptr_args {
            if self.array(id)?.data.len() != total {
                return Err(Cm2Error::Runtime(format!(
                    "dispatch arguments disagree on element count \
                     ({} vs {total})",
                    self.array(id)?.data.len()
                )));
            }
        }
        // Stage exactly as the CM/2 does: an array passed through
        // several pointer arguments shares one buffer, as it shares one
        // region of device memory.
        let mut mem = NodeMemory::new();
        let mut base_of: HashMap<DeviceId, usize> = HashMap::new();
        let mut bases = Vec::with_capacity(ptr_args.len());
        for &id in ptr_args {
            let base = match base_of.get(&id) {
                Some(&b) => b,
                None => {
                    let data = self.array(id)?.data.clone();
                    let b = mem.alloc(&data);
                    base_of.insert(id, b);
                    b
                }
            };
            bases.push(base);
        }
        run_routine(routine, &mut mem, &bases, scalar_args, total)?;
        for (&id, &base) in base_of.iter() {
            let out = mem.read(base, total);
            self.array_mut(id)?.data.copy_from_slice(&out);
        }

        let iters = self.iterations(total);
        let nargs = (routine.nargs_ptr() + routine.nargs_scalar()) as u64;
        let phase = format!("kernel.{}", routine.name());
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.launch_cycles += self.config.costs.kernel_launch_cycles
                + self.config.costs.launch_per_arg_cycles * nargs;
            s.kernel_cycles += body_cycles(routine.body()) * iters;
            s.kernel_launches += 1;
            let flops_per_elem: u64 = routine.body().iter().map(Instr::flops_per_elem).sum();
            s.flops += flops_per_elem * total as u64;
        }
        self.flight_phase(Actor::Machine, &phase, t0);
        Ok(())
    }

    fn shift(
        &mut self,
        src: DeviceId,
        axis: usize,
        shift: i64,
        boundary: Option<f64>,
    ) -> Result<DeviceId, Cm2Error> {
        let kind = if boundary.is_none() {
            "cshift"
        } else {
            "eoshift"
        };
        let (dims, lower, shifted) = {
            let arr = self.array(src)?;
            if axis >= arr.dims.len() {
                return Err(Cm2Error::Runtime(format!(
                    "{kind} axis {axis} out of range for rank {}",
                    arr.dims.len()
                )));
            }
            let shifted = shift_data(&arr.data, &arr.dims, axis, shift, boundary);
            (arr.dims.clone(), arr.lower.clone(), shifted)
        };
        let total = shifted.len();
        let id = self.alloc_device(&dims, &lower);
        self.array_mut(id)?.data = shifted;
        // Device-to-device: a structured copy kernel, no bus traffic.
        let iters = self.iterations(total);
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.comm_cycles += self.config.costs.comm_call_cycles + 2 * iters * MEM_CYCLES;
            s.comm_calls += 1;
        }
        self.flight_phase(Actor::Machine, "shift", t0);
        Ok(id)
    }
}

impl Machine for Accel {
    type Id = DeviceId;

    fn alloc_with_bounds(&mut self, dims: &[usize], lower: &[i64]) -> DeviceId {
        self.alloc_device(dims, lower)
    }

    fn alloc_from(&mut self, dims: &[usize], data: Vec<f64>) -> DeviceId {
        let total: usize = dims.iter().product();
        assert_eq!(data.len(), total, "data length must match extents");
        let id = DeviceId(self.arrays.len());
        self.arrays.push(Some(DeviceArray {
            dims: dims.to_vec(),
            lower: vec![1; dims.len()],
            data,
        }));
        self.charge_h2d(total);
        id
    }

    fn free(&mut self, id: DeviceId) -> Result<(), Cm2Error> {
        let slot = self
            .arrays
            .get_mut(id.0)
            .ok_or_else(|| Cm2Error::Runtime(format!("unknown array {id:?}")))?;
        if slot.take().is_none() {
            return Err(Cm2Error::Runtime(format!("double free of {id:?}")));
        }
        Ok(())
    }

    fn read(&self, id: DeviceId) -> Result<Vec<f64>, Cm2Error> {
        let data = self.array(id)?.data.clone();
        self.charge_d2h(data.len());
        Ok(data)
    }

    fn write(&mut self, id: DeviceId, data: &[f64]) -> Result<(), Cm2Error> {
        let arr = self.array_mut(id)?;
        if arr.data.len() != data.len() {
            return Err(Cm2Error::Runtime(format!(
                "write of {} elements into array of {}",
                data.len(),
                arr.data.len()
            )));
        }
        arr.data.copy_from_slice(data);
        self.charge_h2d(data.len());
        Ok(())
    }

    fn dispatch(
        &mut self,
        routine: &Routine,
        ptr_args: &[DeviceId],
        scalar_args: &[f64],
    ) -> Result<(), Cm2Error> {
        self.launch(routine, ptr_args, scalar_args)
    }

    fn cshift(&mut self, src: DeviceId, axis: usize, shift: i64) -> Result<DeviceId, Cm2Error> {
        self.shift(src, axis, shift, None)
    }

    fn eoshift(
        &mut self,
        src: DeviceId,
        axis: usize,
        shift: i64,
        boundary: f64,
    ) -> Result<DeviceId, Cm2Error> {
        self.shift(src, axis, shift, Some(boundary))
    }

    fn reduce(&mut self, src: DeviceId, op: ReduceOp) -> Result<f64, Cm2Error> {
        // Canonical element order, exactly as the CM/2 folds (and as
        // the CM/5 combine trees reproduce): bit-identical results.
        let (value, total) = {
            let arr = self.array(src)?;
            let v = match op {
                ReduceOp::Sum => arr.data.iter().sum(),
                ReduceOp::Max => arr.data.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                ReduceOp::Min => arr.data.iter().copied().fold(f64::INFINITY, f64::min),
            };
            (v, arr.data.len())
        };
        let iters = self.iterations(total);
        let units = self.config.compute_units;
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.comm_cycles += self.config.costs.comm_call_cycles
                + iters * (MEM_CYCLES + VOP_CYCLES)
                + u64::from(units.max(2).trailing_zeros()) * VOP_CYCLES;
            s.reductions += 1;
        }
        self.flight_phase(Actor::Machine, "reduce", t0);
        // The scalar result crosses the bus to the host.
        self.charge_d2h(1);
        Ok(value)
    }

    fn coordinates(&mut self, dims: &[usize], lower: &[i64], axis: usize) -> DeviceId {
        let key = (dims.to_vec(), lower.to_vec(), axis);
        if let Some(&id) = self.coord_cache.get(&key) {
            return id;
        }
        let total: usize = dims.iter().product();
        let stride: usize = dims[axis + 1..].iter().product();
        let extent = dims[axis];
        let mut data = Vec::with_capacity(total);
        for flat in 0..total {
            let coord = (flat / stride) % extent;
            data.push((lower[axis] + coord as i64) as f64);
        }
        let iters = self.iterations(total);
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.comm_cycles += self.config.costs.comm_call_cycles + iters * (VOP_CYCLES + MEM_CYCLES);
            s.comm_calls += 1;
        }
        self.flight_phase(Actor::Machine, "coord", t0);
        let id = self.alloc_device(dims, lower);
        self.array_mut(id).expect("array just allocated").data = data;
        self.coord_cache.insert(key, id);
        id
    }

    fn charge_router_move(&mut self, id: DeviceId) -> Result<(), Cm2Error> {
        // A general gather: arbitrary addressing defeats coalescing, so
        // each unit's share pays the manifest's gather factor per
        // element on top of the call overhead.
        let total = self.array(id)?.data.len();
        let per_unit = total.div_ceil(self.config.compute_units) as u64;
        let t0 = self.flight_clock();
        {
            let s = &mut self.state.borrow_mut().stats;
            s.comm_cycles +=
                self.config.costs.comm_call_cycles + per_unit * self.config.costs.gather_factor;
            s.comm_calls += 1;
        }
        self.flight_phase(Actor::Machine, "gather", t0);
        Ok(())
    }

    fn charge_host_ops(&mut self, n: u64) {
        let t0 = self.flight_clock();
        self.state.borrow_mut().stats.host_cycles += n * self.config.costs.host_op_cycles;
        self.flight_phase(Actor::Host, "host", t0);
    }

    fn host_read_elem(&mut self, id: DeviceId, flat: usize) -> Result<f64, Cm2Error> {
        let arr = self.array(id)?;
        let v = *arr
            .data
            .get(flat)
            .ok_or_else(|| Cm2Error::Runtime(format!("element {flat} out of range")))?;
        let t0 = self.flight_clock();
        self.state.borrow_mut().stats.host_cycles += self.config.costs.host_op_cycles;
        self.flight_phase(Actor::Host, "host", t0);
        self.charge_d2h(1);
        Ok(v)
    }

    fn host_write_elem(&mut self, id: DeviceId, flat: usize, v: f64) -> Result<(), Cm2Error> {
        let t0 = self.flight_clock();
        self.state.borrow_mut().stats.host_cycles += self.config.costs.host_op_cycles;
        self.flight_phase(Actor::Host, "host", t0);
        self.charge_h2d(1);
        let arr = self.array_mut(id)?;
        let slot = arr
            .data
            .get_mut(flat)
            .ok_or_else(|| Cm2Error::Runtime(format!("element {flat} out of range")))?;
        *slot = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_peac::isa::{Mem, Operand, VReg};

    fn device() -> Accel {
        Accel::new(AccelConfig::new(16))
    }

    fn add_one_routine() -> Routine {
        Routine::new(
            "inc",
            2,
            0,
            vec![
                Instr::Fimmv {
                    value: 1.0,
                    dst: VReg(1),
                },
                Instr::Flodv {
                    src: Mem::arg(0),
                    dst: VReg(0),
                    overlapped: false,
                },
                Instr::Faddv {
                    a: Operand::V(VReg(0)),
                    b: Operand::V(VReg(1)),
                    dst: VReg(2),
                },
                Instr::Fstrv {
                    src: VReg(2),
                    dst: Mem::arg(1),
                    overlapped: false,
                },
            ],
        )
        .expect("valid routine")
    }

    #[test]
    fn launch_computes_and_charges() {
        let mut dev = device();
        let a = dev.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
        let b = dev.alloc(&[64]);
        dev.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        let out = dev.read(b).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64 + 1.0);
        }
        let s = dev.stats();
        assert_eq!(s.kernel_launches, 1);
        assert!(s.kernel_cycles > 0);
        assert!(s.launch_cycles > 0);
        assert_eq!(s.flops, 64);
        s.verify().expect("stats invariants");
    }

    #[test]
    fn every_host_touch_is_a_transfer() {
        let mut dev = device();
        // alloc_from = H2D; read = D2H; write = H2D; element access =
        // one-element transfers. Nothing crosses the bus free.
        let a = dev.alloc_from(&[32], vec![0.5; 32]);
        assert_eq!(dev.stats().h2d_transfers, 1);
        assert_eq!(dev.stats().h2d_bytes, 32 * 8);
        dev.read(a).unwrap();
        assert_eq!(dev.stats().d2h_transfers, 1);
        assert_eq!(dev.stats().d2h_bytes, 32 * 8);
        dev.write(a, &[1.0; 32]).unwrap();
        assert_eq!(dev.stats().h2d_transfers, 2);
        dev.host_read_elem(a, 3).unwrap();
        assert_eq!(dev.stats().d2h_transfers, 2);
        assert_eq!(dev.stats().d2h_bytes, 32 * 8 + 8);
        dev.host_write_elem(a, 0, 2.0).unwrap();
        assert_eq!(dev.stats().h2d_transfers, 3);
        assert!(dev.stats().transfer_cycles > 0);
        dev.stats().verify().expect("stats invariants");
    }

    #[test]
    fn device_data_plane_matches_the_cm2_bit_for_bit() {
        // Same routine, same shifts, same reductions on both machines:
        // finals must agree to the bit (the three-way differential's
        // foundation, in miniature).
        let mut dev = device();
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(16));
        let init: Vec<f64> = (0..60).map(|i| (i as f64).sin()).collect();
        let da = dev.alloc_from(&[6, 10], init.clone());
        let db = dev.alloc(&[6, 10]);
        let ca = cm.alloc_from(&[6, 10], init);
        let cb = cm.alloc(&[6, 10]);
        dev.dispatch(&add_one_routine(), &[da, db], &[]).unwrap();
        cm.dispatch(&add_one_routine(), &[ca, cb], &[]).unwrap();
        let ds = dev.cshift(db, 1, -3).unwrap();
        let cs = cm.cshift(cb, 1, -3).unwrap();
        assert_eq!(dev.read(ds).unwrap(), cm.read(cs).unwrap());
        let de = dev.eoshift(db, 0, 2, -1.5).unwrap();
        let ce = cm.eoshift(cb, 0, 2, -1.5).unwrap();
        assert_eq!(dev.read(de).unwrap(), cm.read(ce).unwrap());
        for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
            assert_eq!(
                dev.reduce(db, op).unwrap().to_bits(),
                cm.reduce(cb, op).unwrap().to_bits()
            );
        }
        let dc = Machine::coordinates(&mut dev, &[6, 10], &[1, 1], 0);
        let cc = cm.coordinates(&[6, 10], &[1, 1], 0);
        assert_eq!(dev.read(dc).unwrap(), cm.read(cc).unwrap());
    }

    #[test]
    fn dispatch_contract_matches_the_cm2() {
        let mut dev = device();
        let a = dev.alloc(&[64]);
        let b = dev.alloc(&[32]);
        let err = dev
            .dispatch(&add_one_routine(), &[a, b], &[])
            .expect_err("mismatched extents");
        assert!(err.to_string().contains("disagree on element count"));
        let err = dev
            .dispatch(&add_one_routine(), &[], &[])
            .expect_err("no array args");
        assert!(err.to_string().contains("at least one array argument"));
    }

    #[test]
    fn free_invalidates_handles() {
        let mut dev = device();
        let a = dev.alloc(&[8]);
        dev.free(a).unwrap();
        assert!(dev.read(a).is_err());
        let err = dev.free(a).expect_err("double free");
        assert!(err.to_string().contains("double free"));
    }

    #[test]
    fn more_units_fewer_kernel_cycles() {
        let mut small = Accel::new(AccelConfig::new(4));
        let mut large = Accel::new(AccelConfig::new(64));
        for dev in [&mut small, &mut large] {
            let a = dev.alloc(&[4096]);
            let b = dev.alloc(&[4096]);
            dev.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        }
        assert!(small.stats().kernel_cycles > large.stats().kernel_cycles);
        assert_eq!(small.stats().flops, large.stats().flops);
    }

    #[test]
    fn coordinates_are_cached_and_charged_once() {
        let mut dev = device();
        let c1 = Machine::coordinates(&mut dev, &[4, 4], &[1, 1], 1);
        let after = dev.stats().comm_cycles;
        let c2 = Machine::coordinates(&mut dev, &[4, 4], &[1, 1], 1);
        assert_eq!(c1, c2);
        assert_eq!(dev.stats().comm_cycles, after);
    }

    #[test]
    fn flight_phases_tile_the_device_clock() {
        use f90y_obs::trace::TraceEvent as E;
        let mut dev = device();
        dev.enable_flight_recorder();
        let a = dev.alloc_from(&[64], (0..64).map(|i| i as f64).collect());
        let b = dev.alloc(&[64]);
        dev.dispatch(&add_one_routine(), &[a, b], &[]).unwrap();
        dev.cshift(a, 0, 1).unwrap();
        dev.reduce(a, ReduceOp::Sum).unwrap();
        dev.charge_host_ops(2);
        let trace = dev.take_flight().unwrap();
        let phases: Vec<(String, u64, u64)> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                E::Phase {
                    label, start, end, ..
                } => Some((label.clone(), *start, *end)),
                _ => None,
            })
            .collect();
        let labels: Vec<&str> = phases.iter().map(|p| p.0.as_str()).collect();
        assert_eq!(
            labels,
            ["h2d", "kernel.inc", "shift", "reduce", "d2h", "host"]
        );
        assert_eq!(phases[0].1, 0);
        for w in phases.windows(2) {
            assert_eq!(w[1].1, w[0].2, "phase {} starts off-clock", w[1].0);
        }
        let s = dev.stats();
        assert_eq!(
            phases.last().unwrap().2,
            s.device_cycles() + s.host_cycles,
            "last phase ends at the final clock"
        );
    }
}
