//! Configuration of the simulated accelerator.

use f90y_hal::AccelCosts;

/// Machine constants of an accelerator partition.
///
/// All numbers come from the accelerator capability manifest
/// ([`f90y_hal::ACCEL`]): a 100 MHz device behind a ~50 MB/s host bus,
/// paying explicit kernel-launch and DMA-setup overheads. "Node" here is
/// a device compute unit — the manifest's unit of independent progress —
/// and the per-kernel subgrid loop divides elements over the units the
/// way the CM/2 divides them over PEs.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// Number of device compute units (a power of two, per the
    /// manifest's node constraints).
    pub compute_units: usize,
    /// The cost table (from the manifest; a copy so tests can perturb
    /// it without a second registry).
    pub costs: AccelCosts,
}

impl AccelConfig {
    /// An accelerator with `compute_units` units and the manifest cost
    /// table.
    ///
    /// # Panics
    ///
    /// Panics when the unit count violates the manifest's node
    /// constraints (a power of two in the manifest's range; the session
    /// layer rejects this with a typed error before it can reach here).
    pub fn new(compute_units: usize) -> Self {
        if let Err(msg) = f90y_hal::ACCEL.check_nodes(compute_units) {
            panic!("{msg}");
        }
        AccelConfig {
            compute_units,
            costs: f90y_hal::ACCEL
                .accel
                .expect("Accel manifest has a cost block"),
        }
    }

    /// Peak GFLOPS (one chained multiply-add per unit per device cycle).
    pub fn peak_gflops(&self) -> f64 {
        self.compute_units as f64 * 2.0 * self.costs.device_clock_hz / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_backed_constants() {
        let c = AccelConfig::new(64);
        assert_eq!(c.compute_units, 64);
        assert_eq!(c.costs.device_clock_hz.to_bits(), 100.0e6_f64.to_bits());
        assert_eq!(c.costs.kernel_launch_cycles, 600);
        assert_eq!(c.costs.transfer_setup_cycles, 2000);
        assert_eq!(c.costs.transfer_cycles_per_elem, 16);
        // 64 units × 200 MFLOPS.
        assert!((c.peak_gflops() - 12.8).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        AccelConfig::new(48);
    }

    #[test]
    #[should_panic(expected = "got 8192")]
    fn rejects_oversized_partitions() {
        AccelConfig::new(8192);
    }
}
