//! # f90y-cm5 — retargeting the prototype to the Connection Machine CM/5
//!
//! The paper's §5.3.1: "The CM/5 NIR compiler retains the majority of
//! its structure and, therefore, its specification from the CM/2
//! version. … In the new model a single NIR program will be split three
//! ways rather than two; one part will go to the control processor, as
//! before; a second part will be executed on the SPARC node processor,
//! and a third part will carry out floating point vector operations on
//! the CM/5 vector datapaths. … Most importantly, the new compiler can
//! still take advantage of the machine-independent blocking and
//! vectorizing NIR transformations defined in the front end."
//!
//! This crate reproduces exactly that claim:
//!
//! * [`split_block`] performs the **three-way split** of a compiled
//!   computation block: vector arithmetic to the four vector units,
//!   address generation and loop control to the node SPARC, dispatch to
//!   the control processor — without touching the front end or the
//!   blocking transformations.
//! * [`estimate`] replays a CM/2 execution trace
//!   ([`f90y_cm2::TraceEvent`]) under the CM/5 cost model, so the same
//!   compiled program (same blocks, same host program) is re-timed for
//!   the new machine. Numerical results are unchanged by construction —
//!   the port is a *cost-model* port, which is the paper's point about
//!   concentrated effort.
//!
//! ## Machine constants
//!
//! A CM-5 node is a 33 MHz SPARC with four vector units; each VU
//! delivers up to 32 MFLOPS (64-bit mul-add per 16 MHz cycle), giving
//! the well-known 128 MFLOPS/node peak. The data network is a fat tree
//! with ~20 MB/s per-node bandwidth.

use std::error::Error;
use std::fmt;

use f90y_backend::CompiledProgram;
use f90y_cm2::TraceEvent;

/// Configuration of a CM/5 partition.
#[derive(Debug, Clone, PartialEq)]
pub struct Cm5Config {
    /// Number of processing nodes (CM-5s shipped from 32 up to 1024).
    pub nodes: usize,
    /// Node SPARC clock (33 MHz).
    pub sparc_clock_hz: f64,
    /// Vector-unit clock (16 MHz).
    pub vu_clock_hz: f64,
    /// Vector units per node (4).
    pub vus_per_node: usize,
    /// Fat-tree per-node bandwidth in bytes/second (~20 MB/s).
    pub network_bytes_per_sec: f64,
}

impl Cm5Config {
    /// A machine of `nodes` nodes with the standard constants.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two between 32 and 1024.
    pub fn new(nodes: usize) -> Self {
        assert!(
            (32..=1024).contains(&nodes),
            "CM/5 node count must be a power of two in 32..=1024, got {nodes}"
        );
        Cm5Config::custom(nodes)
    }

    /// A partition with the standard constants but without [`new`]'s
    /// shipping-size restriction: any power-of-two node count ≥ 1.
    /// Scaled-down partitions drive the MIMD execution engine in tests
    /// and benchmarks where the real machine's 32-node minimum would
    /// just waste simulation time.
    ///
    /// [`new`]: Cm5Config::new
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is a power of two.
    pub fn custom(nodes: usize) -> Self {
        assert!(
            nodes.is_power_of_two(),
            "CM/5 node count must be a power of two, got {nodes}"
        );
        Cm5Config {
            nodes,
            sparc_clock_hz: 33.0e6,
            vu_clock_hz: 16.0e6,
            vus_per_node: 4,
            network_bytes_per_sec: 20.0e6,
        }
    }

    /// Peak GFLOPS (chained multiply-add on every VU).
    pub fn peak_gflops(&self) -> f64 {
        self.nodes as f64 * self.vus_per_node as f64 * 2.0 * self.vu_clock_hz / 1e9
    }

    /// This partition's constants as a [`f90y_mimd::MimdConfig`], so the
    /// MIMD execution engine and the analytic estimator model the same
    /// machine.
    pub fn mimd_config(&self) -> f90y_mimd::MimdConfig {
        let mut c = f90y_mimd::MimdConfig::new(self.nodes);
        c.sparc_clock_hz = self.sparc_clock_hz;
        c.vu_clock_hz = self.vu_clock_hz;
        c.vus_per_node = self.vus_per_node;
        c.network_bytes_per_sec = self.network_bytes_per_sec;
        c.net_call_seconds = NET_CALL_SECONDS;
        c.cp_dispatch_cycles = CP_DISPATCH_CYCLES;
        c.cp_per_arg_cycles = CP_PER_ARG_CYCLES;
        c
    }

    /// Execute a compiled program on this partition's MIMD engine
    /// (genuinely distributed: sharded arrays, halo exchanges, combine
    /// trees) rather than replaying a SIMD trace through [`estimate`].
    ///
    /// # Errors
    ///
    /// Fails on host-execution or runtime errors.
    pub fn run_mimd(
        &self,
        compiled: &CompiledProgram,
    ) -> Result<(f90y_backend::fe::HostRun, f90y_mimd::MimdStats), f90y_backend::BackendError> {
        f90y_mimd::run(compiled, &self.mimd_config())
    }
}

impl Default for Cm5Config {
    fn default() -> Self {
        Cm5Config::new(1024)
    }
}

/// The three-way division of one computation block (paper Fig. 2, right
/// diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSplit {
    /// Instructions executed on the vector datapaths.
    pub vector_instructions: usize,
    /// Per-iteration SPARC work: address generation (one per stream)
    /// plus loop control.
    pub sparc_ops_per_iteration: usize,
    /// Arguments the control processor broadcasts.
    pub control_args: usize,
}

/// Split one compiled block three ways. The PEAC body maps onto the
/// vector units unchanged (DPEAC, the CM-5 VU assembly, is PEAC's direct
/// descendant); the SPARC takes over the pointer bookkeeping the CM-2
/// sequencer used to do; the control processor keeps only the dispatch.
pub fn split_block(block: &f90y_backend::NodeBlock) -> NodeSplit {
    NodeSplit {
        vector_instructions: block.routine.len(),
        // One address update per pointer stream per iteration, plus two
        // ops of loop control.
        sparc_ops_per_iteration: block.array_params.len() + 2,
        control_args: block.array_params.len() + block.scalar_params.len(),
    }
}

/// CM/5 time accounting produced by [`estimate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cm5Stats {
    /// Seconds of vector-unit time (the critical path of compute).
    pub vu_seconds: f64,
    /// Seconds of node-SPARC time *not hidden* behind the VUs.
    pub sparc_exposed_seconds: f64,
    /// Seconds of control-processor dispatch time.
    pub control_seconds: f64,
    /// Seconds of fat-tree communication time.
    pub network_seconds: f64,
    /// Machine-wide flops.
    pub flops: u64,
}

impl Cm5Stats {
    /// Total modelled elapsed seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.vu_seconds + self.sparc_exposed_seconds + self.control_seconds + self.network_seconds
    }

    /// Sustained GFLOPS.
    pub fn gflops(&self) -> f64 {
        let s = self.elapsed_seconds();
        if s == 0.0 {
            0.0
        } else {
            self.flops as f64 / s / 1e9
        }
    }
}

/// Errors from the estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct Cm5Error(String);

impl fmt::Display for Cm5Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CM/5 estimation error: {}", self.0)
    }
}

impl Error for Cm5Error {}

/// Control-processor dispatch overhead per block launch, in SPARC
/// cycles: the CM-5's active-message dispatch was far leaner than the
/// CM-2 IFIFO protocol.
pub const CP_DISPATCH_CYCLES: u64 = 400;

/// Per-argument broadcast cost in control-processor cycles.
pub const CP_PER_ARG_CYCLES: u64 = 10;

/// Network latency per communication call, in seconds (software
/// overhead of the data-network send/receive path).
pub const NET_CALL_SECONDS: f64 = 25.0e-6;

/// Replay a traced CM/2 run under the CM/5 cost model.
///
/// The trace must come from a machine with the **same node count** as
/// `config` (subgrid geometry is baked into the events); the compiled
/// program supplies nothing here — data behaviour is identical by
/// construction — but is accepted to keep call sites honest about what
/// is being re-timed.
///
/// # Errors
///
/// Fails when the trace is empty (tracing was not enabled) or was
/// captured on a machine whose node count disagrees with `config`.
pub fn estimate(
    _compiled: &CompiledProgram,
    trace: &[TraceEvent],
    config: &Cm5Config,
) -> Result<Cm5Stats, Cm5Error> {
    if trace.is_empty() {
        return Err(Cm5Error("empty trace (enable_trace before running)".into()));
    }
    let mut s = Cm5Stats::default();
    let vus = config.vus_per_node as f64;
    for e in trace {
        match *e {
            TraceEvent::Machine { nodes } => {
                if nodes != config.nodes {
                    return Err(Cm5Error(format!(
                        "node count mismatch: trace node count is {nodes} but config \
                         node count is {}: per-node subgrid geometry is baked into the \
                         events, so the replay would mis-time every dispatch; re-trace \
                         on a matching machine",
                        config.nodes
                    )));
                }
            }
            TraceEvent::Dispatch {
                iterations,
                arith,
                mem,
                div,
                lib,
                nargs,
                flops,
                ..
            } => {
                // Subgrid elements per node = iterations × 4 lanes; the
                // four VUs share them, each pipelining one element per
                // cycle per instruction. Divides and library calls cost
                // extra beats, memory instructions stream at one word
                // per cycle (no CM-2-style overlap needed: each VU has
                // its own memory port, so charge half).
                let elems_per_node = iterations as f64 * f90y_peac::isa::VLEN as f64;
                let per_vu = elems_per_node / vus;
                let beats = arith as f64 * per_vu
                    + mem as f64 * per_vu * 0.5
                    + div as f64 * per_vu * 5.0
                    + lib as f64 * per_vu * 10.0;
                s.vu_seconds += beats / config.vu_clock_hz;
                // SPARC bookkeeping: pointer updates + loop control per
                // iteration (iterations now per-VU), largely overlapped
                // with VU compute; charge the excess only.
                let sparc_ops = (nargs as f64 + 2.0) * (iterations as f64 / vus).max(1.0);
                let sparc_secs = sparc_ops / config.sparc_clock_hz;
                let vu_secs = beats / config.vu_clock_hz;
                if sparc_secs > vu_secs {
                    s.sparc_exposed_seconds += sparc_secs - vu_secs;
                }
                s.control_seconds += (CP_DISPATCH_CYCLES + CP_PER_ARG_CYCLES * nargs as u64) as f64
                    / config.sparc_clock_hz;
                s.flops += flops;
            }
            TraceEvent::GridComm {
                iterations,
                crossing,
            } => {
                // Local copy streams through the VUs; crossing elements
                // ride the fat tree at 8 bytes each.
                let local = iterations as f64 * f90y_peac::isa::VLEN as f64 * 2.0
                    / vus
                    / config.vu_clock_hz;
                let wire = crossing as f64 * 8.0 / config.network_bytes_per_sec;
                s.network_seconds += NET_CALL_SECONDS + local + wire;
            }
            TraceEvent::Router { subgrid } => {
                // Every element traverses the tree.
                s.network_seconds +=
                    NET_CALL_SECONDS + subgrid as f64 * 8.0 / config.network_bytes_per_sec;
            }
            TraceEvent::Reduce { iterations } => {
                let local =
                    iterations as f64 * f90y_peac::isa::VLEN as f64 / vus / config.vu_clock_hz;
                // The CM-5 control network reduces in hardware.
                s.network_seconds += NET_CALL_SECONDS + local;
            }
            TraceEvent::HostOps(n) => {
                // The partition manager does host work at SPARC speed.
                s.sparc_exposed_seconds += n as f64 * 2.0 / config.sparc_clock_hz;
            }
        }
    }
    Ok(s)
}

/// Convenience: run a compiled program on a traced CM/2 of matching
/// node count (for exact data), then estimate CM/5 time.
///
/// Returns the host-run results and the CM/5 stats.
///
/// # Errors
///
/// Fails on execution errors or an empty trace.
pub fn run_and_estimate(
    compiled: &CompiledProgram,
    config: &Cm5Config,
) -> Result<(f90y_backend::fe::HostRun, Cm5Stats), Box<dyn Error>> {
    let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(config.nodes.min(2048)));
    cm.enable_trace();
    let run = f90y_backend::fe::HostExecutor::new(&mut cm).run(compiled)?;
    let trace = cm.trace().unwrap_or(&[]);
    let stats = estimate(compiled, trace, config)?;
    Ok((run, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile the shallow-water kernel, naming the pipeline stage that
    /// failed instead of panicking mid-chain: a test that dies here
    /// should say *which* phase regressed, not just "called unwrap on
    /// an Err".
    fn compile_swe(n: usize) -> Result<CompiledProgram, String> {
        let src = format!(
            "
REAL v({n},{n}), t({n},{n})
FORALL (i=1:{n}, j=1:{n}) v(i,j) = MOD(i+j, 9)
DO step = 1, 3
  t = CSHIFT(v, DIM=1, SHIFT=1)
  v = 0.5*(v + t) + 0.25*v*t
END DO
"
        );
        let unit = f90y_frontend::parse(&src).map_err(|e| format!("frontend parse: {e}"))?;
        let nir = f90y_lowering::lower(&unit).map_err(|e| format!("lowering: {e}"))?;
        let optimized = f90y_transform::optimize(&nir).map_err(|e| format!("transform: {e}"))?;
        f90y_backend::compile(&optimized).map_err(|e| format!("backend split: {e}"))
    }

    fn compiled_swe(n: usize) -> CompiledProgram {
        compile_swe(n).expect("SWE kernel must compile")
    }

    #[test]
    fn peak_matches_the_announced_machine() {
        let c = Cm5Config::new(1024);
        // 1024 nodes × 128 MFLOPS = 131 GFLOPS.
        assert!((c.peak_gflops() - 131.072).abs() < 0.5);
    }

    #[test]
    fn three_way_split_covers_every_block() {
        let compiled = compiled_swe(64);
        for b in &compiled.blocks {
            let split = split_block(b);
            assert!(split.vector_instructions > 0);
            assert!(split.sparc_ops_per_iteration >= 3);
            assert_eq!(
                split.control_args,
                b.array_params.len() + b.scalar_params.len()
            );
        }
    }

    #[test]
    fn estimate_reuses_the_same_compiled_program() {
        let compiled = compiled_swe(128);
        let config = Cm5Config::new(256);
        let (run, stats) = run_and_estimate(&compiled, &config).unwrap();
        // Data identical to a plain CM/2 run.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(256));
        let plain = f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .unwrap();
        assert_eq!(
            run.final_array("v").unwrap(),
            plain.final_array("v").unwrap()
        );
        assert!(stats.gflops() > 0.0);
        assert!(stats.gflops() < config.peak_gflops());
    }

    #[test]
    fn empty_trace_is_an_error() {
        let compiled = compiled_swe(16);
        assert!(estimate(&compiled, &[], &Cm5Config::new(32)).is_err());
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let compiled = compiled_swe(16);
        // Trace on 64 nodes, estimate for 256: geometry disagrees.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(64));
        cm.enable_trace();
        f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .expect("CM/2 run must succeed");
        let trace = cm.trace().expect("trace was enabled").to_vec();
        let err = estimate(&compiled, &trace, &Cm5Config::new(256))
            .expect_err("mismatched node count must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("trace node count is 64"),
            "error should label and name the traced count: {msg}"
        );
        assert!(
            msg.contains("config node count is 256"),
            "error should label and name the config count: {msg}"
        );
        // The matching count still estimates fine.
        assert!(estimate(&compiled, &trace, &Cm5Config::new(64)).is_ok());
    }

    #[test]
    fn mimd_engine_agrees_with_the_analytic_model() {
        let compiled = compiled_swe(64);
        let config = Cm5Config::new(64);
        // The engine really executes on 64 sharded nodes…
        let (mimd_run, mimd_stats) = config.run_mimd(&compiled).expect("MIMD run");
        // …while the estimator replays a traced SIMD run of the same
        // program.
        let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(64));
        cm.enable_trace();
        let simd_run = f90y_backend::fe::HostExecutor::new(&mut cm)
            .run(&compiled)
            .expect("SIMD run");
        let trace = cm.trace().expect("trace was enabled");

        // Same program, same data: bit-identical arrays.
        assert_eq!(
            mimd_run.final_array("v").unwrap(),
            simd_run.final_array("v").unwrap()
        );
        // Communication runtime calls counted call for call: the two
        // models see the identical host program.
        let traced_comm = trace
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::GridComm { .. }
                        | TraceEvent::Router { .. }
                        | TraceEvent::Reduce { .. }
                )
            })
            .count() as u64;
        assert_eq!(mimd_stats.comm_calls, traced_comm);
        assert!(estimate(&compiled, trace, &config).is_ok());
        mimd_stats.verify().expect("stats invariants");
    }

    #[test]
    fn more_nodes_more_throughput() {
        let compiled = compiled_swe(256);
        let small = run_and_estimate(&compiled, &Cm5Config::new(64)).unwrap().1;
        let large = run_and_estimate(&compiled, &Cm5Config::new(512)).unwrap().1;
        assert!(
            large.gflops() > small.gflops(),
            "512 nodes {} must beat 64 nodes {}",
            large.gflops(),
            small.gflops()
        );
    }
}
