//! # f90y-baselines — the paper's comparator systems
//!
//! The paper's §6 compares the Fortran-90-Y prototype against two
//! systems on the SWE benchmark:
//!
//! * **CM Fortran (slicewise, v1.1)** — 2.79 GFLOPS. Thinking Machines'
//!   production compiler generated good per-statement PEAC but, in the
//!   paper's analysis, lacked the cross-statement *blocking* that
//!   amortises "PEAC subroutine calling time and the overhead of
//!   receiving pointers and data from the front-end FIFO … over more
//!   floating point computations, in longer virtual subgrid loops".
//!   [`compile_cmf`] models exactly that: the same front end, the same
//!   fully-optimizing PE code generator, but per-statement computation
//!   phases (no reorder/fusion).
//!
//! * **Hand-coded \*Lisp (fieldwise)** — 1.89 GFLOPS. Fieldwise
//!   execution keeps data bit-transposed for the bit-serial processors
//!   and pays the transposer on every Weitek access; \*Lisp elemental
//!   operations dispatch one statement at a time through a heavier
//!   runtime and do not benefit from load chaining, overlap, or chained
//!   multiply-adds. [`compile_starlisp`] compiles per-statement with the
//!   naive PE options, and [`starlisp_machine`] configures the machine
//!   with the fieldwise cost multipliers of
//!   [`f90y_cm2::Cm2Config::fieldwise`].
//!
//! Both baselines produce numerically identical results to the
//! prototype (all three are validated against the NIR evaluator); only
//! their time differs — which is the point of the §6 table.

use f90y_backend::pe::PeOptions;
use f90y_backend::{BackendError, CompiledProgram};
use f90y_cm2::{Cm2, Cm2Config};
use f90y_nir::Imp;

/// Which comparator system to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// CM Fortran slicewise v1.1: per-statement, fully optimized PEAC.
    Cmf,
    /// Hand-coded \*Lisp under fieldwise mode: per-statement, naive
    /// PEAC, fieldwise machine multipliers.
    StarLisp,
}

impl Baseline {
    /// Short display name, as used in the §6 table.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Cmf => "CM Fortran (slicewise)",
            Baseline::StarLisp => "*Lisp (fieldwise)",
        }
    }
}

/// Compile a lowered NIR program the CM Fortran way: communication
/// extraction and mask padding, but one computation phase per source
/// statement and full PE code generation.
///
/// # Errors
///
/// Fails as `f90y_backend::compile` does.
pub fn compile_cmf(nir: &Imp) -> Result<CompiledProgram, BackendError> {
    let (per_stmt, _) = f90y_transform::per_statement_passes().run(nir)?;
    f90y_backend::compile_with_options(&per_stmt, PeOptions::full())
}

/// Compile a lowered NIR program the \*Lisp way: per-statement phases
/// and naive PE code generation (no chaining, no multiply-add fusion,
/// no overlap).
///
/// # Errors
///
/// Fails as `f90y_backend::compile` does.
pub fn compile_starlisp(nir: &Imp) -> Result<CompiledProgram, BackendError> {
    let (per_stmt, _) = f90y_transform::per_statement_passes().run(nir)?;
    f90y_backend::compile_with_options(&per_stmt, PeOptions::naive())
}

/// Compile under a given baseline.
///
/// # Errors
///
/// Fails as `f90y_backend::compile` does.
pub fn compile_baseline(nir: &Imp, which: Baseline) -> Result<CompiledProgram, BackendError> {
    match which {
        Baseline::Cmf => compile_cmf(nir),
        Baseline::StarLisp => compile_starlisp(nir),
    }
}

/// The machine a baseline runs on: slicewise for CMF, fieldwise (with
/// its multipliers) for \*Lisp.
pub fn baseline_machine(which: Baseline, nodes: usize) -> Cm2 {
    match which {
        Baseline::Cmf => Cm2::new(Cm2Config::slicewise(nodes)),
        Baseline::StarLisp => Cm2::new(Cm2Config::fieldwise(nodes)),
    }
}

/// The machine configured for \*Lisp fieldwise execution.
pub fn starlisp_machine(nodes: usize) -> Cm2 {
    baseline_machine(Baseline::StarLisp, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f90y_backend::fe::HostExecutor;

    fn pipeline(src: &str) -> Imp {
        let unit = f90y_frontend::parse(src).expect("parses");
        f90y_lowering::lower(&unit).expect("lowers")
    }

    const PROGRAM: &str = "
        REAL a(32), b(32), c(32), d(32)
        FORALL (i=1:32) a(i) = i
        b = 2.0*a + 1.0
        c = a*b
        d = (a + b)*c - a/b
    ";

    #[test]
    fn baselines_compute_the_same_results_as_the_prototype() {
        let nir = pipeline(PROGRAM);
        let optimized = f90y_transform::optimize(&nir).unwrap();
        let f90y = f90y_backend::compile(&optimized).unwrap();
        let cmf = compile_cmf(&nir).unwrap();
        let sl = compile_starlisp(&nir).unwrap();

        let mut results = Vec::new();
        for (compiled, machine) in [
            (&f90y, Cm2::new(Cm2Config::slicewise(16))),
            (&cmf, baseline_machine(Baseline::Cmf, 16)),
            (&sl, baseline_machine(Baseline::StarLisp, 16)),
        ] {
            let mut cm = machine;
            let run = HostExecutor::new(&mut cm).run(compiled).unwrap();
            results.push(run.final_array("d").unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn cmf_has_more_blocks_than_the_prototype() {
        let nir = pipeline(PROGRAM);
        let optimized = f90y_transform::optimize(&nir).unwrap();
        let f90y = f90y_backend::compile(&optimized).unwrap();
        let cmf = compile_cmf(&nir).unwrap();
        assert!(
            cmf.blocks.len() > f90y.blocks.len(),
            "per-statement compilation must produce more dispatches: {} vs {}",
            cmf.blocks.len(),
            f90y.blocks.len()
        );
    }

    #[test]
    fn speed_ordering_matches_the_paper() {
        // F90-Y faster than CMF faster than *Lisp, on a compute-heavy
        // kernel (the §6 shape, in miniature).
        let nir = pipeline(PROGRAM);
        let optimized = f90y_transform::optimize(&nir).unwrap();
        let f90y = f90y_backend::compile(&optimized).unwrap();
        let cmf = compile_cmf(&nir).unwrap();
        let sl = compile_starlisp(&nir).unwrap();

        let mut cm_f = Cm2::new(Cm2Config::slicewise(16));
        HostExecutor::new(&mut cm_f).run(&f90y).unwrap();
        let mut cm_c = baseline_machine(Baseline::Cmf, 16);
        HostExecutor::new(&mut cm_c).run(&cmf).unwrap();
        let mut cm_s = baseline_machine(Baseline::StarLisp, 16);
        HostExecutor::new(&mut cm_s).run(&sl).unwrap();

        let clock = cm_f.config().clock_hz;
        let g_f = cm_f.stats().gflops(clock);
        let g_c = cm_c.stats().gflops(clock);
        let g_s = cm_s.stats().gflops(clock);
        assert!(g_f > g_c, "F90-Y {g_f} must beat CMF {g_c}");
        assert!(g_c > g_s, "CMF {g_c} must beat *Lisp {g_s}");
    }

    #[test]
    fn starlisp_emits_no_fused_multiply_adds() {
        let nir = pipeline(PROGRAM);
        let sl = compile_starlisp(&nir).unwrap();
        for b in &sl.blocks {
            assert!(!b
                .routine
                .body()
                .iter()
                .any(|i| matches!(i, f90y_peac::Instr::Fmaddv { .. })));
        }
    }
}
