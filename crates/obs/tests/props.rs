//! Property tests for the telemetry report serialisation: the JSON
//! round-trip must be lossless for any report the collector can
//! produce, including nested spans and dotted (prefixed) counter names.

use proptest::prelude::*;

use f90y_obs::{SpanReport, TelemetryReport};

/// A plausible dotted phase/counter name: one to three segments drawn
/// from the namespaces the pipeline actually uses, so prefixed counters
/// (`sim.phase.<tag>.<cat>`) are well represented.
fn name_strategy() -> impl Strategy<Value = String> {
    let seg = prop_oneof![
        Just("compile"),
        Just("frontend"),
        Just("sim"),
        Just("mimd"),
        Just("phase"),
        Just("cycles"),
        Just("dispatch"),
        Just("halo \"q\"\n"), // exercises string escaping
    ];
    proptest::collection::vec(seg, 1..4).prop_map(|parts| parts.join("."))
}

/// Spans with depths forming a valid nesting sequence: each span's
/// depth is at most one deeper than its predecessor's, starting at 0 —
/// exactly the shape `Telemetry::report` can emit.
fn spans_strategy() -> impl Strategy<Value = Vec<SpanReport>> {
    proptest::collection::vec((name_strategy(), 0u64..4, 0u64..5_000_000_000), 0..8).prop_map(
        |raw| {
            let mut depth_cap = 0usize;
            raw.into_iter()
                .map(|(name, depth, nanos)| {
                    let depth = (depth as usize).min(depth_cap);
                    depth_cap = depth + 1;
                    SpanReport {
                        name,
                        depth,
                        nanos: u128::from(nanos),
                    }
                })
                .collect()
        },
    )
}

fn report_strategy() -> impl Strategy<Value = TelemetryReport> {
    let counters = proptest::collection::vec((name_strategy(), 0u64..1_000_000_000), 0..8);
    let gauges = proptest::collection::vec((name_strategy(), -1.0e12f64..1.0e12), 0..8);
    (spans_strategy(), counters, gauges).prop_map(|(spans, mut counters, mut gauges)| {
        // The collector stores counters/gauges in BTreeMaps: names are
        // unique and sorted. Mirror that so round-trip equality is an
        // honest check rather than an artifact of duplicate keys.
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        counters.dedup_by(|a, b| a.0 == b.0);
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.dedup_by(|a, b| a.0 == b.0);
        TelemetryReport {
            spans,
            counters,
            gauges,
        }
    })
}

proptest! {
    /// `from_json(to_json(r))` is the identity on collector-shaped
    /// reports.
    #[test]
    fn json_round_trip_is_lossless(report in report_strategy()) {
        let text = report.to_json();
        let parsed = TelemetryReport::from_json(&text).expect("emitted JSON parses");
        prop_assert_eq!(&parsed.spans, &report.spans);
        prop_assert_eq!(&parsed.counters, &report.counters);
        // Gauges round-trip through the f64 formatter losslessly
        // (Rust's shortest-round-trip float printing).
        prop_assert_eq!(&parsed.gauges, &report.gauges);
    }

    /// Serialisation is canonical: a second emit of the parsed report
    /// is byte-identical to the first emit.
    #[test]
    fn json_emit_is_canonical(report in report_strategy()) {
        let text = report.to_json();
        let parsed = TelemetryReport::from_json(&text).expect("emitted JSON parses");
        prop_assert_eq!(parsed.to_json(), text);
    }
}
