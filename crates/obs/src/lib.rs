//! # f90y-obs — compiler and simulator telemetry
//!
//! The paper's whole argument is quantitative (its Figures 9–12 measure
//! what domain blocking, mask padding and PEAC register allocation each
//! bought); this crate is the shared spine every stage reports through
//! so the reproduction can measure itself the same way:
//!
//! * [`Telemetry`] — hierarchical monotonic-clock phase spans plus named
//!   counters and gauges. Off by default: a [`Telemetry::disabled`]
//!   handle makes every call a cheap branch on one bool, so the compile
//!   path pays nothing when nobody is listening.
//! * [`TelemetryReport`] — the frozen snapshot: spans in start order
//!   with durations, counters and gauges sorted by name. Serialises to
//!   JSON ([`TelemetryReport::to_json`]) and parses back
//!   ([`TelemetryReport::from_json`]) with the hand-rolled [`json`]
//!   module — no external dependencies.
//! * [`EventSink`] — where reports go: [`JsonSink`] writes the
//!   machine-readable report (the CLI's `--emit-telemetry <path>`),
//!   [`PrettySink`] renders a `-Ztimings`-style table (`--timings`).
//!
//! ## Example
//!
//! ```
//! use f90y_obs::Telemetry;
//!
//! let mut tel = Telemetry::new();
//! let compile = tel.start("compile");
//! let parse = tel.start("frontend.parse");
//! tel.count("frontend.tokens", 42);
//! tel.finish(parse);
//! tel.finish(compile);
//!
//! let report = tel.report();
//! assert_eq!(report.counter("frontend.tokens"), Some(42));
//! let round = f90y_obs::TelemetryReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(round.counter("frontend.tokens"), Some(42));
//! ```

pub mod json;
pub mod sink;
pub mod trace;

use std::collections::BTreeMap;
use std::time::Instant;

pub use sink::{EventSink, JsonSink, PrettySink};

/// Handle to an open span; pass back to [`Telemetry::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a span only gets a duration when finished"]
pub struct SpanId(usize);

const DISABLED_SPAN: SpanId = SpanId(usize::MAX);

#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    depth: usize,
    started_nanos: u128,
    nanos: Option<u128>,
}

/// The collector: spans, counters and gauges for one compilation or
/// run. Create with [`Telemetry::new`] to record, or
/// [`Telemetry::disabled`] for a free-to-call no-op handle.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    epoch: Instant,
    spans: Vec<SpanRec>,
    stack: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A recording collector.
    pub fn new() -> Self {
        Telemetry {
            enabled: true,
            epoch: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    /// A no-op collector: every method returns immediately after one
    /// branch, so instrumented code costs nothing measurable when
    /// telemetry is off.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            ..Telemetry::new()
        }
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span named `name`, nested under the innermost open span.
    pub fn start(&mut self, name: &str) -> SpanId {
        if !self.enabled {
            return DISABLED_SPAN;
        }
        let id = self.spans.len();
        self.spans.push(SpanRec {
            name: name.to_string(),
            depth: self.stack.len(),
            started_nanos: self.epoch.elapsed().as_nanos(),
            nanos: None,
        });
        self.stack.push(id);
        SpanId(id)
    }

    /// Close a span. Any spans opened under it and still open are closed
    /// with it (a forgiving discipline that keeps the ledger consistent
    /// across early returns).
    pub fn finish(&mut self, id: SpanId) {
        if !self.enabled || id == DISABLED_SPAN {
            return;
        }
        let now = self.epoch.elapsed().as_nanos();
        while let Some(top) = self.stack.pop() {
            let rec = &mut self.spans[top];
            if rec.nanos.is_none() {
                rec.nanos = Some(now.saturating_sub(rec.started_nanos));
            }
            if top == id.0 {
                return;
            }
        }
    }

    /// Run `f` inside a span named `name`.
    pub fn scope<T>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> T) -> T {
        let id = self.start(name);
        let out = f(self);
        self.finish(id);
        out
    }

    /// Add `delta` to the named counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge (last write wins). Non-finite values
    /// (NaN/±inf) are rejected: they have no JSON representation, so
    /// accepting them would poison every report downstream.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if !self.enabled || !value.is_finite() {
            return;
        }
        self.gauges.insert(name.to_string(), value);
    }

    /// Record the larger of the current gauge and `value` (non-finite
    /// values are rejected, as in [`Telemetry::gauge`]).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        if !self.enabled || !value.is_finite() {
            return;
        }
        let slot = self
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if value > *slot {
            *slot = value;
        }
    }

    /// Record the smaller of the current gauge and `value` (the
    /// counterpart of [`Telemetry::gauge_max`], e.g. the least-loaded
    /// node of a MIMD run; non-finite values are rejected, as in
    /// [`Telemetry::gauge`]).
    pub fn gauge_min(&mut self, name: &str, value: f64) {
        if !self.enabled || !value.is_finite() {
            return;
        }
        let slot = self.gauges.entry(name.to_string()).or_insert(f64::INFINITY);
        if value < *slot {
            *slot = value;
        }
    }

    /// Fold another collector's report into this one: counters add,
    /// gauges keep their maximum. Spans are *not* absorbed — they are
    /// wall-clock hierarchies private to their collector. This is the
    /// aggregation path a long-running service uses to roll per-request
    /// telemetry up into one service-lifetime view (`f90y-serve`).
    ///
    /// # Merge-order contract
    ///
    /// Absorption is commutative and associative: counter addition and
    /// gauge maximisation do not depend on the order reports arrive,
    /// and [`TelemetryReport::to_json`] re-sorts names on the way out.
    /// A host that collects per-worker reports from a parallel run
    /// (`Session::host_threads > 1`) may therefore absorb them in any
    /// order — worker scheduling can never perturb the rolled-up
    /// report. (Flight-recorder *traces* make the opposite choice:
    /// their event order is significant, so the simulation merges
    /// shard events at the barrier sorted by actor id, then sequence
    /// number — see `trace::Trace`.)
    pub fn absorb(&mut self, report: &TelemetryReport) {
        if !self.enabled {
            return;
        }
        for (name, value) in &report.counters {
            self.count(name, *value);
        }
        for (name, value) in &report.gauges {
            self.gauge_max(name, *value);
        }
    }

    /// Freeze the current state into a report. Open spans are reported
    /// with their duration so far.
    pub fn report(&self) -> TelemetryReport {
        let now = self.epoch.elapsed().as_nanos();
        TelemetryReport {
            spans: self
                .spans
                .iter()
                .map(|s| SpanReport {
                    name: s.name.clone(),
                    depth: s.depth,
                    nanos: s
                        .nanos
                        .unwrap_or_else(|| now.saturating_sub(s.started_nanos)),
                })
                .collect(),
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Freeze and deliver to a sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O failures.
    pub fn emit(&self, sink: &mut dyn EventSink) -> std::io::Result<()> {
        sink.emit(&self.report())
    }
}

/// One finished (or still-open) span in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Dotted phase name, e.g. `compile.frontend.parse`.
    pub name: String,
    /// Nesting depth at start (0 = top level).
    pub depth: usize,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u128,
}

/// A frozen telemetry snapshot: what sinks consume and the CLI writes.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Spans in start order (depth gives the hierarchy).
    pub spans: Vec<SpanReport>,
    /// Counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges sorted by name.
    pub gauges: Vec<(String, f64)>,
}

impl TelemetryReport {
    /// The named counter's value.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The named gauge's value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Duration of the first span with this name, in nanoseconds.
    pub fn span_nanos(&self, name: &str) -> Option<u128> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.nanos)
    }

    /// Sum of the counters under a `prefix.` namespace.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        let dotted = format!("{prefix}.");
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(&dotted))
            .map(|(_, v)| *v)
            .sum()
    }

    /// The counters under a `prefix.` namespace, in name order.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        let dotted = format!("{prefix}.");
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(&dotted))
            .map(|(k, v)| (k.as_str(), *v))
            .collect()
    }

    /// Serialise to JSON. Counters and gauges emit sorted by name
    /// regardless of the report's in-memory order (reports parsed from
    /// foreign documents may arrive unsorted), so two equivalent
    /// reports serialise byte-identically; spans keep start order,
    /// which the depth hierarchy depends on and which is already
    /// deterministic.
    pub fn to_json(&self) -> String {
        use json::Json;
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(s.name.clone())),
                        ("depth".into(), Json::Num(s.depth as f64)),
                        ("nanos".into(), Json::Num(s.nanos as f64)),
                    ])
                })
                .collect(),
        );
        let mut sorted_counters: Vec<_> = self.counters.clone();
        sorted_counters.sort_by(|a, b| a.0.cmp(&b.0));
        let counters = Json::Obj(
            sorted_counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let mut sorted_gauges: Vec<_> = self.gauges.clone();
        sorted_gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let gauges = Json::Obj(
            sorted_gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        Json::Obj(vec![
            ("spans".into(), spans),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
        ])
        .to_string()
    }

    /// Parse a report serialised by [`TelemetryReport::to_json`].
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document without the report shape.
    pub fn from_json(text: &str) -> Result<Self, json::JsonError> {
        use json::Json;
        let doc = json::parse(text)?;
        let bad = |what: &str| json::JsonError::shape(format!("telemetry report: {what}"));
        let Json::Obj(fields) = doc else {
            return Err(bad("top level must be an object"));
        };
        let mut spans = Vec::new();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("spans", Json::Arr(items)) => {
                    for item in items {
                        let Json::Obj(f) = item else {
                            return Err(bad("span entries must be objects"));
                        };
                        let mut name = None;
                        let mut depth = None;
                        let mut nanos = None;
                        for (k, v) in f {
                            match (k.as_str(), v) {
                                ("name", Json::Str(s)) => name = Some(s),
                                ("depth", Json::Num(n)) => depth = Some(n as usize),
                                ("nanos", Json::Num(n)) => nanos = Some(n as u128),
                                _ => return Err(bad("unexpected span field")),
                            }
                        }
                        spans.push(SpanReport {
                            name: name.ok_or_else(|| bad("span missing name"))?,
                            depth: depth.ok_or_else(|| bad("span missing depth"))?,
                            nanos: nanos.ok_or_else(|| bad("span missing nanos"))?,
                        });
                    }
                }
                ("counters", Json::Obj(f)) => {
                    for (k, v) in f {
                        let Json::Num(n) = v else {
                            return Err(bad("counters must be numbers"));
                        };
                        counters.push((k, n as u64));
                    }
                }
                ("gauges", Json::Obj(f)) => {
                    for (k, v) in f {
                        let Json::Num(n) = v else {
                            return Err(bad("gauges must be numbers"));
                        };
                        gauges.push((k, n));
                    }
                }
                _ => return Err(bad("unexpected top-level field")),
            }
        }
        Ok(TelemetryReport {
            spans,
            counters,
            gauges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_counters_and_maxes_gauges() {
        let mut per_request = Telemetry::new();
        per_request.count("serve.requests", 1);
        per_request.count("sim.flops", 100);
        per_request.gauge("serve.queue.depth", 3.0);

        let mut service = Telemetry::new();
        service.count("sim.flops", 50);
        service.gauge_max("serve.queue.depth", 7.0);
        service.absorb(&per_request.report());
        service.absorb(&per_request.report());

        let report = service.report();
        assert_eq!(report.counter("serve.requests"), Some(2));
        assert_eq!(report.counter("sim.flops"), Some(250));
        assert_eq!(report.gauge("serve.queue.depth"), Some(7.0));
        assert!(report.spans.is_empty(), "spans are not absorbed");

        let mut disabled = Telemetry::disabled();
        disabled.absorb(&per_request.report());
        assert!(disabled.report().counters.is_empty());
    }

    #[test]
    fn absorb_is_order_independent() {
        // The merge-order contract: per-worker reports from a parallel
        // run may be absorbed in any order with byte-identical results.
        let mut workers = Vec::new();
        for w in 0..3u64 {
            let mut tel = Telemetry::new();
            tel.count("sim.flops", 100 * (w + 1));
            tel.count("mimd.messages", 7);
            tel.gauge_max("mimd.node_busy_max", w as f64);
            workers.push(tel.report());
        }
        let fold = |order: &[usize]| {
            let mut total = Telemetry::new();
            for &i in order {
                total.absorb(&workers[i]);
            }
            total.report().to_json()
        };
        let forward = fold(&[0, 1, 2]);
        assert_eq!(fold(&[2, 1, 0]), forward);
        assert_eq!(fold(&[1, 2, 0]), forward);
    }

    #[test]
    fn spans_nest_and_time() {
        let mut tel = Telemetry::new();
        let outer = tel.start("compile");
        let inner = tel.start("compile.frontend");
        tel.finish(inner);
        let second = tel.start("compile.backend");
        tel.finish(second);
        tel.finish(outer);

        let r = tel.report();
        assert_eq!(r.spans.len(), 3);
        assert_eq!(r.spans[0].name, "compile");
        assert_eq!(r.spans[0].depth, 0);
        assert_eq!(r.spans[1].depth, 1);
        assert_eq!(r.spans[2].depth, 1);
        // The parent covers its children.
        assert!(r.spans[0].nanos >= r.spans[1].nanos + r.spans[2].nanos);
    }

    #[test]
    fn finish_closes_abandoned_children() {
        let mut tel = Telemetry::new();
        let outer = tel.start("outer");
        let _leaked = tel.start("leaked");
        tel.finish(outer);
        let r = tel.report();
        assert_eq!(r.spans.len(), 2);
        // Both spans have durations even though "leaked" never finished,
        // and the stack fully unwound.
        let after = tel.start("after");
        tel.finish(after);
        assert_eq!(tel.report().spans[2].depth, 0);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut tel = Telemetry::new();
        tel.count("a", 2);
        tel.count("a", 3);
        tel.gauge("g", 1.5);
        tel.gauge("g", 2.5);
        tel.gauge_max("m", 4.0);
        tel.gauge_max("m", 3.0);
        tel.gauge_min("n", 4.0);
        tel.gauge_min("n", 3.0);
        tel.gauge_min("n", 5.0);
        let r = tel.report();
        assert_eq!(r.counter("a"), Some(5));
        assert_eq!(r.gauge("g"), Some(2.5));
        assert_eq!(r.gauge("m"), Some(4.0));
        assert_eq!(r.gauge("n"), Some(3.0));
    }

    #[test]
    fn disabled_records_nothing() {
        let mut tel = Telemetry::disabled();
        let id = tel.start("x");
        tel.count("c", 1);
        tel.gauge("g", 1.0);
        tel.finish(id);
        let r = tel.report();
        assert!(r.spans.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
    }

    #[test]
    fn scope_is_equivalent_to_start_finish() {
        let mut tel = Telemetry::new();
        let out = tel.scope("phase", |t| {
            t.count("inner", 1);
            7
        });
        assert_eq!(out, 7);
        let r = tel.report();
        assert_eq!(r.spans[0].name, "phase");
        assert_eq!(r.counter("inner"), Some(1));
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut tel = Telemetry::new();
        let a = tel.start("compile");
        tel.count("frontend.tokens", 123);
        tel.count("backend.spills", 4);
        tel.gauge("backend.vreg_pressure", 6.0);
        tel.finish(a);
        let report = tel.report();
        let parsed = TelemetryReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn non_finite_gauges_are_rejected() {
        let mut tel = Telemetry::new();
        tel.gauge("g", f64::NAN);
        tel.gauge("h", f64::INFINITY);
        tel.gauge_max("m", f64::NEG_INFINITY);
        tel.gauge_min("n", f64::NAN);
        assert!(tel.report().gauges.is_empty());
        // A finite write after a rejected one still lands.
        tel.gauge("g", 1.5);
        tel.gauge("g", f64::NAN);
        assert_eq!(tel.report().gauge("g"), Some(1.5));
    }

    #[test]
    fn to_json_sorts_unsorted_reports() {
        // A report built by hand (or parsed from a foreign document)
        // can hold entries out of name order; serialisation must not
        // leak that order.
        let report = TelemetryReport {
            spans: Vec::new(),
            counters: vec![("zeta".into(), 2), ("alpha".into(), 1)],
            gauges: vec![("late".into(), 1.0), ("early".into(), 0.5)],
        };
        let text = report.to_json();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        assert!(text.find("early").unwrap() < text.find("late").unwrap());
        let round = TelemetryReport::from_json(&text).unwrap();
        assert_eq!(round.to_json(), text);
    }

    #[test]
    fn counter_sum_namespaces() {
        let mut tel = Telemetry::new();
        tel.count("sim.phase.a.cycles", 10);
        tel.count("sim.phase.b.cycles", 32);
        tel.count("sim.total", 1);
        assert_eq!(tel.report().counter_sum("sim.phase"), 42);
    }
}
