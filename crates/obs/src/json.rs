//! A tiny JSON value model, emitter and parser.
//!
//! `f90y-obs` keeps the workspace dependency-free, so the telemetry
//! report carries its own serialisation: enough of RFC 8259 for the
//! report shape (objects, arrays, strings, finite numbers, booleans,
//! null) with string escapes on both paths.

use std::error::Error;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integers emit without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/±inf; `null` keeps the document
                    // well-formed instead of emitting a bare `NaN`.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Why a document failed to parse or match an expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the failure, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    pub(crate) fn shape(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "JSON error at byte {off}: {}", self.message),
            None => write!(f, "JSON error: {}", self.message),
        }
    }
}

impl Error for JsonError {}

/// Parse a JSON document.
///
/// # Errors
///
/// Fails on malformed input or trailing non-whitespace.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::at("trailing characters", pos));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at("expected ':'", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(JsonError::at("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError::at(format!("expected '{word}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at("invalid utf-8 in number", start))?;
    let n: f64 = text
        .parse()
        .map_err(|_| JsonError::at(format!("bad number '{text}'"), start))?;
    if !n.is_finite() {
        return Err(JsonError::at("non-finite number", start));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::at("bad \\u code point", *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at("invalid utf-8 in string", *pos))?;
                let c = rest.chars().next().expect("nonempty by match arm");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let doc = Json::Obj(vec![
            (
                "name".into(),
                Json::Str("frontend.parse \"quoted\"\n".into()),
            ),
            ("count".into(), Json::Num(42.0)),
            ("ratio".into(), Json::Num(0.25)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-3.0).to_string(), "-3");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string(), "null");
        // The emitted document stays parseable.
        let doc = Json::Obj(vec![("x".into(), Json::Num(f64::NAN))]);
        assert_eq!(
            parse(&doc.to_string()).unwrap(),
            Json::Obj(vec![("x".into(), Json::Null)])
        );
    }

    #[test]
    fn control_characters_escape_on_emit() {
        let doc = Json::Str("a\u{1}b\u{7f}\n".into());
        let text = doc.to_string();
        assert_eq!(text, "\"a\\u0001b\u{7f}\\n\"");
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let text = r#" { "a" : [ 1 , { "b" : "x" } ] , "c" : -2.5e1 } "#;
        let doc = parse(text).unwrap();
        let Json::Obj(fields) = doc else {
            panic!("object")
        };
        assert_eq!(fields[1], ("c".into(), Json::Num(-25.0)));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").unwrap_err().offset.is_some());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }
}
