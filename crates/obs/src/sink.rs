//! Where telemetry reports go.
//!
//! Sinks consume a frozen [`TelemetryReport`]; the collector never
//! holds a sink, so the compile path is independent of output format.
//! [`JsonSink`] writes the machine-readable document behind the CLI's
//! `--emit-telemetry <path>`; [`PrettySink`] renders the human
//! `--timings` table on stderr.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::TelemetryReport;

/// Consumes frozen telemetry reports.
pub trait EventSink {
    /// Deliver one report.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn emit(&mut self, report: &TelemetryReport) -> io::Result<()>;
}

/// Writes reports as single-line JSON documents.
pub struct JsonSink<W: Write> {
    writer: W,
}

impl JsonSink<File> {
    /// A sink that writes (truncating) to the file at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonSink {
            writer: File::create(path)?,
        })
    }
}

impl<W: Write> JsonSink<W> {
    /// A sink over any writer.
    pub fn new(writer: W) -> Self {
        JsonSink { writer }
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> EventSink for JsonSink<W> {
    fn emit(&mut self, report: &TelemetryReport) -> io::Result<()> {
        writeln!(self.writer, "{}", report.to_json())?;
        self.writer.flush()
    }
}

/// Renders a `-Ztimings`-style table: spans indented by depth with
/// durations, then counters and gauges sorted by name. Field ordering
/// is stable; only the duration column varies run to run.
pub struct PrettySink<W: Write> {
    writer: W,
}

impl PrettySink<io::Stderr> {
    /// The usual CLI destination.
    pub fn stderr() -> Self {
        PrettySink {
            writer: io::stderr(),
        }
    }
}

impl<W: Write> PrettySink<W> {
    /// A sink over any writer (tests capture output this way).
    pub fn new(writer: W) -> Self {
        PrettySink { writer }
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

/// Render nanoseconds with a unit that keeps 3 significant decimals.
fn format_duration(nanos: u128) -> String {
    let ns = nanos as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl<W: Write> EventSink for PrettySink<W> {
    fn emit(&mut self, report: &TelemetryReport) -> io::Result<()> {
        let w = &mut self.writer;
        writeln!(w, "phase timings")?;
        if report.spans.is_empty() {
            writeln!(w, "  (no spans recorded)")?;
        }
        for span in &report.spans {
            let indent = "  ".repeat(span.depth + 1);
            let label = format!("{indent}{}", span.name);
            writeln!(w, "{label:<44} {:>12}", format_duration(span.nanos))?;
        }
        // Sort by name on the way out: a report parsed from a foreign
        // document may hold its entries unsorted, and the table's
        // contract is byte-identical output for equivalent reports.
        if !report.counters.is_empty() {
            writeln!(w, "counters")?;
            let mut counters: Vec<_> = report.counters.iter().collect();
            counters.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, value) in counters {
                writeln!(w, "  {name:<42} {value:>12}")?;
            }
        }
        if !report.gauges.is_empty() {
            writeln!(w, "gauges")?;
            let mut gauges: Vec<_> = report.gauges.iter().collect();
            gauges.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, value) in gauges {
                writeln!(w, "  {name:<42} {value:>12.2}")?;
            }
        }
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanReport, Telemetry};

    fn sample_report() -> TelemetryReport {
        TelemetryReport {
            spans: vec![
                SpanReport {
                    name: "compile".into(),
                    depth: 0,
                    nanos: 2_500_000,
                },
                SpanReport {
                    name: "compile.frontend".into(),
                    depth: 1,
                    nanos: 1_000_000,
                },
                SpanReport {
                    name: "compile.backend".into(),
                    depth: 1,
                    nanos: 1_500,
                },
            ],
            counters: vec![
                ("backend.pe.spills".into(), 4),
                ("frontend.tokens".into(), 123),
            ],
            gauges: vec![("backend.pe.vreg_pressure".into(), 6.0)],
        }
    }

    #[test]
    fn json_sink_round_trips() {
        let mut sink = JsonSink::new(Vec::new());
        let report = sample_report();
        sink.emit(&report).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(TelemetryReport::from_json(text.trim()).unwrap(), report);
    }

    #[test]
    fn pretty_sink_field_order_is_stable() {
        let mut sink = PrettySink::new(Vec::new());
        sink.emit(&sample_report()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        // Golden structure with durations stripped: section headers,
        // indentation and name order are the stable contract.
        let skeleton: Vec<String> = text
            .lines()
            .map(|l| l.split_whitespace().next().unwrap_or("").to_string())
            .collect();
        assert_eq!(
            skeleton,
            vec![
                "phase",
                "compile",
                "compile.frontend",
                "compile.backend",
                "counters",
                "backend.pe.spills",
                "frontend.tokens",
                "gauges",
                "backend.pe.vreg_pressure",
            ]
        );
        // Indentation tracks span depth.
        assert!(text.contains("\n  compile "));
        assert!(text.contains("\n    compile.frontend "));
    }

    #[test]
    fn pretty_sink_sorts_unsorted_reports() {
        let report = TelemetryReport {
            spans: Vec::new(),
            counters: vec![("zeta".into(), 2), ("alpha".into(), 1)],
            gauges: vec![("late".into(), 1.0), ("early".into(), 0.5)],
        };
        let mut sink = PrettySink::new(Vec::new());
        sink.emit(&report).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        assert!(text.find("early").unwrap() < text.find("late").unwrap());
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(950), "950ns");
        assert_eq!(format_duration(1_500), "1.500us");
        assert_eq!(format_duration(2_500_000), "2.500ms");
        assert_eq!(format_duration(3_000_000_000), "3.000s");
    }

    #[test]
    fn emit_via_telemetry_handle() {
        let mut tel = Telemetry::new();
        let id = tel.start("compile");
        tel.count("frontend.tokens", 7);
        tel.finish(id);
        let mut sink = JsonSink::new(Vec::new());
        tel.emit(&mut sink).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed = TelemetryReport::from_json(text.trim()).unwrap();
        assert_eq!(parsed.counter("frontend.tokens"), Some(7));
        assert!(parsed.span_nanos("compile").is_some());
    }
}
