//! The flight recorder: typed trace events on the simulated clock.
//!
//! The paper's argument is built on knowing *where cycles go*; spans and
//! counters (see [`crate::Telemetry`]) aggregate that, but pipeline
//! tuning also wants the event-level record — which node did what,
//! when, and because of which message. This module is that record:
//!
//! * [`TraceEvent`] — typed events stamped with the **deterministic
//!   simulated clock** ([`ClockDomain::Superstep`] for the MIMD engine,
//!   [`ClockDomain::Cycle`] for the CM/2 simulator). Superstep begin/end
//!   per node, message send/recv carrying `(seq, src, dst)` so sends
//!   pair with receives as causal flow edges, halo/reduction/router
//!   phases, fault injections, checkpoint/restore, and per-pass
//!   middle-end events.
//! * [`Trace`] — the ordered event log with two exporters:
//!   [`Trace::to_chrome_json`] (Chrome trace-event JSON: tracks =
//!   nodes, slices = supersteps/phases, flow events = messages; loads
//!   directly in Perfetto or `chrome://tracing`) and
//!   [`Trace::to_jsonl`] (compact JSONL for programmatic diffing).
//! * [`TraceSink`] — where traces go once a run finishes:
//!   [`ChromeTraceSink`], [`JsonlTraceSink`], or an in-memory
//!   [`TraceBuffer`] for tests and harnesses.
//!
//! Every timestamp derives from the simulated clock, never wall time,
//! so two identical runs produce byte-identical traces and
//! [`Trace::digest`] is a stable fingerprint of a run's behaviour.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::json::Json;

/// Which simulated clock stamps a trace's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// MIMD time: one tick per runtime call (superstep).
    Superstep,
    /// CM/2 time: accumulated machine cycles.
    Cycle,
}

impl ClockDomain {
    /// Stable lower-case name used in both export formats.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockDomain::Superstep => "superstep",
            ClockDomain::Cycle => "cycle",
        }
    }
}

/// Who an event happened on — one track per actor in the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Actor {
    /// The front-end host (partition manager / control processor).
    Host,
    /// One processing node of a MIMD partition.
    Node(usize),
    /// The whole lockstep PE array of the SIMD machine.
    Machine,
    /// The compiler (per-pass middle-end events).
    Compiler,
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Actor::Host => write!(f, "host"),
            Actor::Node(k) => write!(f, "node{k}"),
            Actor::Machine => write!(f, "machine"),
            Actor::Compiler => write!(f, "compiler"),
        }
    }
}

impl Actor {
    /// Chrome process id: the compiler is its own process, everything
    /// that runs on the machine shares one.
    fn pid(self) -> u64 {
        match self {
            Actor::Compiler => 0,
            _ => 1,
        }
    }

    /// Chrome thread id (the track within the process).
    fn tid(self) -> u64 {
        match self {
            Actor::Compiler | Actor::Host => 0,
            Actor::Machine => 1,
            Actor::Node(k) => k as u64 + 1,
        }
    }

    /// Human track label for the Chrome `thread_name` metadata.
    fn track_name(self) -> String {
        match self {
            Actor::Host => "host".into(),
            Actor::Node(k) => format!("node {k}"),
            Actor::Machine => "pe array".into(),
            Actor::Compiler => "passes".into(),
        }
    }
}

/// One event in a [`Trace`]. All clock fields are in the trace's
/// [`ClockDomain`] units.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A phase slice `[start, end)` on `actor`'s track: a superstep's
    /// dispatch/halo/reduce/router/host work on a MIMD node, or a
    /// runtime call's cycle interval on the CM/2.
    Phase {
        /// Whose track the slice belongs on.
        actor: Actor,
        /// Dotted phase label, e.g. `dispatch.b0` or `halo`.
        label: String,
        /// Clock value at phase begin.
        start: u64,
        /// Clock value at phase end (`>= start`).
        end: u64,
    },
    /// A message injected into the network — the `s` end of a causal
    /// flow edge, paired with the [`TraceEvent::Recv`] of equal `seq`.
    Send {
        /// Network-wide sequence number (unique per message).
        seq: u64,
        /// Sending actor.
        src: Actor,
        /// Receiving actor.
        dst: Actor,
        /// Superstep (or clock value) of the exchange.
        step: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Message kind (`halo`, `broadcast`, `reduce-tree`, …).
        kind: String,
    },
    /// A message accepted by its destination — the `f` end of the flow
    /// edge started by the [`TraceEvent::Send`] of equal `seq`.
    Recv {
        /// Network-wide sequence number (matches the send).
        seq: u64,
        /// Sending actor.
        src: Actor,
        /// Receiving actor.
        dst: Actor,
        /// Superstep (or clock value) of the exchange.
        step: u64,
        /// Payload size in bytes.
        bytes: u64,
        /// Message kind (`halo`, `broadcast`, `reduce-tree`, …).
        kind: String,
    },
    /// A deterministic fault injection (message drop/duplicate/delay,
    /// node kill or stall) from an active fault plan.
    Fault {
        /// Clock value at injection.
        step: u64,
        /// The actor the fault hit.
        actor: Actor,
        /// Fault kind (`drop`, `duplicate`, `delay`, `kill`, `stall`).
        kind: String,
    },
    /// A recovery checkpoint was taken before a doomed superstep.
    Checkpoint {
        /// Clock value at the checkpoint.
        step: u64,
        /// Bytes captured.
        bytes: u64,
    },
    /// State was restored from the superstep's checkpoint after a kill.
    Restore {
        /// Clock value at the restore.
        step: u64,
        /// Bytes restored.
        bytes: u64,
    },
    /// One middle-end pass execution (clocked by its ordinal, on the
    /// [`Actor::Compiler`] track).
    Pass {
        /// Zero-based position in the pass pipeline.
        ordinal: u64,
        /// The pass's registered name.
        name: String,
        /// Rewrites the pass applied.
        rewrites: u64,
    },
}

/// An ordered, append-only event log on one simulated clock.
///
/// # Merge-order contract
///
/// Record order is significant: [`Trace::digest`] hashes events in the
/// order they were recorded, so two traces holding the same events in
/// different orders have different digests. A producer that computes
/// events concurrently (e.g. the MIMD engine's `host_threads > 1`
/// compute phase) must therefore serialise them into one canonical
/// order before recording — the convention across this workspace is
/// **sorted by actor id, then per-actor sequence number**, applied at
/// the superstep barrier. That keeps digests bit-identical at any
/// host-thread count. (Telemetry makes the opposite choice: counter
/// and gauge absorption is order-independent — see
/// [`crate::Telemetry::absorb`].)
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    clock: ClockDomain,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace on the given clock.
    pub fn new(clock: ClockDomain) -> Self {
        Trace {
            clock,
            events: Vec::new(),
        }
    }

    /// The clock domain stamping this trace's events.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Append one event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Prepend events (used to put compile-time pass events ahead of
    /// the run's machine events).
    pub fn prepend(&mut self, events: Vec<TraceEvent>) {
        let mut all = events;
        all.append(&mut self.events);
        self.events = all;
    }

    /// Number of [`TraceEvent::Send`] events.
    pub fn sends(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Send { .. }))
            .count()
    }

    /// Number of [`TraceEvent::Recv`] events.
    pub fn recvs(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Recv { .. }))
            .count()
    }

    /// Check the causal-flow invariant: every send pairs with exactly
    /// one receive of the same `seq`, and vice versa. Returns the
    /// number of paired messages.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn verify_flow_pairing(&self) -> Result<usize, String> {
        use std::collections::BTreeMap;
        let mut sends: BTreeMap<u64, usize> = BTreeMap::new();
        let mut recvs: BTreeMap<u64, usize> = BTreeMap::new();
        for e in &self.events {
            match e {
                TraceEvent::Send { seq, .. } => *sends.entry(*seq).or_insert(0) += 1,
                TraceEvent::Recv { seq, .. } => *recvs.entry(*seq).or_insert(0) += 1,
                _ => {}
            }
        }
        for (seq, n) in &sends {
            if *n != 1 {
                return Err(format!("seq {seq} sent {n} times"));
            }
            match recvs.get(seq) {
                Some(1) => {}
                Some(n) => return Err(format!("seq {seq} received {n} times")),
                None => return Err(format!("seq {seq} sent but never received")),
            }
        }
        for seq in recvs.keys() {
            if !sends.contains_key(seq) {
                return Err(format!("seq {seq} received but never sent"));
            }
        }
        Ok(sends.len())
    }

    /// Derived Chrome timestamp in microseconds: supersteps are scaled
    /// so each superstep occupies 1000µs of display time; cycles map
    /// 1:1 (one µs per cycle keeps slices readable at CM/2 scale).
    fn ts_scale(&self) -> u64 {
        match self.clock {
            ClockDomain::Superstep => 1000,
            ClockDomain::Cycle => 1,
        }
    }

    /// Export as a Chrome trace-event JSON document (object format),
    /// loadable in Perfetto or `chrome://tracing`. Tracks are actors,
    /// slices are phases, flow arrows (`s`/`f` pairs keyed by message
    /// `seq`) are messages. All timestamps derive from the simulated
    /// clock, so the output is byte-identical across identical runs.
    pub fn to_chrome_json(&self) -> String {
        let scale = self.ts_scale();
        let mut events: Vec<Json> = Vec::new();

        // Track metadata: name processes and every thread we will use.
        let mut actors: Vec<Actor> = Vec::new();
        for e in &self.events {
            let mut seen = |a: Actor| {
                if !actors.contains(&a) {
                    actors.push(a);
                }
            };
            match e {
                TraceEvent::Phase { actor, .. } | TraceEvent::Fault { actor, .. } => seen(*actor),
                TraceEvent::Send { src, dst, .. } | TraceEvent::Recv { src, dst, .. } => {
                    seen(*src);
                    seen(*dst);
                }
                TraceEvent::Checkpoint { .. } | TraceEvent::Restore { .. } => seen(Actor::Host),
                TraceEvent::Pass { .. } => seen(Actor::Compiler),
            }
        }
        actors.sort();
        let mut pids: Vec<u64> = actors.iter().map(|a| a.pid()).collect();
        pids.dedup();
        for pid in pids {
            let name = if pid == 0 { "compiler" } else { "machine" };
            events.push(meta_event("process_name", pid, 0, name));
        }
        for a in &actors {
            events.push(meta_event("thread_name", a.pid(), a.tid(), &a.track_name()));
        }

        for e in &self.events {
            match e {
                TraceEvent::Phase {
                    actor,
                    label,
                    start,
                    end,
                } => {
                    events.push(Json::Obj(vec![
                        ("ph".into(), Json::Str("X".into())),
                        ("pid".into(), Json::Num(actor.pid() as f64)),
                        ("tid".into(), Json::Num(actor.tid() as f64)),
                        ("ts".into(), Json::Num((start * scale) as f64)),
                        ("dur".into(), Json::Num(((end - start) * scale) as f64)),
                        ("name".into(), Json::Str(label.clone())),
                        ("cat".into(), Json::Str("phase".into())),
                    ]));
                }
                TraceEvent::Send {
                    seq,
                    src,
                    dst,
                    step,
                    bytes,
                    kind,
                } => {
                    events.push(flow_event(
                        "s", *seq, *src, *dst, *step, *bytes, kind, scale,
                    ));
                }
                TraceEvent::Recv {
                    seq,
                    src,
                    dst,
                    step,
                    bytes,
                    kind,
                } => {
                    events.push(flow_event(
                        "f", *seq, *src, *dst, *step, *bytes, kind, scale,
                    ));
                }
                TraceEvent::Fault { step, actor, kind } => {
                    events.push(Json::Obj(vec![
                        ("ph".into(), Json::Str("i".into())),
                        ("s".into(), Json::Str("t".into())),
                        ("pid".into(), Json::Num(actor.pid() as f64)),
                        ("tid".into(), Json::Num(actor.tid() as f64)),
                        ("ts".into(), Json::Num((step * scale + scale / 2) as f64)),
                        ("name".into(), Json::Str(format!("fault.{kind}"))),
                        ("cat".into(), Json::Str("fault".into())),
                    ]));
                }
                TraceEvent::Checkpoint { step, bytes } => {
                    events.push(instant_event("checkpoint", *step, *bytes, scale));
                }
                TraceEvent::Restore { step, bytes } => {
                    events.push(instant_event("restore", *step, *bytes, scale));
                }
                TraceEvent::Pass {
                    ordinal,
                    name,
                    rewrites,
                } => {
                    events.push(Json::Obj(vec![
                        ("ph".into(), Json::Str("X".into())),
                        ("pid".into(), Json::Num(0.0)),
                        ("tid".into(), Json::Num(0.0)),
                        ("ts".into(), Json::Num((ordinal * 1000) as f64)),
                        ("dur".into(), Json::Num(1000.0)),
                        ("name".into(), Json::Str(name.clone())),
                        ("cat".into(), Json::Str("pass".into())),
                        (
                            "args".into(),
                            Json::Obj(vec![("rewrites".into(), Json::Num(*rewrites as f64))]),
                        ),
                    ]));
                }
            }
        }

        Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            (
                "otherData".into(),
                Json::Obj(vec![(
                    "clock".into(),
                    Json::Str(self.clock.as_str().into()),
                )]),
            ),
            ("traceEvents".into(), Json::Arr(events)),
        ])
        .to_string()
    }

    /// Export as compact JSONL: a header line carrying the clock
    /// domain, then one JSON object per event in record order. The
    /// format diffs line-by-line and is the input to [`Trace::digest`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::Obj(vec![
            ("ev".into(), Json::Str("trace".into())),
            ("clock".into(), Json::Str(self.clock.as_str().into())),
            ("events".into(), Json::Num(self.events.len() as f64)),
        ]);
        out.push_str(&header.to_string());
        out.push('\n');
        for e in &self.events {
            let obj = match e {
                TraceEvent::Phase {
                    actor,
                    label,
                    start,
                    end,
                } => Json::Obj(vec![
                    ("ev".into(), Json::Str("phase".into())),
                    ("actor".into(), Json::Str(actor.to_string())),
                    ("label".into(), Json::Str(label.clone())),
                    ("start".into(), Json::Num(*start as f64)),
                    ("end".into(), Json::Num(*end as f64)),
                ]),
                TraceEvent::Send {
                    seq,
                    src,
                    dst,
                    step,
                    bytes,
                    kind,
                } => message_line("send", *seq, *src, *dst, *step, *bytes, kind),
                TraceEvent::Recv {
                    seq,
                    src,
                    dst,
                    step,
                    bytes,
                    kind,
                } => message_line("recv", *seq, *src, *dst, *step, *bytes, kind),
                TraceEvent::Fault { step, actor, kind } => Json::Obj(vec![
                    ("ev".into(), Json::Str("fault".into())),
                    ("step".into(), Json::Num(*step as f64)),
                    ("actor".into(), Json::Str(actor.to_string())),
                    ("kind".into(), Json::Str(kind.clone())),
                ]),
                TraceEvent::Checkpoint { step, bytes } => Json::Obj(vec![
                    ("ev".into(), Json::Str("checkpoint".into())),
                    ("step".into(), Json::Num(*step as f64)),
                    ("bytes".into(), Json::Num(*bytes as f64)),
                ]),
                TraceEvent::Restore { step, bytes } => Json::Obj(vec![
                    ("ev".into(), Json::Str("restore".into())),
                    ("step".into(), Json::Num(*step as f64)),
                    ("bytes".into(), Json::Num(*bytes as f64)),
                ]),
                TraceEvent::Pass {
                    ordinal,
                    name,
                    rewrites,
                } => Json::Obj(vec![
                    ("ev".into(), Json::Str("pass".into())),
                    ("ordinal".into(), Json::Num(*ordinal as f64)),
                    ("name".into(), Json::Str(name.clone())),
                    ("rewrites".into(), Json::Num(*rewrites as f64)),
                ]),
            };
            out.push_str(&obj.to_string());
            out.push('\n');
        }
        out
    }

    /// A deterministic fingerprint of the run's behaviour: FNV-1a (64
    /// bit) over the JSONL export, rendered as `fnv1a64:<hex>`.
    pub fn digest(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_jsonl().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("fnv1a64:{hash:016x}")
    }
}

fn meta_event(what: &str, pid: u64, tid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(pid as f64)),
        ("tid".into(), Json::Num(tid as f64)),
        ("name".into(), Json::Str(what.into())),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(name.into()))]),
        ),
    ])
}

#[allow(clippy::too_many_arguments)]
fn flow_event(
    ph: &str,
    seq: u64,
    src: Actor,
    dst: Actor,
    step: u64,
    bytes: u64,
    kind: &str,
    scale: u64,
) -> Json {
    // The send sits earlier in the superstep's display window than the
    // receive so Perfetto draws the arrow forward in time.
    let (actor, quarter) = if ph == "s" { (src, 1) } else { (dst, 3) };
    let mut fields = vec![
        ("ph".into(), Json::Str(ph.into())),
        ("pid".into(), Json::Num(actor.pid() as f64)),
        ("tid".into(), Json::Num(actor.tid() as f64)),
        (
            "ts".into(),
            Json::Num((step * scale + quarter * scale / 4) as f64),
        ),
        ("id".into(), Json::Num(seq as f64)),
        ("name".into(), Json::Str(kind.into())),
        ("cat".into(), Json::Str("msg".into())),
        (
            "args".into(),
            Json::Obj(vec![("bytes".into(), Json::Num(bytes as f64))]),
        ),
    ];
    if ph == "f" {
        // Bind to the enclosing slice rather than the next one.
        fields.insert(1, ("bp".into(), Json::Str("e".into())));
    }
    Json::Obj(fields)
}

fn instant_event(name: &str, step: u64, bytes: u64, scale: u64) -> Json {
    Json::Obj(vec![
        ("ph".into(), Json::Str("i".into())),
        ("s".into(), Json::Str("g".into())),
        ("pid".into(), Json::Num(1.0)),
        ("tid".into(), Json::Num(0.0)),
        ("ts".into(), Json::Num((step * scale + scale / 2) as f64)),
        ("name".into(), Json::Str(name.into())),
        ("cat".into(), Json::Str("recovery".into())),
        (
            "args".into(),
            Json::Obj(vec![("bytes".into(), Json::Num(bytes as f64))]),
        ),
    ])
}

fn message_line(
    ev: &str,
    seq: u64,
    src: Actor,
    dst: Actor,
    step: u64,
    bytes: u64,
    kind: &str,
) -> Json {
    Json::Obj(vec![
        ("ev".into(), Json::Str(ev.into())),
        ("seq".into(), Json::Num(seq as f64)),
        ("src".into(), Json::Str(src.to_string())),
        ("dst".into(), Json::Str(dst.to_string())),
        ("step".into(), Json::Num(step as f64)),
        ("bytes".into(), Json::Num(bytes as f64)),
        ("kind".into(), Json::Str(kind.into())),
    ])
}

/// Consumes a finished run's trace (the flight-recorder counterpart of
/// [`crate::EventSink`]).
pub trait TraceSink {
    /// Deliver one trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    fn emit(&mut self, trace: &Trace) -> io::Result<()>;
}

/// Writes Chrome trace-event JSON (see [`Trace::to_chrome_json`]).
pub struct ChromeTraceSink<W: Write> {
    writer: W,
}

impl ChromeTraceSink<File> {
    /// A sink that writes (truncating) to the file at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(ChromeTraceSink {
            writer: File::create(path)?,
        })
    }
}

impl<W: Write> ChromeTraceSink<W> {
    /// A sink over any writer.
    pub fn new(writer: W) -> Self {
        ChromeTraceSink { writer }
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn emit(&mut self, trace: &Trace) -> io::Result<()> {
        writeln!(self.writer, "{}", trace.to_chrome_json())?;
        self.writer.flush()
    }
}

/// Writes compact JSONL (see [`Trace::to_jsonl`]).
pub struct JsonlTraceSink<W: Write> {
    writer: W,
}

impl JsonlTraceSink<File> {
    /// A sink that writes (truncating) to the file at `path`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceSink {
            writer: File::create(path)?,
        })
    }
}

impl<W: Write> JsonlTraceSink<W> {
    /// A sink over any writer.
    pub fn new(writer: W) -> Self {
        JsonlTraceSink { writer }
    }

    /// Unwrap the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlTraceSink<W> {
    fn emit(&mut self, trace: &Trace) -> io::Result<()> {
        self.writer.write_all(trace.to_jsonl().as_bytes())?;
        self.writer.flush()
    }
}

/// An in-memory sink: keeps a clone of the delivered trace for tests
/// and harnesses to inspect.
///
/// The buffered trace inherits the producer's merge-order contract
/// (see [`Trace`]): events arrive already serialised by actor id, then
/// sequence number, so `buffer.trace.digest()` compares stably across
/// runs and across host-thread counts.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    /// The last trace delivered, if any.
    pub trace: Option<Trace>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }
}

impl TraceSink for TraceBuffer {
    fn emit(&mut self, trace: &Trace) -> io::Result<()> {
        self.trace = Some(trace.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Trace {
        let mut t = Trace::new(ClockDomain::Superstep);
        t.record(TraceEvent::Phase {
            actor: Actor::Node(0),
            label: "dispatch.b0".into(),
            start: 1,
            end: 2,
        });
        t.record(TraceEvent::Send {
            seq: 0,
            src: Actor::Node(0),
            dst: Actor::Node(1),
            step: 2,
            bytes: 64,
            kind: "halo".into(),
        });
        t.record(TraceEvent::Recv {
            seq: 0,
            src: Actor::Node(0),
            dst: Actor::Node(1),
            step: 2,
            bytes: 64,
            kind: "halo".into(),
        });
        t.record(TraceEvent::Checkpoint {
            step: 3,
            bytes: 128,
        });
        t.record(TraceEvent::Fault {
            step: 3,
            actor: Actor::Node(1),
            kind: "kill".into(),
        });
        t.record(TraceEvent::Restore {
            step: 3,
            bytes: 128,
        });
        t.record(TraceEvent::Pass {
            ordinal: 0,
            name: "comm-split".into(),
            rewrites: 2,
        });
        t
    }

    #[test]
    fn digest_is_sensitive_to_record_order() {
        // Why the merge-order contract exists: the digest hashes events
        // in record order, so a parallel producer that merged shard
        // events in scheduling order (instead of actor-id-then-seq
        // order) would leak thread timing into the digest.
        let send = |src: usize, seq: u64| TraceEvent::Send {
            seq,
            src: Actor::Node(src),
            dst: Actor::Node(src + 1),
            step: 1,
            bytes: 8,
            kind: "halo".into(),
        };
        let mut canonical = Trace::new(ClockDomain::Superstep);
        canonical.record(send(0, 0));
        canonical.record(send(1, 0));
        let mut same = Trace::new(ClockDomain::Superstep);
        same.record(send(0, 0));
        same.record(send(1, 0));
        let mut swapped = Trace::new(ClockDomain::Superstep);
        swapped.record(send(1, 0));
        swapped.record(send(0, 0));
        assert_eq!(canonical.digest(), same.digest());
        assert_ne!(canonical.digest(), swapped.digest());
    }

    #[test]
    fn chrome_export_is_valid_json_with_flow_pairs() {
        let doc = json::parse(&sample().to_chrome_json()).unwrap();
        let json::Json::Obj(fields) = doc else {
            panic!("object expected")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let json::Json::Arr(items) = events else {
            panic!("array expected")
        };
        let mut sends = 0;
        let mut recvs = 0;
        for item in items {
            let json::Json::Obj(f) = item else {
                panic!("event object expected")
            };
            match f.iter().find(|(k, _)| k == "ph").map(|(_, v)| v) {
                Some(json::Json::Str(s)) if s == "s" => sends += 1,
                Some(json::Json::Str(s)) if s == "f" => recvs += 1,
                _ => {}
            }
        }
        assert_eq!(sends, 1);
        assert_eq!(recvs, 1);
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let text = sample().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + sample().len());
        for line in lines {
            json::parse(line).unwrap();
        }
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.digest(), b.digest());
        let mut c = sample();
        c.record(TraceEvent::Checkpoint { step: 9, bytes: 1 });
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn flow_pairing_verifies_and_rejects() {
        assert_eq!(sample().verify_flow_pairing().unwrap(), 1);
        let mut t = sample();
        t.record(TraceEvent::Send {
            seq: 7,
            src: Actor::Host,
            dst: Actor::Node(0),
            step: 4,
            bytes: 8,
            kind: "broadcast".into(),
        });
        assert!(t.verify_flow_pairing().is_err());
    }

    #[test]
    fn buffer_sink_captures() {
        let mut sink = TraceBuffer::new();
        sink.emit(&sample()).unwrap();
        assert_eq!(sink.trace.as_ref().unwrap().len(), sample().len());
    }

    #[test]
    fn prepend_puts_pass_events_first() {
        let mut t = Trace::new(ClockDomain::Superstep);
        t.record(TraceEvent::Checkpoint { step: 1, bytes: 0 });
        t.prepend(vec![TraceEvent::Pass {
            ordinal: 0,
            name: "p".into(),
            rewrites: 0,
        }]);
        assert!(matches!(t.events()[0], TraceEvent::Pass { .. }));
        assert_eq!(t.len(), 2);
    }
}
