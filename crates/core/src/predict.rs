//! Static per-target prediction: what a run *will* count, before it
//! runs.
//!
//! The backend's [`StaticProfile`] is an exact interpretation of the
//! compiled host program with no data — every dispatch, shift, router
//! move, reduction and element touch the host executor would perform,
//! with the geometry of each. This module folds that profile into the
//! counters each target's machine keeps, so a caller can compare a
//! prediction against [`Run`](crate::Run) reports and the flight
//! recorder **bit-exactly**:
//!
//! * CM/2: `dispatches`, `comm_calls`, `reductions`;
//! * CM/5 MIMD: those plus `supersteps`, `messages` (dispatch fan-out,
//!   per-shift halo pairs from the shard geometry, reduction trees,
//!   router batches, host element traffic), `halo_exchanges` and
//!   `router_batches`;
//! * accelerator: `kernel_launches`, `h2d_transfers`, `d2h_transfers`,
//!   `comm_calls`, `reductions`.
//!
//! The reconciliation suite (`tests/comm_plan_differential.rs`) holds
//! every one of these equal to the dynamic counters on every shipped
//! workload, pipeline, node count and target.

pub use f90y_backend::plan::{PlanError, StaticProfile};
use f90y_mimd::shard::halo_messages;

use crate::{Executable, Target};

/// Predicted machine counters for one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetPrediction {
    /// What a [`Target::Cm2`] run will count.
    Cm2 {
        /// Node-block dispatches.
        dispatches: u64,
        /// Grid-shift plus router communication calls.
        comm_calls: u64,
        /// Reduction intrinsics executed.
        reductions: u64,
    },
    /// What a [`Target::Cm5Mimd`] run will count.
    Cm5 {
        /// Node-block dispatches.
        dispatches: u64,
        /// Grid-shift plus router communication calls.
        comm_calls: u64,
        /// Outer-axis shifts that exchanged at least one halo message.
        halo_exchanges: u64,
        /// All-to-all router batches.
        router_batches: u64,
        /// Reduction intrinsics executed.
        reductions: u64,
        /// Bulk-synchronous supersteps.
        supersteps: u64,
        /// Total messages on the wire (equals the flight recorder's
        /// `Send` event count).
        messages: u64,
    },
    /// What a [`Target::Accel`] run will count.
    Accel {
        /// Kernel launches.
        kernel_launches: u64,
        /// Host-to-device transfers.
        h2d_transfers: u64,
        /// Device-to-host transfers.
        d2h_transfers: u64,
        /// Device-side communication calls (shifts, gathers,
        /// coordinate generations).
        comm_calls: u64,
        /// Reduction intrinsics executed.
        reductions: u64,
    },
}

impl TargetPrediction {
    /// The prediction as abstract scheduling cost units — what one run
    /// is worth to an admission controller. Supersteps on the MIMD
    /// engine; dispatch + communication + reduction calls on the CM/2;
    /// launches + transfers + calls on the accelerator.
    #[must_use]
    pub fn cost_units(&self) -> u64 {
        match *self {
            TargetPrediction::Cm2 {
                dispatches,
                comm_calls,
                reductions,
            } => dispatches + comm_calls + reductions,
            TargetPrediction::Cm5 { supersteps, .. } => supersteps,
            TargetPrediction::Accel {
                kernel_launches,
                h2d_transfers,
                d2h_transfers,
                comm_calls,
                reductions,
            } => kernel_launches + h2d_transfers + d2h_transfers + comm_calls + reductions,
        }
    }
}

/// Fold a static profile into the counters a target's machine keeps.
#[must_use]
pub fn fold(profile: &StaticProfile, target: Target) -> TargetPrediction {
    match target {
        Target::Cm2 { .. } => TargetPrediction::Cm2 {
            dispatches: profile.dispatch_calls() as u64,
            comm_calls: (profile.shift_calls() + profile.router_moves) as u64,
            reductions: profile.reduces as u64,
        },
        Target::Cm5Mimd { nodes } => {
            let n = nodes.max(1) as u64;
            let dispatches = profile.dispatch_calls() as u64;
            let shifts = profile.shift_calls() as u64;
            let reductions = profile.reduces as u64;
            let router_batches = profile.router_moves as u64;
            let host_elems = profile.host_elem_reads as u64 + profile.host_elem_writes as u64;

            let mut halo_exchanges = 0u64;
            let mut halo_msgs = 0u64;
            for s in &profile.shifts {
                if s.axis != 0 {
                    continue; // inner-axis shifts are slab-local
                }
                let rows = s.dims.first().copied().unwrap_or(0);
                let m = halo_messages(rows, nodes.max(1), s.shift, !s.eoshift) as u64;
                halo_msgs += m;
                if m > 0 {
                    halo_exchanges += 1;
                }
            }

            let router_msgs = if n > 1 {
                router_batches * n * (n - 1)
            } else {
                0
            };
            TargetPrediction::Cm5 {
                dispatches,
                // The MIMD engine counts reductions as comm calls too
                // (they ride its combine tree).
                comm_calls: shifts + router_batches + reductions,
                halo_exchanges,
                router_batches,
                reductions,
                supersteps: dispatches + shifts + reductions + router_batches + host_elems,
                messages: dispatches * n + halo_msgs + reductions * n + router_msgs + host_elems,
            }
        }
        Target::Accel { .. } => TargetPrediction::Accel {
            kernel_launches: profile.dispatch_calls() as u64,
            h2d_transfers: (profile.array_writes + profile.allocs_from + profile.host_elem_writes)
                as u64,
            d2h_transfers: (profile.array_reads + profile.host_elem_reads + profile.reduces) as u64,
            comm_calls: (profile.shift_calls() + profile.router_moves + profile.coord_keys.len())
                as u64,
            reductions: profile.reduces as u64,
        },
    }
}

impl Executable {
    /// The exact static machine-call profile of the compiled program:
    /// every machine call the host executor will make, derived without
    /// running. Fails honestly with [`PlanError::DataDependent`] when
    /// control flow reads machine data, rather than guessing.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when no exact static plan exists.
    pub fn static_profile(&self) -> Result<StaticProfile, PlanError> {
        f90y_backend::plan::profile(&self.compiled)
    }

    /// Predict the machine counters of a run on `target` — the static
    /// side of the plan↔trace reconciliation.
    ///
    /// # Errors
    ///
    /// [`PlanError`] when no exact static plan exists.
    pub fn predict(&self, target: Target) -> Result<TargetPrediction, PlanError> {
        Ok(fold(&self.static_profile()?, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, Pipeline};

    #[test]
    fn predictions_match_a_real_run_on_all_three_targets() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile(
                "REAL A(16,16), B(16,16), S\nB = CSHIFT(A, 1, 1) + CSHIFT(A, 1, 2)\nS = SUM(B)\n",
            )
            .unwrap();

        let p = exe.predict(Target::Cm2 { nodes: 16 }).unwrap();
        let r = exe
            .session(Target::Cm2 { nodes: 16 })
            .run()
            .unwrap()
            .into_cm2();
        assert_eq!(
            p,
            TargetPrediction::Cm2 {
                dispatches: r.stats.dispatches,
                comm_calls: r.stats.comm_calls,
                reductions: r.stats.reductions,
            }
        );

        let p = exe.predict(Target::Cm5Mimd { nodes: 16 }).unwrap();
        let r = exe
            .session(Target::Cm5Mimd { nodes: 16 })
            .run()
            .unwrap()
            .into_mimd();
        assert_eq!(
            p,
            TargetPrediction::Cm5 {
                dispatches: r.stats.dispatches,
                comm_calls: r.stats.comm_calls,
                halo_exchanges: r.stats.halo_exchanges,
                router_batches: r.stats.router_batches,
                reductions: r.stats.reductions,
                supersteps: r.stats.supersteps,
                messages: r.stats.messages,
            }
        );

        let p = exe.predict(Target::Accel { nodes: 16 }).unwrap();
        let r = exe
            .session(Target::Accel { nodes: 16 })
            .run()
            .unwrap()
            .into_accel();
        assert_eq!(
            p,
            TargetPrediction::Accel {
                kernel_launches: r.stats.kernel_launches,
                h2d_transfers: r.stats.h2d_transfers,
                d2h_transfers: r.stats.d2h_transfers,
                comm_calls: r.stats.comm_calls,
                reductions: r.stats.reductions,
            }
        );
    }

    #[test]
    fn cost_units_are_positive_for_real_work() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(8)\nA = A + 1.0\n")
            .unwrap();
        for target in [
            Target::Cm2 { nodes: 8 },
            Target::Cm5Mimd { nodes: 8 },
            Target::Accel { nodes: 8 },
        ] {
            assert!(exe.predict(target).unwrap().cost_units() > 0, "{target:?}");
        }
    }
}
