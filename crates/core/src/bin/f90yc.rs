//! `f90yc` — the Fortran-90-Y command-line compiler driver.
//!
//! ```text
//! f90yc [options] <file.f90 | ->
//! f90yc --list-targets
//!
//!   --pipeline f90y|cmf|starlisp   compiler to model       (default f90y)
//!   --target cm2|cm5|accel         execution engine         (default cm2)
//!   --list-targets                 print every registered target manifest
//!                                  (name, vector width, topology, node
//!                                  constraints) and exit
//!   --nodes N                      nodes, power of 2        (default 2048)
//!   --host-threads N               host worker threads for the MIMD
//!                                  compute phase (cm5 only, default 1;
//!                                  results are bit-identical at any N)
//!   --emit nir|opt|peac|host       print a stage and stop
//!   --lint[=deny|=json]            print diagnostics and stop (W-RACE,
//!                                  W-UNINIT, W-DEADSTORE, W-WIDE-HALO,
//!                                  W-REDUNDANT-COMM, W-ALLTOALL; =deny
//!                                  exits 1 on any, =json prints the
//!                                  f90y-lint-v1 document)
//!   --analyze-comm[=json]          print the static communication plan —
//!                                  classified ops, per-target predicted
//!                                  counters at --nodes, modelled comm
//!                                  seconds — and stop (=json prints the
//!                                  f90y-comm-plan-v1 document)
//!   --passes a,b,c                 override the middle-end pass list
//!   --emit-after <pass>            print the NIR after that pass and stop
//!   --print-ir-after-all           print the NIR after every pass, then go on
//!   --verify-passes                check types/shapes/behaviour between passes
//!   --audit-passes                 check def-use legality between passes
//!   --run                          execute and report       (default)
//!   --validate                     also check against the reference evaluator
//!   --finals a,b,c                 print these variables after the run
//!   --timings                      print a phase-timing/counter table on stderr
//!   --emit-telemetry <path>        write the telemetry report as JSON
//!   --emit-trace <path>            write a Chrome trace-event JSON flight
//!                                  recording of the run (open in Perfetto)
//!   --emit-trace-jsonl <path>      write the flight recording as compact JSONL
//!   --profile                      print a PEAC opcode/cycle hot-spot report
//!                                  (cm2 only), cross-checked to the cycle
//!   --fault-seed S                 seed a deterministic fault plan (cm5 only)
//!   --fault-drop P                 drop P‰ of messages      (implies a plan)
//!   --fault-kill STEP:NODE         kill NODE at superstep STEP (repeatable)
//! ```
//!
//! Pass names: `comm-split`, `comm-cse`, `mask-pad`, `blocking-reorder`,
//! `blocking-fuse`, `dce-temps`, plus the pseudo-name `blocking` for the
//! reorder/fuse fixpoint group. `--passes`, `--emit-after` and
//! `--verify-passes` also accept `--flag=value` spelling; inter-pass
//! verification can be forced globally with `F90Y_VERIFY_PASSES=1` and
//! the static def-use audit with `F90Y_AUDIT_PASSES=1`.
//!
//! `--lint` parses and lowers, then runs the `f90y-analysis`
//! diagnostics engine over the lowered NIR (`W-RACE`, `W-UNINIT`,
//! `W-DEADSTORE`) plus the communication lints over the *optimized*
//! NIR (`W-WIDE-HALO`, `W-REDUNDANT-COMM`, `W-ALLTOALL`, judged
//! against the selected `--target`'s topology): each warning carries a
//! stable code and the offending statement, and `--timings`
//! additionally shows the `analysis.*` counters. `--lint=deny` turns
//! any warning into exit status 1 — the CI spelling.
//!
//! `--lint=json` emits one `f90y-lint-v1` JSON document on stdout:
//!
//! ```json
//! {"schema":"f90y-lint-v1","clean":false,"stmts_analyzed":12,"facts":34,
//!  "warnings":1,"diagnostics":[{"code":"W-RACE","var":"a",
//!  "message":"…","stmt":"MOVE …","phase":"lowered"}]}
//! ```
//!
//! `phase` is `"lowered"` for the dataflow codes and `"optimized"` for
//! the communication codes; `stmt` is `null` when no single statement
//! anchors the warning. The schema is stable: fields are only added,
//! never renamed or removed.
//!
//! `--analyze-comm` compiles through the middle end, computes the
//! static communication plan of the optimized program, prices it
//! against every registered target manifest, and folds the backend's
//! exact static profile into per-target predicted counters at
//! `--nodes` (the same numbers the machines will report — see the
//! plan↔trace reconciliation suite). `--analyze-comm=json` emits one
//! `f90y-comm-plan-v1` document:
//!
//! ```json
//! {"schema":"f90y-comm-plan-v1","nodes":16,"exact":true,
//!  "ops":[{"stmt":3,"kind":"halo","axis":1,"width":1,"shift":1,
//!  "eoshift":false,"array":"a","multiplicity":1,"in_while":false}],
//!  "halo_widths":[{"array":"a","axis":1,"width":1}],
//!  "priced_seconds":{"cm2":0.001,"cm5":0.0001,"accel":0.00001},
//!  "predicted":{"cm2":{…},"cm5":{…},"accel":{…}},"plan_error":null}
//! ```
//!
//! `axis` is 1-based (the Fortran `DIM` convention); `width` is `null`
//! for a dynamic shift distance; `predicted` is `null` — and
//! `plan_error` a message — when control flow depends on machine data
//! and no exact static plan exists.
//!
//! Examples:
//!
//! ```text
//! cargo run -p f90y-core --bin f90yc -- --emit peac prog.f90
//! echo 'INTEGER K(64,64)
//! K = 2*K + 5' | cargo run -p f90y-core --bin f90yc -- --validate -
//! cargo run -p f90y-core --bin f90yc -- --lint prog.f90
//! cargo run -p f90y-core --bin f90yc -- --lint=deny --timings prog.f90
//! cargo run -p f90y-core --bin f90yc -- --emit-after=blocking-fuse prog.f90
//! cargo run -p f90y-core --bin f90yc -- --passes=comm-split,mask-pad \
//!     --verify-passes prog.f90
//! cargo run -p f90y-core --bin f90yc -- --target cm5 --nodes 64 prog.f90
//! cargo run -p f90y-core --bin f90yc -- --target cm5 --nodes 64 \
//!     --host-threads 4 prog.f90
//! cargo run -p f90y-core --bin f90yc -- --target cm5 --nodes 16 \
//!     --fault-seed 7 --fault-drop 20 --fault-kill 3:1 prog.f90
//! ```

use std::io::Read;
use std::process::ExitCode;

use f90y_core::{
    comm_plan, price, ChromeTraceSink, Cm2, CommKind, CommOp, CommPlan, Compiler, Diagnostic,
    DumpPoint, Executable, FaultPlan, JsonSink, JsonlTraceSink, LintReport, Pipeline, PrettySink,
    Run, Target, TargetPrediction, Telemetry, WarnCode,
};
use f90y_peac::OpcodeProfile;

/// Which execution engine runs the compiled program.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TargetKind {
    /// The lock-step CM/2 SIMD simulator (the default).
    Cm2,
    /// The CM/5 MIMD engine: sharded arrays, real message passing.
    Cm5,
    /// The accelerator model: kernel launches over device memory.
    Accel,
}

struct Options {
    pipeline: Pipeline,
    target: TargetKind,
    nodes: usize,
    host_threads: usize,
    emit: Option<String>,
    lint: bool,
    lint_deny: bool,
    lint_json: bool,
    analyze_comm: bool,
    analyze_comm_json: bool,
    passes: Option<Vec<String>>,
    emit_after: Option<String>,
    print_ir_after_all: bool,
    verify_passes: bool,
    audit_passes: bool,
    validate: bool,
    finals: Vec<String>,
    timings: bool,
    emit_telemetry: Option<String>,
    emit_trace: Option<String>,
    emit_trace_jsonl: Option<String>,
    profile: bool,
    fault_seed: Option<u64>,
    fault_drop: Option<u16>,
    fault_kills: Vec<(u64, usize)>,
    input: Option<String>,
}

impl Options {
    /// The fault plan the fault flags describe, if any was asked for.
    fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_seed.is_none() && self.fault_drop.is_none() && self.fault_kills.is_empty() {
            return None;
        }
        let mut plan = FaultPlan::seeded(self.fault_seed.unwrap_or(0));
        if let Some(p) = self.fault_drop {
            plan = plan.drop_per_mille(p);
        }
        for &(step, node) in &self.fault_kills {
            plan = plan.kill(step, node);
        }
        Some(plan)
    }
}

const USAGE: &str = "usage: f90yc [options] <file.f90 | ->
       f90yc --list-targets

  --pipeline f90y|cmf|starlisp   compiler to model       (default f90y)
  --target cm2|cm5|accel         execution engine         (default cm2)
  --list-targets                 print every registered target manifest
                                 (name, vector width, topology, node
                                 constraints) and exit
  --nodes N                      nodes, power of 2        (default 2048)
  --host-threads N               host worker threads for the MIMD
                                 compute phase (cm5 only, default 1;
                                 results are bit-identical at any N)
  --emit nir|opt|peac|host       print a stage and stop
  --lint[=deny|=json]            print diagnostics and stop (W-RACE, W-UNINIT,
                                 W-DEADSTORE, W-WIDE-HALO, W-REDUNDANT-COMM,
                                 W-ALLTOALL; =deny exits 1 on any, =json
                                 prints the f90y-lint-v1 document)
  --analyze-comm[=json]          print the static communication plan (ops,
                                 per-target predicted counters at --nodes,
                                 modelled comm seconds) and stop
  --passes a,b,c                 override the middle-end pass list
  --emit-after <pass>            print the NIR after that pass and stop
  --print-ir-after-all           print the NIR after every pass, then go on
  --verify-passes                check types/shapes/behaviour between passes
  --audit-passes                 check def-use legality between passes
  --validate                     also check against the reference evaluator
  --finals a,b,c                 print these variables after the run
  --timings                      print a phase-timing/counter table on stderr
  --emit-telemetry <path>        write the telemetry report as JSON
  --emit-trace <path>            write a Chrome trace-event JSON flight
                                 recording of the run (open in Perfetto)
  --emit-trace-jsonl <path>      write the flight recording as compact JSONL
  --profile                      print a PEAC opcode/cycle hot-spot report
                                 (cm2 only), cross-checked to the cycle
  --fault-seed S                 seed a deterministic fault plan (cm5 only)
  --fault-drop P                 drop P per-mille of messages (implies a plan)
  --fault-kill STEP:NODE         kill NODE at superstep STEP (repeatable)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        pipeline: Pipeline::F90y,
        target: TargetKind::Cm2,
        nodes: 2048,
        host_threads: 1,
        emit: None,
        lint: false,
        lint_deny: false,
        lint_json: false,
        analyze_comm: false,
        analyze_comm_json: false,
        passes: None,
        emit_after: None,
        print_ir_after_all: false,
        verify_passes: false,
        audit_passes: false,
        validate: false,
        finals: Vec::new(),
        timings: false,
        emit_telemetry: None,
        emit_trace: None,
        emit_trace_jsonl: None,
        profile: false,
        fault_seed: None,
        fault_drop: None,
        fault_kills: Vec::new(),
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pipeline" => {
                opts.pipeline = match args.next().as_deref() {
                    Some("f90y") => Pipeline::F90y,
                    Some("cmf") => Pipeline::Cmf,
                    Some("starlisp") => Pipeline::StarLisp,
                    _ => usage(),
                }
            }
            "--target" => {
                opts.target = match args.next().as_deref() {
                    Some("cm2") => TargetKind::Cm2,
                    Some("cm5") => TargetKind::Cm5,
                    Some("accel") => TargetKind::Accel,
                    _ => usage(),
                }
            }
            "--list-targets" => {
                print_targets();
                std::process::exit(0);
            }
            "--nodes" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.nodes = n,
                None => usage(),
            },
            "--host-threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => opts.host_threads = n,
                _ => usage(),
            },
            "--emit" => match args.next() {
                Some(e) if ["nir", "opt", "peac", "host"].contains(&e.as_str()) => {
                    opts.emit = Some(e)
                }
                _ => usage(),
            },
            "--passes" => match args.next() {
                Some(list) => opts.passes = Some(split_names(&list)),
                None => usage(),
            },
            "--emit-after" => match args.next() {
                Some(p) => opts.emit_after = Some(p),
                None => usage(),
            },
            "--print-ir-after-all" => opts.print_ir_after_all = true,
            "--verify-passes" => opts.verify_passes = true,
            "--audit-passes" => opts.audit_passes = true,
            "--lint" => opts.lint = true,
            "--lint=deny" => {
                opts.lint = true;
                opts.lint_deny = true;
            }
            "--lint=json" => {
                opts.lint = true;
                opts.lint_json = true;
            }
            "--analyze-comm" => opts.analyze_comm = true,
            "--analyze-comm=json" => {
                opts.analyze_comm = true;
                opts.analyze_comm_json = true;
            }
            "--validate" => opts.validate = true,
            "--timings" => opts.timings = true,
            "--emit-telemetry" => match args.next() {
                Some(path) => opts.emit_telemetry = Some(path),
                None => usage(),
            },
            "--emit-trace" => match args.next() {
                Some(path) => opts.emit_trace = Some(path),
                None => usage(),
            },
            "--emit-trace-jsonl" => match args.next() {
                Some(path) => opts.emit_trace_jsonl = Some(path),
                None => usage(),
            },
            "--profile" => opts.profile = true,
            "--finals" => match args.next() {
                Some(list) => opts.finals = list.split(',').map(str::to_string).collect(),
                None => usage(),
            },
            "--fault-seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(s) => opts.fault_seed = Some(s),
                None => usage(),
            },
            "--fault-drop" => match args.next().and_then(|n| n.parse().ok()) {
                Some(p) if p <= 1000 => opts.fault_drop = Some(p),
                _ => usage(),
            },
            "--fault-kill" => match args.next().as_deref().and_then(parse_kill) {
                Some(kill) => opts.fault_kills.push(kill),
                None => usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                if let Some(list) = other.strip_prefix("--passes=") {
                    opts.passes = Some(split_names(list));
                } else if let Some(p) = other.strip_prefix("--emit-after=") {
                    opts.emit_after = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--emit-trace=") {
                    opts.emit_trace = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--emit-trace-jsonl=") {
                    opts.emit_trace_jsonl = Some(p.to_string());
                } else if !other.starts_with('-') || other == "-" {
                    opts.input = Some(other.to_string());
                } else {
                    usage();
                }
            }
        }
    }
    if opts.input.is_none() {
        usage();
    }
    if opts.target != TargetKind::Cm5 && opts.fault_plan().is_some() {
        eprintln!("f90yc: fault injection needs --target cm5");
        std::process::exit(2);
    }
    if opts.target != TargetKind::Cm2 && opts.profile {
        eprintln!("f90yc: --profile attributes PEAC opcode cycles and needs --target cm2");
        std::process::exit(2);
    }
    if opts.target != TargetKind::Cm5 && opts.host_threads > 1 {
        eprintln!(
            "f90yc: --host-threads parallelises the MIMD compute phase and needs --target cm5"
        );
        std::process::exit(2);
    }
    opts
}

/// Print every registered target manifest — the machine facts the
/// session layer validates against, straight from the HAL registry.
fn print_targets() {
    let registry = f90y_core::Registry::builtin();
    println!("registered targets ({}):", registry.len());
    for m in registry.iter() {
        println!("\n  {} — {} ({} model)", m.name, m.display, m.kind);
        println!(
            "    vector width:   {} lanes × {} unit(s)/node",
            m.vector_lanes, m.units_per_node
        );
        println!(
            "    clock:          {:.0} MHz {}",
            m.clock_hz / 1e6,
            match m.kind {
                f90y_hal::TargetKind::Simd => "node",
                f90y_hal::TargetKind::Mimd => "vector unit",
                f90y_hal::TargetKind::Accel => "device",
            }
        );
        println!("    topology:       {}", m.topology);
        println!("    nodes:          {}", m.nodes.describe());
        let regions: Vec<&str> = m.memory_regions.iter().map(|r| r.name).collect();
        println!("    memory regions: {}", regions.join(", "));
    }
}

/// Parse a `STEP:NODE` kill spec.
fn parse_kill(spec: &str) -> Option<(u64, usize)> {
    let (step, node) = spec.split_once(':')?;
    Some((step.parse().ok()?, node.parse().ok()?))
}

/// Split a comma-separated pass list, ignoring empty segments.
fn split_names(list: &str) -> Vec<String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() -> ExitCode {
    let opts = parse_args();
    let path = opts.input.as_deref().expect("checked in parse_args");
    let source = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("f90yc: cannot read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("f90yc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut tel = if opts.timings || opts.emit_telemetry.is_some() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };

    let mut compiler = Compiler::new(opts.pipeline)
        .verify_passes(opts.verify_passes)
        .audit_passes(opts.audit_passes);
    if let Some(names) = &opts.passes {
        compiler = compiler.passes(names.iter().cloned());
    }

    if opts.lint {
        let report = match compiler.lint_with(&source, &mut tel) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("f90yc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let comm = match compiler.lint_comm(&source, target_topology(opts.target)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("f90yc: {e}");
                return ExitCode::FAILURE;
            }
        };
        let clean = report.is_clean() && comm.is_empty();
        if opts.lint_json {
            println!("{}", lint_json(&report, &comm));
        } else {
            for d in &report.diagnostics {
                println!("{d}");
            }
            for d in &comm {
                println!("{d}");
            }
            if clean {
                println!(
                    "lint: clean ({} statements analysed, {} dataflow facts)",
                    report.stmts_analyzed, report.facts
                );
            } else {
                let by_code: Vec<String> = [
                    WarnCode::Race,
                    WarnCode::Uninit,
                    WarnCode::DeadStore,
                    WarnCode::WideHalo,
                    WarnCode::RedundantComm,
                    WarnCode::AllToAll,
                ]
                .iter()
                .filter_map(|&c| {
                    let n = report.count_of(c) + comm.iter().filter(|d| d.code == c).count();
                    (n > 0).then(|| format!("{c}: {n}"))
                })
                .collect();
                println!(
                    "lint: {} warning(s) ({})",
                    report.diagnostics.len() + comm.len(),
                    by_code.join(", ")
                );
            }
        }
        let sinks = finish(&tel, &opts);
        if opts.lint_deny && !clean {
            return ExitCode::FAILURE;
        }
        return sinks;
    }
    if let Some(pass) = &opts.emit_after {
        compiler = compiler.dump_ir(DumpPoint::After(pass.clone()));
    } else if opts.print_ir_after_all {
        compiler = compiler.dump_ir(DumpPoint::All);
    }
    let exe = match compiler.compile_with(&source, &mut tel) {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("f90yc: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(pass) = &opts.emit_after {
        match exe.pass_reports.dump_after(pass) {
            Some(dump) => {
                println!("{dump}");
                return finish(&tel, &opts);
            }
            None => {
                let ran: Vec<&str> = exe
                    .pass_reports
                    .passes
                    .iter()
                    .map(|p| p.name.as_str())
                    .collect();
                eprintln!(
                    "f90yc: pass '{pass}' did not run (pipeline ran: {})",
                    ran.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.print_ir_after_all {
        for (i, (pass, dump)) in exe.pass_reports.dumps.iter().enumerate() {
            println!(";; --- IR after {pass} (run {i}) ---");
            println!("{dump}");
        }
    }

    if opts.analyze_comm {
        print_comm_analysis(&exe, &opts);
        return finish(&tel, &opts);
    }

    match opts.emit.as_deref() {
        Some("nir") => {
            println!("{}", f90y_nir::pretty::print_imp(&exe.nir));
            return finish(&tel, &opts);
        }
        Some("opt") => {
            println!("{}", f90y_nir::pretty::print_imp(&exe.optimized));
            return finish(&tel, &opts);
        }
        Some("peac") => {
            print!("{}", exe.compiled.listings());
            return finish(&tel, &opts);
        }
        Some("host") => {
            for (i, s) in exe.compiled.host.iter().enumerate() {
                println!("{i:4}: {s:?}");
            }
            return finish(&tel, &opts);
        }
        _ => {}
    }

    let target = match opts.target {
        TargetKind::Cm2 => Target::Cm2 { nodes: opts.nodes },
        TargetKind::Cm5 => Target::Cm5Mimd { nodes: opts.nodes },
        TargetKind::Accel => Target::Accel { nodes: opts.nodes },
    };
    let mut chrome_sink = match &opts.emit_trace {
        Some(path) => match ChromeTraceSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("f90yc: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut jsonl_sink = match &opts.emit_trace_jsonl {
        Some(path) => match JsonlTraceSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("f90yc: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut profiled_cm = if opts.profile {
        let mut cm = exe.pipeline.machine(opts.nodes);
        cm.enable_profile();
        cm.enable_opcode_profile();
        Some(cm)
    } else {
        None
    };
    let mut session = exe
        .session(target)
        .host_threads(opts.host_threads)
        .telemetry(&mut tel);
    if let Some(plan) = opts.fault_plan() {
        session = session.faults(plan);
    }
    if let Some(sink) = chrome_sink.as_mut() {
        session = session.trace(sink);
    }
    if let Some(sink) = jsonl_sink.as_mut() {
        session = session.trace(sink);
    }
    if let Some(cm) = profiled_cm.as_mut() {
        session = session.on_machine(cm);
    }
    let run = match session.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("f90yc: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &run {
        Run::Cm2(r) => println!(
            "{} on {} CM/2 nodes: {:.4} GFLOPS sustained ({:.3} ms modelled, \
             {} dispatches, {} comm calls, host {:.2}%)",
            opts.pipeline.name(),
            opts.nodes,
            r.gflops,
            r.elapsed_seconds * 1e3,
            r.stats.dispatches,
            r.stats.comm_calls,
            r.host_fraction * 100.0,
        ),
        Run::Mimd(r) => {
            println!(
                "{} on {} CM/5 nodes: {:.4} GFLOPS sustained ({:.3} ms modelled, \
                 {} dispatches, {} comm calls, {} messages, {} bytes)",
                opts.pipeline.name(),
                opts.nodes,
                r.gflops,
                r.elapsed_seconds * 1e3,
                r.stats.dispatches,
                r.stats.comm_calls,
                r.stats.messages,
                r.stats.bytes,
            );
            if opts.fault_plan().is_some() {
                println!(
                    "faults: {} injected ({} dropped, {} duplicated, {} delayed, \
                     {} kills, {} stalls); {} retries, {} restarts, recovery {:.3} ms",
                    r.stats.faults_injected(),
                    r.stats.msgs_dropped,
                    r.stats.msgs_duplicated,
                    r.stats.msgs_delayed,
                    r.stats.node_kills,
                    r.stats.node_stalls,
                    r.stats.retries,
                    r.stats.node_restarts,
                    r.stats.recovery_seconds * 1e3,
                );
            }
        }
        Run::Accel(r) => println!(
            "{} on {} accel units: {:.4} GFLOPS sustained ({:.3} ms modelled, \
             {} kernel launches, {} H2D + {} D2H transfers, {} bytes moved)",
            opts.pipeline.name(),
            opts.nodes,
            r.gflops,
            r.elapsed_seconds * 1e3,
            r.stats.kernel_launches,
            r.stats.h2d_transfers,
            r.stats.d2h_transfers,
            r.stats.h2d_bytes + r.stats.d2h_bytes,
        ),
    }
    if let Some(cm) = &profiled_cm {
        if let Err(e) = print_profile(cm) {
            eprintln!("f90yc: PROFILE RECONCILIATION FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    let finals = run.finals();
    for name in &opts.finals {
        match finals.final_array(name) {
            Ok(a) => {
                let head: Vec<String> = a.iter().take(8).map(|x| format!("{x}")).collect();
                println!(
                    "{name} = [{}{}]",
                    head.join(", "),
                    if a.len() > 8 { ", …" } else { "" }
                );
            }
            Err(_) => match finals.final_scalar(name) {
                Ok(s) => println!("{name} = {s}"),
                Err(e) => eprintln!("f90yc: {e}"),
            },
        }
    }
    if opts.validate {
        if let Err(e) = exe.validate() {
            eprintln!("f90yc: VALIDATION FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("validated against the NIR reference evaluator");
    }
    finish(&tel, &opts)
}

/// How many hot statements and hot opcodes the `--profile` report
/// shows.
const PROFILE_TOP_K: usize = 8;

/// Print the PEAC hot-spot report: the comm/compute cycle split from
/// the [`CycleProfile`](f90y_cm2::CycleProfile), the top-K dispatched
/// statements by compute-cycle share, and the per-opcode histogram —
/// after cross-checking every routine's opcode cycle total against the
/// cycle profile's `dispatch.*` compute cycles.
///
/// # Errors
///
/// Returns a description of the first routine whose opcode histogram
/// does not reconcile with the cycle profile to the cycle.
fn print_profile(cm: &Cm2) -> Result<(), String> {
    let profile = cm
        .profile()
        .ok_or_else(|| "cycle profile was not recorded".to_string())?;
    let opcodes = cm
        .opcode_profiles()
        .ok_or_else(|| "opcode profile was not recorded".to_string())?;

    // Reconcile: each routine's opcode cycles must equal the cycle
    // profile's compute attribution for that dispatch phase, exactly.
    let mut dispatch_compute: u64 = 0;
    for (name, hist) in opcodes {
        let phase = format!("dispatch.{name}");
        let attributed = profile.phase(&phase).map(|p| p.compute_cycles).unwrap_or(0);
        if hist.total_cycles() != attributed {
            return Err(format!(
                "routine '{name}': opcode histogram has {} cycles but the cycle \
                 profile attributes {attributed}",
                hist.total_cycles()
            ));
        }
        dispatch_compute += attributed;
    }
    if dispatch_compute != profile.compute_total() {
        return Err(format!(
            "opcode histograms cover {dispatch_compute} compute cycles but the \
             cycle profile totals {}",
            profile.compute_total()
        ));
    }

    let compute = profile.compute_total();
    let comm = profile.comm_total();
    let overhead = profile.dispatch_overhead_total();
    let host = profile.host_total();
    let all = compute + comm + overhead + host;
    let pct = |c: u64| {
        if all == 0 {
            0.0
        } else {
            100.0 * c as f64 / all as f64
        }
    };
    println!(
        "profile: {all} modelled cycles on {} CM/2 nodes",
        cm.config().nodes
    );
    println!(
        "  compute {compute} ({:.1}%) | comm {comm} ({:.1}%) | dispatch overhead \
         {overhead} ({:.1}%) | host {host} ({:.1}%)",
        pct(compute),
        pct(comm),
        pct(overhead),
        pct(host)
    );

    // Top-K dispatched statements by compute-cycle share.
    let mut hot: Vec<(&str, u64, u64)> = opcodes
        .iter()
        .map(|(name, hist)| (name.as_str(), hist.total_cycles(), hist.total_hits()))
        .collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("  hot statements (by compute-cycle share):");
    for (rank, (name, cycles, hits)) in hot.iter().take(PROFILE_TOP_K).enumerate() {
        let share = if compute == 0 {
            0.0
        } else {
            100.0 * *cycles as f64 / compute as f64
        };
        println!(
            "    {:>2}. {name:<24} {cycles:>12} cycles  {share:>5.1}%  ({hits} ops)",
            rank + 1
        );
    }
    if hot.len() > PROFILE_TOP_K {
        println!("    … and {} more", hot.len() - PROFILE_TOP_K);
    }

    // Per-opcode histogram, merged across every routine.
    let mut merged = OpcodeProfile::new();
    for hist in opcodes.values() {
        merged.merge(hist);
    }
    let mut rows: Vec<_> = merged.rows().collect();
    rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    println!("  hot opcodes:");
    for (mnemonic, row) in rows.iter().take(PROFILE_TOP_K) {
        let share = if compute == 0 {
            0.0
        } else {
            100.0 * row.cycles as f64 / compute as f64
        };
        println!(
            "    {mnemonic:<16} {:>12} cycles  {share:>5.1}%  ({} hits)",
            row.cycles, row.hits
        );
    }
    println!(
        "  reconciled: opcode cycle totals match the cycle profile to the cycle \
         ({dispatch_compute} == {compute})"
    );
    Ok(())
}

/// The network topology of the selected target's manifest — what the
/// communication lints judge transpose-shaped traffic against.
fn target_topology(target: TargetKind) -> f90y_core::Topology {
    match target {
        TargetKind::Cm2 => f90y_hal::CM2.topology,
        TargetKind::Cm5 => f90y_hal::CM5.topology,
        TargetKind::Accel => f90y_hal::ACCEL.topology,
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `f90y-lint-v1` document: classic dataflow diagnostics (over the
/// lowered NIR) and communication diagnostics (over the optimized NIR)
/// in one array, tagged by `phase`.
fn lint_json(report: &LintReport, comm: &[Diagnostic]) -> String {
    let mut out = format!(
        "{{\"schema\":\"f90y-lint-v1\",\"clean\":{},\"stmts_analyzed\":{},\
         \"facts\":{},\"warnings\":{},\"diagnostics\":[",
        report.is_clean() && comm.is_empty(),
        report.stmts_analyzed,
        report.facts,
        report.diagnostics.len() + comm.len()
    );
    let all = report
        .diagnostics
        .iter()
        .map(|d| ("lowered", d))
        .chain(comm.iter().map(|d| ("optimized", d)));
    for (i, (phase, d)) in all.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"var\":{},\"message\":{},\"stmt\":{},\"phase\":{}}}",
            json_str(&d.code.to_string()),
            json_str(&d.var),
            json_str(&d.message),
            d.stmt.as_deref().map_or_else(|| "null".into(), json_str),
            json_str(phase)
        ));
    }
    out.push_str("]}");
    out
}

/// One comm op as a `f90y-comm-plan-v1` JSON object (`axis` 1-based).
fn op_json(op: &CommOp) -> String {
    let (kind, extra) = match &op.kind {
        CommKind::Halo { axis, width } => (
            "halo",
            format!(
                ",\"axis\":{},\"width\":{}",
                axis + 1,
                width.map_or_else(|| "null".into(), |w: u64| w.to_string())
            ),
        ),
        CommKind::Broadcast => ("broadcast", String::new()),
        CommKind::Reduce { op } => ("reduce", format!(",\"op\":{}", json_str(op))),
        CommKind::AllToAll => ("alltoall", String::new()),
    };
    format!(
        "{{\"stmt\":{},\"kind\":{}{extra},\"array\":{},\"shift\":{},\"eoshift\":{},\
         \"multiplicity\":{},\"in_while\":{}}}",
        op.stmt,
        json_str(kind),
        op.array.as_deref().map_or_else(|| "null".into(), json_str),
        op.shift.map_or_else(|| "null".into(), |s| s.to_string()),
        op.eoshift,
        op.multiplicity,
        op.in_while
    )
}

/// One predicted-counter block as JSON.
fn prediction_json(p: &TargetPrediction) -> String {
    match *p {
        TargetPrediction::Cm2 {
            dispatches,
            comm_calls,
            reductions,
        } => format!(
            "{{\"dispatches\":{dispatches},\"comm_calls\":{comm_calls},\
             \"reductions\":{reductions}}}"
        ),
        TargetPrediction::Cm5 {
            dispatches,
            comm_calls,
            halo_exchanges,
            router_batches,
            reductions,
            supersteps,
            messages,
        } => format!(
            "{{\"dispatches\":{dispatches},\"comm_calls\":{comm_calls},\
             \"halo_exchanges\":{halo_exchanges},\"router_batches\":{router_batches},\
             \"reductions\":{reductions},\"supersteps\":{supersteps},\
             \"messages\":{messages}}}"
        ),
        TargetPrediction::Accel {
            kernel_launches,
            h2d_transfers,
            d2h_transfers,
            comm_calls,
            reductions,
        } => format!(
            "{{\"kernel_launches\":{kernel_launches},\"h2d_transfers\":{h2d_transfers},\
             \"d2h_transfers\":{d2h_transfers},\"comm_calls\":{comm_calls},\
             \"reductions\":{reductions}}}"
        ),
    }
}

/// The `f90y-comm-plan-v1` document.
fn comm_json(
    plan: &CommPlan,
    priced: &[(&str, f64)],
    predicted: Option<&(TargetPrediction, TargetPrediction, TargetPrediction)>,
    plan_error: Option<&f90y_core::PlanError>,
    nodes: usize,
) -> String {
    let ops: Vec<String> = plan.ops.iter().map(op_json).collect();
    let widths: Vec<String> = plan
        .halo_widths
        .iter()
        .map(|((a, ax), w)| {
            format!(
                "{{\"array\":{},\"axis\":{},\"width\":{w}}}",
                json_str(a),
                ax + 1
            )
        })
        .collect();
    let secs: Vec<String> = priced
        .iter()
        .map(|(n, s)| format!("{}:{s}", json_str(n)))
        .collect();
    let predicted = match predicted {
        Some((cm2, cm5, accel)) => format!(
            "{{\"cm2\":{},\"cm5\":{},\"accel\":{}}}",
            prediction_json(cm2),
            prediction_json(cm5),
            prediction_json(accel)
        ),
        None => "null".into(),
    };
    format!(
        "{{\"schema\":\"f90y-comm-plan-v1\",\"nodes\":{nodes},\"exact\":{},\
         \"stmts_analyzed\":{},\"ops\":[{}],\"halo_widths\":[{}],\
         \"priced_seconds\":{{{}}},\"predicted\":{predicted},\"plan_error\":{}}}",
        plan.exact,
        plan.stmts_analyzed,
        ops.join(","),
        widths.join(","),
        secs.join(","),
        plan_error.map_or_else(|| "null".into(), |e| json_str(&e.to_string()))
    )
}

/// The `--analyze-comm` report: the NIR-level plan, its model price
/// against every registered manifest, and the exact per-target
/// predicted counters from the backend's static profile.
fn print_comm_analysis(exe: &Executable, opts: &Options) {
    let plan = comm_plan(&exe.optimized);
    let nodes = opts.nodes;
    let registry = f90y_core::Registry::builtin();
    let priced: Vec<(&str, f64)> = registry
        .iter()
        .map(|m| (m.name, price(&plan, m, nodes).total_seconds))
        .collect();
    let profile = exe.static_profile();
    let predicted = profile.as_ref().ok().map(|p| {
        (
            f90y_core::predict::fold(p, Target::Cm2 { nodes }),
            f90y_core::predict::fold(p, Target::Cm5Mimd { nodes }),
            f90y_core::predict::fold(p, Target::Accel { nodes }),
        )
    });

    if opts.analyze_comm_json {
        println!(
            "{}",
            comm_json(
                &plan,
                &priced,
                predicted.as_ref(),
                profile.as_ref().err(),
                nodes
            )
        );
        return;
    }

    println!(
        "static communication plan: {} op(s){}",
        plan.ops.len(),
        if plan.exact {
            ""
        } else {
            " (inexact: data-dependent control flow)"
        }
    );
    if !plan.ops.is_empty() {
        println!(
            "  {:>4}  {:<28} {:<12} {:>6} {:>7}",
            "stmt", "op", "array", "shift", "mult"
        );
        for op in &plan.ops {
            println!(
                "  {:>4}  {:<28} {:<12} {:>6} {:>7}",
                op.stmt,
                op.kind.to_string(),
                op.array.as_deref().unwrap_or("-"),
                op.shift.map_or_else(|| "-".into(), |s| s.to_string()),
                op.multiplicity
            );
        }
    }
    if !plan.halo_widths.is_empty() {
        let widths: Vec<String> = plan
            .halo_widths
            .iter()
            .map(|((a, ax), w)| format!("{a} axis {}: {w}", ax + 1))
            .collect();
        println!("halo widths: {}", widths.join(", "));
    }
    let secs: Vec<String> = priced
        .iter()
        .map(|(n, s)| format!("{n} {s:.3e}s"))
        .collect();
    println!("modelled comm time @ {nodes} nodes: {}", secs.join(" | "));
    match (&predicted, profile.as_ref().err()) {
        (Some((cm2, cm5, accel)), _) => {
            println!("predicted counters @ {nodes} nodes:");
            if let TargetPrediction::Cm2 {
                dispatches,
                comm_calls,
                reductions,
            } = cm2
            {
                println!(
                    "  cm2:   {dispatches} dispatches, {comm_calls} comm calls, \
                     {reductions} reductions"
                );
            }
            if let TargetPrediction::Cm5 {
                supersteps,
                messages,
                halo_exchanges,
                router_batches,
                ..
            } = cm5
            {
                println!(
                    "  cm5:   {supersteps} supersteps, {messages} messages, \
                     {halo_exchanges} halo exchanges, {router_batches} router batches"
                );
            }
            if let TargetPrediction::Accel {
                kernel_launches,
                h2d_transfers,
                d2h_transfers,
                comm_calls,
                ..
            } = accel
            {
                println!(
                    "  accel: {kernel_launches} kernel launches, {h2d_transfers} H2D + \
                     {d2h_transfers} D2H transfers, {comm_calls} comm calls"
                );
            }
        }
        (None, Some(e)) => println!("no exact static prediction: {e}"),
        (None, None) => unreachable!("profile is Ok or Err"),
    }
}

/// Deliver collected telemetry to the requested sinks.
fn finish(tel: &Telemetry, opts: &Options) -> ExitCode {
    if opts.timings {
        if let Err(e) = tel.emit(&mut PrettySink::stderr()) {
            eprintln!("f90yc: cannot write timings: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &opts.emit_telemetry {
        let result = JsonSink::create(path).and_then(|mut sink| tel.emit(&mut sink));
        if let Err(e) = result {
            eprintln!("f90yc: cannot write telemetry to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
