//! Benchmark workload generators.
//!
//! Every workload is a Fortran 90 *source generator* parameterised by
//! problem size, so the same text goes through whichever pipeline a
//! harness selects. Sizes are emitted as literals (the front end
//! requires literal array bounds; see `f90y-lowering` docs).

/// The shallow-water-equations benchmark of the paper's §6: "an updated
/// Fortran-90 version of a dusty deck code to implement a meteorological
/// model … It has good locality, consisting of a series of circular
/// shifts interspersed with blocks of local computation, and so
/// represents an ideal problem for a SIMD, data-parallel machine like
/// the CM/2."
///
/// This is the Sadourny scheme on a periodic `n × n` grid (the classic
/// `swm256` structure): per time step, the `cu`/`cv`/`z`/`h` stage, the
/// `unew`/`vnew`/`pnew` update stage, and the Robert–Asselin time
/// smoothing — 13 whole-array statements and 17 circular shifts.
/// Coefficients are scaled small so long runs stay numerically tame for
/// validation.
pub fn swe_source(n: usize, itmax: usize) -> String {
    format!(
        "
PROGRAM swe
REAL u({n},{n}), v({n},{n}), p({n},{n})
REAL unew({n},{n}), vnew({n},{n}), pnew({n},{n})
REAL uold({n},{n}), vold({n},{n}), pold({n},{n})
REAL cu({n},{n}), cv({n},{n}), z({n},{n}), h({n},{n})
REAL fsdx, fsdy, tdts8, tdtsdx, tdtsdy, alpha

fsdx = 0.004
fsdy = 0.004
tdts8 = 0.0000125
tdtsdx = 0.0001
tdtsdy = 0.0001
alpha = 0.001

! Smooth periodic-ish initial conditions.
FORALL (i=1:{n}, j=1:{n}) p(i,j) = 2000.0 + 10*MOD(i*j, 17)
FORALL (i=1:{n}, j=1:{n}) u(i,j) = MOD(i + 2*j, 5) - 2
FORALL (i=1:{n}, j=1:{n}) v(i,j) = MOD(3*i + j, 7) - 3
uold = u
vold = v
pold = p

DO 100 ncycle = 1, {itmax}
  ! Stage 1: capital U, capital V, vorticity Z, height H.
  cu = 0.5*(p + CSHIFT(p, DIM=1, SHIFT=-1))*u
  cv = 0.5*(p + CSHIFT(p, DIM=2, SHIFT=-1))*v
  z = (fsdx*(v - CSHIFT(v, DIM=1, SHIFT=-1)) - fsdy*(u - CSHIFT(u, DIM=2, SHIFT=-1))) &
      / (p + CSHIFT(p, DIM=1, SHIFT=-1) + CSHIFT(p, DIM=2, SHIFT=-1) &
         + CSHIFT(CSHIFT(p, DIM=1, SHIFT=-1), DIM=2, SHIFT=-1))
  h = p + 0.25*(u*u + CSHIFT(u, DIM=1, SHIFT=1)*CSHIFT(u, DIM=1, SHIFT=1)) &
        + 0.25*(v*v + CSHIFT(v, DIM=2, SHIFT=1)*CSHIFT(v, DIM=2, SHIFT=1))

  ! Stage 2: the leapfrog update.
  unew = uold + tdts8*(CSHIFT(z, DIM=2, SHIFT=1) + z) &
                *(CSHIFT(cv, DIM=2, SHIFT=1) + cv + CSHIFT(cv, DIM=1, SHIFT=-1)) &
              - tdtsdx*(CSHIFT(h, DIM=1, SHIFT=1) - h)
  vnew = vold - tdts8*(CSHIFT(z, DIM=1, SHIFT=1) + z) &
                *(CSHIFT(cu, DIM=1, SHIFT=1) + cu + CSHIFT(cu, DIM=2, SHIFT=-1)) &
              - tdtsdy*(CSHIFT(h, DIM=2, SHIFT=1) - h)
  pnew = pold - tdtsdx*(cu - CSHIFT(cu, DIM=1, SHIFT=-1)) &
              - tdtsdy*(cv - CSHIFT(cv, DIM=2, SHIFT=-1))

  ! Stage 3: Robert–Asselin time smoothing, then rotate time levels.
  uold = u + alpha*(unew - 2.0*u + uold)
  vold = v + alpha*(vnew - 2.0*v + vold)
  pold = p + alpha*(pnew - 2.0*p + pold)
  u = unew
  v = vnew
  p = pnew
100 CONTINUE
END PROGRAM swe
"
    )
}

/// A 2D heat-diffusion (five-point stencil) kernel — the kind of
/// fine-grain stencil code the paper's introduction says motivated
/// Thinking Machines' separate convolution compiler.
pub fn heat_source(n: usize, steps: usize) -> String {
    format!(
        "
PROGRAM heat
REAL t({n},{n}), tnew({n},{n})
REAL kappa
kappa = 0.1
FORALL (i=1:{n}, j=1:{n}) t(i,j) = MOD(i*31 + j*17, 100)
DO 10 step = 1, {steps}
  tnew = t + kappa*(CSHIFT(t, DIM=1, SHIFT=1) + CSHIFT(t, DIM=1, SHIFT=-1) &
                  + CSHIFT(t, DIM=2, SHIFT=1) + CSHIFT(t, DIM=2, SHIFT=-1) - 4.0*t)
  t = tnew
10 CONTINUE
END PROGRAM heat
"
    )
}

/// Conway's Game of Life via masked whole-array assignment — exercises
/// comparisons, logical masks and `WHERE`-style conditional moves.
pub fn life_source(n: usize, steps: usize) -> String {
    format!(
        "
PROGRAM life
INTEGER g({n},{n}), neigh({n},{n})
FORALL (i=1:{n}, j=1:{n}) g(i,j) = MOD(i*7 + j*13 + i*j, 3)/2
DO 10 step = 1, {steps}
  neigh = CSHIFT(g, DIM=1, SHIFT=1) + CSHIFT(g, DIM=1, SHIFT=-1) &
        + CSHIFT(g, DIM=2, SHIFT=1) + CSHIFT(g, DIM=2, SHIFT=-1) &
        + CSHIFT(CSHIFT(g, DIM=1, SHIFT=1), DIM=2, SHIFT=1) &
        + CSHIFT(CSHIFT(g, DIM=1, SHIFT=1), DIM=2, SHIFT=-1) &
        + CSHIFT(CSHIFT(g, DIM=1, SHIFT=-1), DIM=2, SHIFT=1) &
        + CSHIFT(CSHIFT(g, DIM=1, SHIFT=-1), DIM=2, SHIFT=-1)
  WHERE (neigh < 2)
    g = 0
  END WHERE
  WHERE (neigh > 3)
    g = 0
  END WHERE
  WHERE (neigh == 3)
    g = 1
  END WHERE
10 CONTINUE
END PROGRAM life
"
    )
}

/// A red-black Gauss–Seidel relaxation sweep: the strided-section
/// masked-assignment pattern of the paper's Figure 10 in a realistic
/// kernel. Each half-sweep updates one parity class of a checkerboard;
/// the mask-padding transformation turns the strided sections into
/// masked full-array moves that block together.
pub fn redblack_source(n: usize, sweeps: usize) -> String {
    format!(
        "
PROGRAM redblack
REAL u({n},{n}), rhs({n},{n}), nb({n},{n})
FORALL (i=1:{n}, j=1:{n}) u(i,j) = MOD(i*5 + j*11, 23)
FORALL (i=1:{n}, j=1:{n}) rhs(i,j) = MOD(i + j, 7) - 3
DO 10 sweep = 1, {sweeps}
  nb = 0.25*(CSHIFT(u, DIM=1, SHIFT=1) + CSHIFT(u, DIM=1, SHIFT=-1) &
           + CSHIFT(u, DIM=2, SHIFT=1) + CSHIFT(u, DIM=2, SHIFT=-1) - rhs)
  u(1:{m}:2,:) = nb(1:{m}:2,:)
  nb = 0.25*(CSHIFT(u, DIM=1, SHIFT=1) + CSHIFT(u, DIM=1, SHIFT=-1) &
           + CSHIFT(u, DIM=2, SHIFT=1) + CSHIFT(u, DIM=2, SHIFT=-1) - rhs)
  u(2:{n}:2,:) = nb(2:{n}:2,:)
10 CONTINUE
END PROGRAM redblack
",
        m = n - 1
    )
}

/// The paper's §2.1 dusty-deck fragment (Fortran 77 form).
pub fn fig_section21_f77() -> &'static str {
    "
INTEGER K(128,64), L(128)
DO 10 I=1,128
   L(I) = 6
   DO 20 J=1,64
      K(I,J) = 2*K(I,J) + 5
20 CONTINUE
10 CONTINUE
"
}

/// The paper's §2.1 Fortran 90 replacement.
pub fn fig_section21_f90() -> &'static str {
    "INTEGER K(128,64), L(128)\nL = 6\nK = 2*K + 5\n"
}

/// The paper's Figure 7 FORALL example.
pub fn fig7_source() -> &'static str {
    "INTEGER, ARRAY(32,32) :: A\nFORALL (i=1:32, j=1:32) A(i,j) = i+j\n"
}

/// The paper's Figure 9 program (source form).
pub fn fig9_source() -> &'static str {
    "
INTEGER, ARRAY(64,64) :: A, B
INTEGER, ARRAY(64) :: C
FORALL (i=1:64, j=1:64) B(i,j) = 10*i + j
FORALL (i=1:64, j=1:64) A(i,j) = B(i,j) + j
DO 20 I=1,64
   C(I) = A(I,I)
20 CONTINUE
B = A
"
}

/// The paper's Figure 10 program (source form).
pub fn fig10_source() -> &'static str {
    "
INTEGER, ARRAY(32,32) :: A, B
INTEGER, ARRAY(32) :: C
INTEGER N
N = 7
A = N
B(1:31:2,:) = A(1:31:2,:)
C = N+1
B(2:32:2,:) = 5*A(2:32:2,:)
"
}

/// The paper's Figure 12 SWE excerpt: the single statement it compiles
/// to PEAC, with the temporaries pre-communicated as its NIR shows.
pub fn fig12_source(n: usize) -> String {
    format!(
        "
PROGRAM excerpt
REAL u({n},{n}), v({n},{n}), p({n},{n}), z({n},{n})
REAL fsdx, fsdy
fsdx = 0.004
fsdy = 0.004
FORALL (i=1:{n}, j=1:{n}) u(i,j) = MOD(i + 2*j, 5) - 2
FORALL (i=1:{n}, j=1:{n}) v(i,j) = MOD(3*i + j, 7) - 3
FORALL (i=1:{n}, j=1:{n}) p(i,j) = 2000.0 + 10*MOD(i*j, 17)
z = (fsdx*(v - CSHIFT(v, DIM=1, SHIFT=-1)) - fsdy*(u - CSHIFT(u, DIM=2, SHIFT=-1))) &
    / (p + CSHIFT(p, DIM=1, SHIFT=-1))
END PROGRAM excerpt
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, Pipeline};

    #[test]
    fn swe_compiles_and_validates() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile(&swe_source(8, 2))
            .unwrap();
        exe.validate().unwrap();
        assert!(!exe.compiled.blocks.is_empty());
    }

    #[test]
    fn heat_compiles_and_validates() {
        Compiler::new(Pipeline::F90y)
            .compile(&heat_source(8, 3))
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn life_compiles_and_validates() {
        Compiler::new(Pipeline::F90y)
            .compile(&life_source(8, 2))
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn paper_figures_compile_and_validate() {
        for src in [
            fig_section21_f77().to_string(),
            fig_section21_f90().to_string(),
            fig7_source().to_string(),
            fig9_source().to_string(),
            fig10_source().to_string(),
            fig12_source(8),
        ] {
            Compiler::new(Pipeline::F90y)
                .compile(&src)
                .unwrap()
                .validate()
                .unwrap();
        }
    }

    /// The comm-cse satellite: the SWE time step re-reads the same
    /// shifted arrays (`CSHIFT(p, DIM=1, SHIFT=-1)` feeds `cu`, `z` and
    /// `h`), so deduplicating identical hoists must shrink both the
    /// temporary count and the Fig. 11 partition's communication side.
    #[test]
    fn swe_comm_cse_prunes_temporaries_and_comm_phases() {
        let src = swe_source(8, 1);
        let with_cse = Compiler::new(Pipeline::F90y).compile(&src).unwrap();
        let without_cse = Compiler::new(Pipeline::F90y)
            .passes(["comm-split", "mask-pad", "blocking", "dce-temps"])
            .compile(&src)
            .unwrap();
        assert!(with_cse.report.comm_merged > 0, "SWE must trigger comm-cse");

        // Fewer tmp* declarations survive in the optimized NIR.
        let count_tmps = |imp: &f90y_nir::Imp| {
            let mut n = 0usize;
            imp.walk(&mut |i| {
                if let f90y_nir::Imp::WithDecl(d, _) = i {
                    n += d
                        .bindings()
                        .iter()
                        .filter(|(id, _, _)| id.starts_with("tmp"))
                        .count();
                }
            });
            n
        };
        let tmps_with = count_tmps(&with_cse.optimized);
        let tmps_without = count_tmps(&without_cse.optimized);
        assert!(
            tmps_with < tmps_without,
            "comm-cse must delete temporaries: {tmps_with} vs {tmps_without}"
        );

        // Strictly fewer runtime communication calls in the partition.
        fn count_comm(stmts: &[f90y_backend::HostStmt]) -> usize {
            use f90y_backend::HostStmt;
            stmts
                .iter()
                .map(|s| match s {
                    HostStmt::Comm { .. } => 1,
                    HostStmt::Do { body, .. } | HostStmt::While { body, .. } => count_comm(body),
                    HostStmt::If {
                        then_body,
                        else_body,
                        ..
                    } => count_comm(then_body) + count_comm(else_body),
                    HostStmt::WithDecl { body, .. } | HostStmt::WithDomain { body, .. } => {
                        count_comm(body)
                    }
                    _ => 0,
                })
                .sum()
        }
        let comm_with = count_comm(&with_cse.compiled.host);
        let comm_without = count_comm(&without_cse.compiled.host);
        assert!(
            comm_with < comm_without,
            "comm-cse must cut communication phases: {comm_with} vs {comm_without}"
        );

        // And the cleanup must not change what the program computes.
        with_cse.validate().unwrap();
    }

    #[test]
    fn swe_blocking_groups_statements() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile(&swe_source(16, 2))
            .unwrap();
        let cmf = Compiler::new(Pipeline::Cmf)
            .compile(&swe_source(16, 2))
            .unwrap();
        assert!(
            exe.compiled.blocks.len() < cmf.compiled.blocks.len(),
            "blocking must reduce SWE phases: {} vs {}",
            exe.compiled.blocks.len(),
            cmf.compiled.blocks.len()
        );
    }
}
