//! # f90y-core — the Fortran-90-Y compiler, assembled
//!
//! A Rust reproduction of Chen & Cowie, *Prototyping Fortran-90
//! Compilers for Massively Parallel Machines* (PLDI 1992): a formally
//! specified data-parallel Fortran 90 compiler for the Connection
//! Machine CM/2, together with the machine simulator, the CM Fortran and
//! \*Lisp comparator models, and the benchmark workloads of the paper's
//! evaluation.
//!
//! This crate is the front door; the pipeline stages live in their own
//! crates (see DESIGN.md for the inventory):
//!
//! ```text
//! source ──f90y-frontend──► AST ──f90y-lowering──► NIR
//!        ──f90y-transform──► blocked NIR ──f90y-backend──► PEAC + host
//!        ──f90y-cm2 (simulated CM/2)──► results + cycle counts
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use f90y_core::{Compiler, Pipeline};
//!
//! let exe = Compiler::new(Pipeline::F90y)
//!     .compile("INTEGER K(64,64)\nK = 2*K + 5\n")?;
//! let run = exe.run(64)?; // a 64-node CM/2
//! assert!(run.finals.final_array("k")?.iter().all(|&x| x == 5.0));
//! println!("sustained: {:.2} GFLOPS", run.gflops);
//! # Ok::<(), f90y_core::CompileError>(())
//! ```

pub mod workloads;

use std::error::Error;
use std::fmt;

pub use f90y_backend::fe::HostRun;
pub use f90y_backend::CompiledProgram;
pub use f90y_cm2::{Cm2, Cm2Config, MachineStats};
pub use f90y_nir::Imp;
pub use f90y_transform::TransformReport;

use f90y_backend::fe::HostExecutor;
use f90y_baselines::Baseline;

/// Which compiler to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// The Fortran-90-Y prototype: full blocking and PE optimization.
    F90y,
    /// The CM Fortran slicewise v1.1 model: per-statement phases.
    Cmf,
    /// The \*Lisp fieldwise model: per-statement, naive PE code, the
    /// fieldwise machine multipliers.
    StarLisp,
}

impl Pipeline {
    /// Display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::F90y => "Fortran-90-Y",
            Pipeline::Cmf => "CM Fortran (slicewise)",
            Pipeline::StarLisp => "*Lisp (fieldwise)",
        }
    }

    /// The machine configuration this pipeline's code runs on.
    pub fn machine(self, nodes: usize) -> Cm2 {
        match self {
            Pipeline::StarLisp => Cm2::new(Cm2Config::fieldwise(nodes)),
            _ => Cm2::new(Cm2Config::slicewise(nodes)),
        }
    }
}

/// Any error along the compilation pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error.
    Parse(f90y_frontend::ParseError),
    /// Semantic-lowering error.
    Lower(f90y_lowering::LowerError),
    /// Transformation error.
    Transform(f90y_nir::NirError),
    /// Backend or execution error.
    Backend(f90y_backend::BackendError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Transform(e) => write!(f, "{e}"),
            CompileError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {}

impl From<f90y_frontend::ParseError> for CompileError {
    fn from(e: f90y_frontend::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<f90y_lowering::LowerError> for CompileError {
    fn from(e: f90y_lowering::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<f90y_nir::NirError> for CompileError {
    fn from(e: f90y_nir::NirError) -> Self {
        CompileError::Transform(e)
    }
}

impl From<f90y_backend::BackendError> for CompileError {
    fn from(e: f90y_backend::BackendError) -> Self {
        CompileError::Backend(e)
    }
}

/// The compiler driver.
#[derive(Debug, Clone, Copy)]
pub struct Compiler {
    pipeline: Pipeline,
}

impl Compiler {
    /// A driver for the given pipeline.
    pub fn new(pipeline: Pipeline) -> Self {
        Compiler { pipeline }
    }

    /// The selected pipeline.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    /// Compile Fortran 90 source to an executable for the simulated
    /// machine.
    ///
    /// # Errors
    ///
    /// Fails on syntax, semantic, transformation or code-generation
    /// errors.
    pub fn compile(&self, source: &str) -> Result<Executable, CompileError> {
        let file = f90y_frontend::parse_file(source)?;
        let nir = f90y_lowering::lower_file(&file)?;
        let (optimized, report, compiled) = match self.pipeline {
            Pipeline::F90y => {
                let (optimized, report) = f90y_transform::optimize_with_report(&nir)?;
                let compiled = f90y_backend::compile(&optimized)?;
                (optimized, report, compiled)
            }
            Pipeline::Cmf => {
                let (optimized, report) = f90y_transform::optimize_with_options(
                    &nir,
                    f90y_transform::OptimizeOptions::per_statement(),
                )?;
                let compiled = f90y_baselines::compile_baseline(&nir, Baseline::Cmf)?;
                (optimized, report, compiled)
            }
            Pipeline::StarLisp => {
                let (optimized, report) = f90y_transform::optimize_with_options(
                    &nir,
                    f90y_transform::OptimizeOptions::per_statement(),
                )?;
                let compiled = f90y_baselines::compile_baseline(&nir, Baseline::StarLisp)?;
                (optimized, report, compiled)
            }
        };
        Ok(Executable { pipeline: self.pipeline, nir, optimized, report, compiled })
    }
}

/// A compiled program plus everything the harnesses want to inspect.
#[derive(Debug)]
pub struct Executable {
    /// The pipeline that produced it.
    pub pipeline: Pipeline,
    /// The lowered (unoptimized) NIR.
    pub nir: Imp,
    /// The NIR after the transformation pipeline.
    pub optimized: Imp,
    /// What the transformations did.
    pub report: TransformReport,
    /// The node routines and host program.
    pub compiled: CompiledProgram,
}

impl Executable {
    /// Run on a fresh machine with the given node count.
    ///
    /// # Errors
    ///
    /// Fails on any dynamic error during host execution.
    pub fn run(&self, nodes: usize) -> Result<RunReport, CompileError> {
        let mut cm = self.pipeline.machine(nodes);
        self.run_on(&mut cm)
    }

    /// Run on an existing machine (stats accumulate).
    ///
    /// # Errors
    ///
    /// Fails on any dynamic error during host execution.
    pub fn run_on(&self, cm: &mut Cm2) -> Result<RunReport, CompileError> {
        let before = cm.stats();
        let finals = HostExecutor::new(cm).run(&self.compiled)?;
        let after = cm.stats();
        let stats = MachineStats {
            compute_cycles: after.compute_cycles - before.compute_cycles,
            comm_cycles: after.comm_cycles - before.comm_cycles,
            dispatch_overhead_cycles: after.dispatch_overhead_cycles
                - before.dispatch_overhead_cycles,
            host_cycles: after.host_cycles - before.host_cycles,
            flops: after.flops - before.flops,
            dispatches: after.dispatches - before.dispatches,
            comm_calls: after.comm_calls - before.comm_calls,
            reductions: after.reductions - before.reductions,
        };
        let clock = cm.config().clock_hz;
        Ok(RunReport {
            gflops: stats.gflops(clock),
            elapsed_seconds: stats.elapsed_seconds(clock),
            host_fraction: stats.host_fraction(clock),
            stats,
            finals,
        })
    }

    /// Validate the compiled program against the NIR reference
    /// evaluator on a small machine: every captured array and scalar
    /// must agree to within floating-point roundoff.
    ///
    /// # Errors
    ///
    /// Fails if any value disagrees, or on dynamic errors.
    pub fn validate(&self) -> Result<(), CompileError> {
        let mut ev = f90y_nir::eval::Evaluator::new();
        ev.run(&self.nir)
            .map_err(CompileError::Transform)?;
        let run = self.run(16)?;
        for (name, value) in run.finals.finals() {
            // Transformation-introduced temporaries have no counterpart
            // in the unoptimized program.
            if ev.final_cell(name).is_none() {
                continue;
            }
            match value {
                f90y_backend::fe::Final::Array(got) => {
                    let expect = ev
                        .final_array_f64(name)
                        .map_err(CompileError::Transform)?;
                    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
                        if (e - g).abs() > 1e-9 * e.abs().max(1.0) {
                            return Err(CompileError::Backend(
                                f90y_backend::BackendError::Host(format!(
                                    "validation failed: {name}[{i}] evaluator={e} machine={g}"
                                )),
                            ));
                        }
                    }
                }
                f90y_backend::fe::Final::Scalar(got) => {
                    let expect = ev
                        .final_scalar_f64(name)
                        .map_err(CompileError::Transform)?;
                    if (expect - got).abs() > 1e-9 * expect.abs().max(1.0) {
                        return Err(CompileError::Backend(
                            f90y_backend::BackendError::Host(format!(
                                "validation failed: {name} evaluator={expect} machine={got}"
                            )),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One run's results and accounting.
#[derive(Debug)]
pub struct RunReport {
    /// Sustained GFLOPS over the run.
    pub gflops: f64,
    /// Modelled elapsed time in seconds.
    pub elapsed_seconds: f64,
    /// Fraction of elapsed time spent on the front end.
    pub host_fraction: f64,
    /// Raw counters.
    pub stats: MachineStats,
    /// Final variable values.
    pub finals: HostRun,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_compiles_and_runs() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("INTEGER K(64,64)\nK = 2*K + 5\n")
            .unwrap();
        let run = exe.run(64).unwrap();
        assert!(run.finals.final_array("k").unwrap().iter().all(|&x| x == 5.0));
        assert!(run.gflops > 0.0);
    }

    #[test]
    fn validate_catches_nothing_on_correct_programs() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile(&workloads::swe_source(16, 2))
            .unwrap();
        exe.validate().unwrap();
    }

    #[test]
    fn all_three_pipelines_agree_on_swe() {
        let src = workloads::swe_source(16, 2);
        let mut finals = Vec::new();
        for p in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
            let exe = Compiler::new(p).compile(&src).unwrap();
            let run = exe.run(16).unwrap();
            finals.push(run.finals.final_array("p").unwrap());
        }
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[0], finals[2]);
    }
}
