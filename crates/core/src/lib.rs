//! # f90y-core — the Fortran-90-Y compiler, assembled
//!
//! A Rust reproduction of Chen & Cowie, *Prototyping Fortran-90
//! Compilers for Massively Parallel Machines* (PLDI 1992): a formally
//! specified data-parallel Fortran 90 compiler for the Connection
//! Machine CM/2, together with the machine simulator, the CM Fortran and
//! \*Lisp comparator models, and the benchmark workloads of the paper's
//! evaluation.
//!
//! This crate is the front door; the pipeline stages live in their own
//! crates (see DESIGN.md for the inventory):
//!
//! ```text
//! source ──f90y-frontend──► AST ──f90y-lowering──► NIR
//!        ──f90y-transform──► blocked NIR ──f90y-backend──► PEAC + host
//!        ──f90y-cm2 (simulated CM/2)──► results + cycle counts
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use f90y_core::{Compiler, Pipeline, Target};
//!
//! let exe = Compiler::new(Pipeline::F90y)
//!     .compile("INTEGER K(64,64)\nK = 2*K + 5\n")?;
//! let run = exe.session(Target::Cm2 { nodes: 64 }).run()?; // a 64-node CM/2
//! assert!(run.finals().final_array("k")?.iter().all(|&x| x == 5.0));
//! println!("sustained: {:.2} GFLOPS", run.gflops());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Running is one API for every target: [`Executable::session`] opens a
//! [`Session`], chainable options configure it, and [`Session::run`]
//! returns a [`Run`] report (or a typed [`RunError`]). The same
//! executable retargets to the CM/5 MIMD engine — optionally under a
//! deterministic fault plan — by swapping the [`Target`]:
//!
//! ```
//! use f90y_core::{Compiler, FaultPlan, Pipeline, Target};
//!
//! let exe = Compiler::new(Pipeline::F90y)
//!     .compile("REAL A(32,32), S\nA = A + 1.0\nS = SUM(A)\n")?;
//! let clean = exe.session(Target::Cm5Mimd { nodes: 16 }).run()?;
//! let faulty = exe
//!     .session(Target::Cm5Mimd { nodes: 16 })
//!     .faults(FaultPlan::seeded(7).drop_per_mille(20).duplicate_per_mille(10))
//!     .run()?;
//! // Reliable delivery + recovery keep finals bit-identical.
//! assert_eq!(
//!     clean.finals().final_scalar("s")?,
//!     faulty.finals().final_scalar("s")?,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod predict;
pub mod workloads;

use std::error::Error;
use std::fmt;

pub use f90y_accel::{Accel, AccelConfig, AccelStats};
pub use f90y_analysis::{
    comm_lints, comm_plan, price, CommKind, CommOp, CommPlan, Diagnostic, LintReport, PricedPlan,
    WarnCode,
};
pub use f90y_backend::fe::HostRun;
pub use f90y_backend::CompiledProgram;
pub use f90y_cm2::{Cm2, Cm2Config, MachineStats};
pub use f90y_hal::{Registry, TargetManifest, Topology};
pub use f90y_mimd::{FaultPlan, MimdConfig, MimdStats};
pub use f90y_nir::Imp;
pub use f90y_obs::trace::{
    Actor, ChromeTraceSink, ClockDomain, JsonlTraceSink, Trace, TraceBuffer, TraceEvent, TraceSink,
};
pub use f90y_obs::{EventSink, JsonSink, PrettySink, Telemetry, TelemetryReport};
pub use f90y_transform::{DumpPoint, PassManager, PassReport, PipelineReport, TransformReport};

pub use predict::{PlanError, StaticProfile, TargetPrediction};

use f90y_backend::fe::HostExecutor;
use f90y_baselines::Baseline;
use f90y_frontend::ast::SourceFile;

/// Which compiler to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pipeline {
    /// The Fortran-90-Y prototype: full blocking and PE optimization.
    F90y,
    /// The CM Fortran slicewise v1.1 model: per-statement phases.
    Cmf,
    /// The \*Lisp fieldwise model: per-statement, naive PE code, the
    /// fieldwise machine multipliers.
    StarLisp,
}

impl Pipeline {
    /// Display name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Pipeline::F90y => "Fortran-90-Y",
            Pipeline::Cmf => "CM Fortran (slicewise)",
            Pipeline::StarLisp => "*Lisp (fieldwise)",
        }
    }

    /// The machine configuration this pipeline's code runs on.
    pub fn machine(self, nodes: usize) -> Cm2 {
        match self {
            Pipeline::StarLisp => Cm2::new(Cm2Config::fieldwise(nodes)),
            _ => Cm2::new(Cm2Config::slicewise(nodes)),
        }
    }
}

/// Any error along the compilation pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error.
    Parse(f90y_frontend::ParseError),
    /// Semantic-lowering error.
    Lower(f90y_lowering::LowerError),
    /// Transformation error.
    Transform(f90y_nir::NirError),
    /// Backend or execution error.
    Backend(f90y_backend::BackendError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Transform(e) => write!(f, "{e}"),
            CompileError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {}

impl From<f90y_frontend::ParseError> for CompileError {
    fn from(e: f90y_frontend::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<f90y_lowering::LowerError> for CompileError {
    fn from(e: f90y_lowering::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<f90y_nir::NirError> for CompileError {
    fn from(e: f90y_nir::NirError) -> Self {
        CompileError::Transform(e)
    }
}

impl From<f90y_backend::BackendError> for CompileError {
    fn from(e: f90y_backend::BackendError) -> Self {
        CompileError::Backend(e)
    }
}

/// A runtime error, distinct from [`CompileError`]: the latter means
/// the *program* could not be built, these mean a built program's *run*
/// went wrong (bad session configuration, a dynamic execution fault, an
/// exhausted fault-recovery budget, a validation mismatch).
#[derive(Debug)]
pub enum RunError {
    /// The session was configured inconsistently — a node count the
    /// target cannot honour, a fault plan aimed at the wrong target or
    /// at nodes the partition does not have.
    InvalidSession(String),
    /// A dynamic error during host execution.
    Execution(f90y_backend::BackendError),
    /// An injected fault plan exhausted its recovery budgets (message
    /// retries or node restarts) and the run could not complete.
    Unrecoverable(String),
    /// The machine's results disagree with the NIR reference evaluator.
    Validation(String),
    /// The NIR reference evaluator itself failed.
    Reference(f90y_nir::NirError),
    /// A configured trace sink failed to accept the run's trace (an
    /// I/O error writing the export).
    Trace(std::io::Error),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidSession(m) => write!(f, "invalid session: {m}"),
            RunError::Execution(e) => write!(f, "{e}"),
            RunError::Unrecoverable(m) => write!(f, "unrecoverable fault: {m}"),
            RunError::Validation(m) => write!(f, "validation failed: {m}"),
            RunError::Reference(e) => write!(f, "reference evaluator: {e}"),
            RunError::Trace(e) => write!(f, "trace sink: {e}"),
        }
    }
}

impl Error for RunError {}

impl From<f90y_backend::BackendError> for RunError {
    fn from(e: f90y_backend::BackendError) -> Self {
        match e {
            f90y_backend::BackendError::Machine(f90y_cm2::Cm2Error::Unrecoverable(m)) => {
                RunError::Unrecoverable(m)
            }
            other => RunError::Execution(other),
        }
    }
}

/// The compiler driver.
#[derive(Debug, Clone)]
pub struct Compiler {
    pipeline: Pipeline,
    passes: Option<Vec<String>>,
    verify: bool,
    audit: bool,
    dump: DumpPoint,
}

impl Compiler {
    /// A driver for the given pipeline, with that pipeline's default
    /// middle-end passes (see [`Compiler::passes`] to override them).
    pub fn new(pipeline: Pipeline) -> Self {
        Compiler {
            pipeline,
            passes: None,
            verify: false,
            audit: false,
            dump: DumpPoint::None,
        }
    }

    /// The selected pipeline.
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline
    }

    /// Override the middle-end pass list (registered pass names plus
    /// the `blocking` pseudo-name for the reorder/fuse fixpoint group).
    /// Unknown names fail at [`Compiler::compile`] time.
    #[must_use]
    pub fn passes<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.passes = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Enable inter-pass verification: after every middle-end pass the
    /// type and shape checkers re-run and evaluator finals are compared
    /// against the input program's; a miscompiling pass fails the build
    /// with an error naming it. Also switched on by the
    /// `F90Y_VERIFY_PASSES` environment variable (any value but `0`).
    #[must_use]
    pub fn verify_passes(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Enable the static def-use legality audit: after every middle-end
    /// pass, reaching-definition facts are recomputed and a pass that
    /// leaves a read no longer covered by any definition fails the
    /// build with an error naming it — the static sibling of
    /// [`Compiler::verify_passes`]. Also switched on by the
    /// `F90Y_AUDIT_PASSES` environment variable (any value but `0`).
    #[must_use]
    pub fn audit_passes(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Capture pretty-printed NIR dumps after the named pass (or after
    /// every pass); they land in [`Executable::pass_reports`].
    #[must_use]
    pub fn dump_ir(mut self, dump: DumpPoint) -> Self {
        self.dump = dump;
        self
    }

    /// The configured middle end as a [`PassManager`].
    ///
    /// # Errors
    ///
    /// Fails on an unknown pass name from [`Compiler::passes`].
    fn pass_manager(&self) -> Result<PassManager, f90y_nir::NirError> {
        let mgr = match &self.passes {
            Some(names) => PassManager::from_names(names)?,
            None => match self.pipeline {
                Pipeline::F90y => f90y_transform::default_passes(),
                // The baseline compilers model per-statement
                // compilation: no deduplication, no blocking.
                Pipeline::Cmf | Pipeline::StarLisp => f90y_transform::per_statement_passes(),
            },
        };
        let verify = self.verify || env_verify_passes();
        let audit = self.audit || env_audit_passes();
        Ok(mgr.verify(verify).audit(audit).dump(self.dump.clone()))
    }

    /// Lint Fortran 90 source without compiling it to the machine:
    /// parse, lower to NIR, and run the `f90y-analysis` diagnostics
    /// engine (`W-RACE`, `W-UNINIT`, `W-DEADSTORE`) over the lowered
    /// program. The middle end does not run — diagnostics describe the
    /// program as written, not as optimized.
    ///
    /// # Errors
    ///
    /// Fails on syntax or semantic-lowering errors; a program that
    /// merely warns still returns `Ok` (inspect
    /// [`LintReport::is_clean`]).
    pub fn lint(&self, source: &str) -> Result<LintReport, CompileError> {
        self.lint_with(source, &mut Telemetry::disabled())
    }

    /// [`Compiler::lint`] with telemetry: the analysis runs inside an
    /// `analysis.lint` span and lands `analysis.*` counters (statements
    /// analysed, dataflow facts computed, warnings by code).
    ///
    /// # Errors
    ///
    /// As [`Compiler::lint`].
    pub fn lint_with(&self, source: &str, tel: &mut Telemetry) -> Result<LintReport, CompileError> {
        let span = tel.start("compile.frontend.parse");
        let file = f90y_frontend::parse_file(source)?;
        tel.finish(span);
        let span = tel.start("compile.lowering");
        let nir = f90y_lowering::lower_file(&file)?;
        tel.finish(span);
        Ok(f90y_analysis::lint_with(&nir, tel))
    }

    /// Communication diagnostics (`W-WIDE-HALO`, `W-REDUNDANT-COMM`,
    /// `W-ALLTOALL`): run the configured middle end, then the comm
    /// lints over the *optimized* NIR — unlike [`Compiler::lint`],
    /// these describe the program as the machine will run it, flagging
    /// exactly the communication the pipeline had its chance to
    /// improve and did not. `topology` decides whether transpose-shaped
    /// traffic warrants `W-ALLTOALL` (it does on a hypercube mesh).
    ///
    /// # Errors
    ///
    /// Fails on syntax, semantic or transformation errors; a program
    /// that merely warns still returns `Ok`.
    pub fn lint_comm(
        &self,
        source: &str,
        topology: Topology,
    ) -> Result<Vec<Diagnostic>, CompileError> {
        let file = f90y_frontend::parse_file(source)?;
        let nir = f90y_lowering::lower_file(&file)?;
        let (optimized, _) = self
            .pass_manager()?
            .run_with(&nir, &mut Telemetry::disabled())?;
        Ok(comm_lints(&optimized, topology))
    }

    /// Compile Fortran 90 source to an executable for the simulated
    /// machine.
    ///
    /// # Errors
    ///
    /// Fails on syntax, semantic, transformation or code-generation
    /// errors.
    pub fn compile(&self, source: &str) -> Result<Executable, CompileError> {
        self.compile_with(source, &mut Telemetry::disabled())
    }

    /// [`Compiler::compile`] with telemetry: every stage runs inside a
    /// span, and each stage's characteristic counters land in `tel`
    /// (see DESIGN.md "Observability" for the glossary). With a
    /// disabled collector this is exactly [`Compiler::compile`].
    ///
    /// # Errors
    ///
    /// As [`Compiler::compile`].
    pub fn compile_with(
        &self,
        source: &str,
        tel: &mut Telemetry,
    ) -> Result<Executable, CompileError> {
        let whole = tel.start("compile");

        let span = tel.start("compile.frontend.parse");
        let file = f90y_frontend::parse_file(source)?;
        tel.finish(span);
        if tel.is_enabled() {
            // Re-lexing costs a second scan, but only when someone is
            // listening; the parse above already proved it lexes.
            if let Ok(tokens) = f90y_frontend::lexer::lex(source) {
                tel.count("frontend.tokens", tokens.len() as u64);
            }
            tel.count("frontend.ast_stmts", ast_stmt_count(&file) as u64);
            tel.count("frontend.ast_decls", ast_decl_count(&file) as u64);
        }

        let span = tel.start("compile.lowering");
        let nir = f90y_lowering::lower_file(&file)?;
        tel.finish(span);

        let span = tel.start("compile.transform");
        let (optimized, pass_reports) = self.pass_manager()?.run_with(&nir, tel)?;
        let report = TransformReport::from_pipeline(&pass_reports);
        tel.finish(span);
        if tel.is_enabled() {
            tel.count("transform.moves_before", report.moves_before as u64);
            tel.count("transform.moves_after", report.moves_after as u64);
            tel.count("transform.comm_temps", report.comm_temps as u64);
            tel.count("transform.comm_merged", report.comm_merged as u64);
            tel.count("transform.masked_pads", report.masked_pads as u64);
            tel.count("transform.temps_deleted", report.temps_deleted as u64);
            tel.count("transform.blocking_swaps", report.swaps as u64);
            tel.count("transform.blocks_after", report.blocks_after as u64);
            tel.count("transform.clauses_after", report.clauses_after as u64);
        }

        let span = tel.start("compile.backend");
        let compiled = match self.pipeline {
            Pipeline::F90y => f90y_backend::compile(&optimized)?,
            Pipeline::Cmf => f90y_baselines::compile_baseline(&nir, Baseline::Cmf)?,
            Pipeline::StarLisp => f90y_baselines::compile_baseline(&nir, Baseline::StarLisp)?,
        };
        tel.finish(span);
        if tel.is_enabled() {
            let pe = compiled.pe_stats();
            tel.count("backend.pe.dead_ops_removed", pe.dead_ops_removed as u64);
            tel.count("backend.pe.madds_fused", pe.madds_fused as u64);
            tel.count("backend.pe.loads_chained", pe.loads_chained as u64);
            tel.count("backend.pe.spill_stores", pe.spill_stores as u64);
            tel.count("backend.pe.spill_loads", pe.spill_loads as u64);
            tel.count("backend.pe.instructions", pe.instructions as u64);
            tel.gauge_max("backend.pe.vreg_pressure", pe.vregs_used as f64);
            tel.count("backend.node_blocks", compiled.blocks.len() as u64);
            tel.count("backend.host_stmts", host_stmt_count(&compiled.host) as u64);
        }

        tel.finish(whole);
        Ok(Executable {
            pipeline: self.pipeline,
            nir,
            optimized,
            report,
            pass_reports,
            compiled,
        })
    }
}

/// Whether the `F90Y_VERIFY_PASSES` environment variable asks for
/// inter-pass verification (set to anything but `0` or empty).
fn env_verify_passes() -> bool {
    std::env::var("F90Y_VERIFY_PASSES")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Whether the `F90Y_AUDIT_PASSES` environment variable asks for the
/// static def-use legality audit (set to anything but `0` or empty).
fn env_audit_passes() -> bool {
    std::env::var("F90Y_AUDIT_PASSES")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Executable statements in a parsed file (main program plus
/// subroutines), top level only — a size signal, not a deep node count.
fn ast_stmt_count(file: &SourceFile) -> usize {
    file.program.stmts.len()
        + file
            .subroutines
            .iter()
            .map(|s| s.stmts.len())
            .sum::<usize>()
}

fn ast_decl_count(file: &SourceFile) -> usize {
    file.program.decls.len()
}

/// Host-program statements, counted through every nesting level — the
/// host half of the paper's host/node split.
fn host_stmt_count(stmts: &[f90y_backend::HostStmt]) -> usize {
    use f90y_backend::HostStmt;
    stmts
        .iter()
        .map(|s| match s {
            HostStmt::Do { body, .. }
            | HostStmt::While { body, .. }
            | HostStmt::WithDecl { body, .. }
            | HostStmt::WithDomain { body, .. } => 1 + host_stmt_count(body),
            HostStmt::If {
                then_body,
                else_body,
                ..
            } => 1 + host_stmt_count(then_body) + host_stmt_count(else_body),
            HostStmt::Dispatch(_) | HostStmt::Comm { .. } | HostStmt::HostMove(_) => 1,
        })
        .sum()
}

/// A compiled program plus everything the harnesses want to inspect.
#[derive(Debug)]
pub struct Executable {
    /// The pipeline that produced it.
    pub pipeline: Pipeline,
    /// The lowered (unoptimized) NIR.
    pub nir: Imp,
    /// The NIR after the transformation pipeline.
    pub optimized: Imp,
    /// What the transformations did, summed up (a derived view over
    /// [`Executable::pass_reports`]).
    pub report: TransformReport,
    /// The middle end's per-pass reports and captured IR dumps.
    pub pass_reports: PipelineReport,
    /// The node routines and host program.
    pub compiled: CompiledProgram,
}

impl Executable {
    /// Open a [`Session`] on `target` — the one entry point for running
    /// a compiled program. Chain [`Session::telemetry`],
    /// [`Session::faults`], [`Session::host_threads`] or
    /// [`Session::on_machine`] to configure, then [`Session::run`].
    pub fn session(&self, target: Target) -> Session<'_> {
        Session {
            exe: self,
            target,
            tel: None,
            faults: None,
            machine: None,
            sinks: Vec::new(),
            host_threads: 1,
        }
    }

    /// The CM/2 execution behind every session: runs inside a `run`
    /// span; the run's cycle/flop deltas land as `sim.*` counters, and
    /// — with a recording collector — the machine's per-phase cycle
    /// profile is enabled for the run and lands as `sim.phase.<tag>.*`
    /// counters whose sums equal the `sim.*` category totals exactly.
    /// With `want_trace`, the machine's cycle-clocked flight recorder
    /// is enabled for the run and its trace returned alongside.
    fn run_cm2_impl(
        &self,
        cm: &mut Cm2,
        tel: &mut Telemetry,
        want_trace: bool,
    ) -> Result<(RunReport, Option<Trace>), RunError> {
        if tel.is_enabled() {
            // A fresh profile for this run, so phase sums equal the
            // stats delta reported below.
            cm.enable_profile();
        }
        if want_trace {
            cm.enable_flight_recorder();
        }
        let span = tel.start("run");
        let before = cm.stats();
        let finals = HostExecutor::new(cm).run(&self.compiled)?;
        let after = cm.stats();
        tel.finish(span);
        let trace = if want_trace { cm.take_flight() } else { None };
        let stats = MachineStats {
            compute_cycles: after.compute_cycles - before.compute_cycles,
            comm_cycles: after.comm_cycles - before.comm_cycles,
            dispatch_overhead_cycles: after.dispatch_overhead_cycles
                - before.dispatch_overhead_cycles,
            host_cycles: after.host_cycles - before.host_cycles,
            flops: after.flops - before.flops,
            dispatches: after.dispatches - before.dispatches,
            comm_calls: after.comm_calls - before.comm_calls,
            reductions: after.reductions - before.reductions,
        };
        if tel.is_enabled() {
            tel.count("sim.compute_cycles", stats.compute_cycles);
            tel.count("sim.comm_cycles", stats.comm_cycles);
            tel.count(
                "sim.dispatch_overhead_cycles",
                stats.dispatch_overhead_cycles,
            );
            tel.count("sim.host_cycles", stats.host_cycles);
            tel.count("sim.flops", stats.flops);
            tel.count("sim.dispatches", stats.dispatches);
            tel.count("sim.comm_calls", stats.comm_calls);
            tel.count("sim.reductions", stats.reductions);
            if let Some(profile) = cm.profile() {
                for (phase, cycles) in profile.phases() {
                    let categories = [
                        ("compute_cycles", cycles.compute_cycles),
                        ("comm_cycles", cycles.comm_cycles),
                        ("dispatch_overhead_cycles", cycles.dispatch_overhead_cycles),
                        ("host_cycles", cycles.host_cycles),
                    ];
                    for (category, value) in categories {
                        if value > 0 {
                            tel.count(&format!("sim.phase.{phase}.{category}"), value);
                        }
                    }
                }
            }
        }
        let clock = cm.config().clock_hz;
        Ok((
            RunReport {
                gflops: stats.gflops(clock),
                elapsed_seconds: stats.elapsed_seconds(clock),
                host_fraction: stats.host_fraction(clock),
                stats,
                finals,
            },
            trace,
        ))
    }

    /// The MIMD execution behind every session: runs inside a
    /// `run.mimd` span and the machine's counters land under `mimd.*` —
    /// message/byte/collective counts plus per-phase seconds (as
    /// gauges) and the busiest/least-busy node times. With a fault
    /// plan, the injection and recovery counters additionally land
    /// under `mimd.fault.*`. `host_threads` sets the host-side compute
    /// pool width (wall-clock only; deliberately *not* a telemetry
    /// counter, so reports stay bit-identical across widths).
    fn run_mimd_impl(
        &self,
        nodes: usize,
        faults: Option<FaultPlan>,
        host_threads: usize,
        tel: &mut Telemetry,
        want_trace: bool,
    ) -> Result<(MimdRunReport, Option<Trace>), RunError> {
        let fault_run = faults.is_some();
        let mut config = f90y_mimd::MimdConfig::new(nodes).with_host_threads(host_threads);
        if let Some(plan) = faults {
            config = config.with_faults(plan);
        }
        let mut machine = f90y_mimd::MimdMachine::new(config);
        if want_trace {
            machine.enable_trace();
        }
        let span = tel.start("run.mimd");
        let result = HostExecutor::new(&mut machine).run(&self.compiled);
        tel.finish(span);
        let finals = result.map_err(RunError::from)?;
        let trace = machine.take_trace();
        let stats = machine.stats().clone();
        if tel.is_enabled() {
            tel.count("mimd.nodes", nodes as u64);
            tel.count("mimd.flops", stats.flops);
            tel.count("mimd.dispatches", stats.dispatches);
            tel.count("mimd.comm_calls", stats.comm_calls);
            tel.count("mimd.halo_exchanges", stats.halo_exchanges);
            tel.count("mimd.router_batches", stats.router_batches);
            tel.count("mimd.reductions", stats.reductions);
            tel.count("mimd.messages", stats.messages);
            tel.count("mimd.bytes", stats.bytes);
            tel.gauge("mimd.elapsed_seconds", stats.elapsed_seconds());
            tel.gauge("mimd.compute_seconds", stats.compute_seconds);
            tel.gauge("mimd.network_seconds", stats.network_seconds);
            tel.gauge("mimd.control_seconds", stats.control_seconds);
            tel.gauge("mimd.host_seconds", stats.host_seconds);
            tel.gauge("mimd.gflops", stats.gflops());
            tel.gauge("mimd.imbalance", stats.imbalance());
            for &busy in &stats.node_busy_seconds {
                tel.gauge_max("mimd.node_busy_max_seconds", busy);
                tel.gauge_min("mimd.node_busy_min_seconds", busy);
            }
            tel.count("mimd.supersteps", stats.supersteps);
            if fault_run {
                tel.count("mimd.fault.injected", stats.faults_injected());
                tel.count("mimd.fault.msgs_dropped", stats.msgs_dropped);
                tel.count("mimd.fault.msgs_duplicated", stats.msgs_duplicated);
                tel.count("mimd.fault.msgs_delayed", stats.msgs_delayed);
                tel.count("mimd.fault.retries", stats.retries);
                tel.count("mimd.fault.dedup_suppressed", stats.dedup_suppressed);
                tel.count("mimd.fault.node_kills", stats.node_kills);
                tel.count("mimd.fault.node_restarts", stats.node_restarts);
                tel.count("mimd.fault.node_stalls", stats.node_stalls);
                tel.count("mimd.fault.checkpoints", stats.checkpoints);
                tel.count("mimd.fault.checkpoint_bytes", stats.checkpoint_bytes);
                tel.gauge("mimd.fault.recovery_seconds", stats.recovery_seconds);
            }
        }
        Ok((
            MimdRunReport {
                gflops: stats.gflops(),
                elapsed_seconds: stats.elapsed_seconds(),
                stats,
                finals,
            },
            trace,
        ))
    }

    /// The accelerator execution behind every session: runs inside a
    /// `run.accel` span and the machine's counters land under
    /// `accel.*` — kernel-launch and transfer counts, byte totals, and
    /// per-category device cycles. With `want_trace`, the device's
    /// cycle-clocked flight recorder is enabled for the run (kernel,
    /// shift/gather/reduce and h2d/d2h transfer phases tiling the
    /// clock) and its trace returned alongside.
    fn run_accel_impl(
        &self,
        nodes: usize,
        tel: &mut Telemetry,
        want_trace: bool,
    ) -> Result<(AccelRunReport, Option<Trace>), RunError> {
        let config = f90y_accel::AccelConfig::new(nodes);
        let mut machine = f90y_accel::Accel::new(config.clone());
        if want_trace {
            machine.enable_flight_recorder();
        }
        let span = tel.start("run.accel");
        let result = HostExecutor::new(&mut machine).run(&self.compiled);
        tel.finish(span);
        let finals = result.map_err(RunError::from)?;
        let trace = machine.take_flight();
        let stats = machine.stats();
        if tel.is_enabled() {
            tel.count("accel.units", nodes as u64);
            tel.count("accel.flops", stats.flops);
            tel.count("accel.kernel_launches", stats.kernel_launches);
            tel.count("accel.kernel_cycles", stats.kernel_cycles);
            tel.count("accel.launch_cycles", stats.launch_cycles);
            tel.count("accel.comm_cycles", stats.comm_cycles);
            tel.count("accel.transfer_cycles", stats.transfer_cycles);
            tel.count("accel.host_cycles", stats.host_cycles);
            tel.count("accel.h2d_transfers", stats.h2d_transfers);
            tel.count("accel.h2d_bytes", stats.h2d_bytes);
            tel.count("accel.d2h_transfers", stats.d2h_transfers);
            tel.count("accel.d2h_bytes", stats.d2h_bytes);
            tel.count("accel.comm_calls", stats.comm_calls);
            tel.count("accel.reductions", stats.reductions);
            tel.gauge("accel.elapsed_seconds", stats.elapsed_seconds(&config));
            tel.gauge("accel.gflops", stats.gflops(&config));
        }
        Ok((
            AccelRunReport {
                gflops: stats.gflops(&config),
                elapsed_seconds: stats.elapsed_seconds(&config),
                stats,
                finals,
            },
            trace,
        ))
    }

    /// The compile-time pass events a traced session prepends to its
    /// machine trace: one [`TraceEvent::Pass`] per middle-end pass, in
    /// pipeline order.
    fn pass_trace_events(&self) -> Vec<TraceEvent> {
        self.pass_reports
            .passes
            .iter()
            .enumerate()
            .map(|(i, p)| TraceEvent::Pass {
                ordinal: i as u64,
                name: p.name.clone(),
                rewrites: p.rewrites as u64,
            })
            .collect()
    }

    /// Validate the compiled program against the NIR reference
    /// evaluator on a small machine: every captured array and scalar
    /// must agree to within floating-point roundoff.
    ///
    /// # Errors
    ///
    /// [`RunError::Validation`] if any value disagrees;
    /// [`RunError::Reference`] or [`RunError::Execution`] when either
    /// side fails to run.
    pub fn validate(&self) -> Result<(), RunError> {
        let mut ev = f90y_nir::eval::Evaluator::new();
        ev.run(&self.nir).map_err(RunError::Reference)?;
        let run = self.session(Target::Cm2 { nodes: 16 }).run()?;
        for (name, value) in run.finals().finals() {
            // Transformation-introduced temporaries have no counterpart
            // in the unoptimized program.
            if ev.final_cell(name).is_none() {
                continue;
            }
            match value {
                f90y_backend::fe::Final::Array(got) => {
                    let expect = ev.final_array_f64(name).map_err(RunError::Reference)?;
                    for (i, (e, g)) in expect.iter().zip(got).enumerate() {
                        if (e - g).abs() > 1e-9 * e.abs().max(1.0) {
                            return Err(RunError::Validation(format!(
                                "{name}[{i}] evaluator={e} machine={g}"
                            )));
                        }
                    }
                }
                f90y_backend::fe::Final::Scalar(got) => {
                    let expect = ev.final_scalar_f64(name).map_err(RunError::Reference)?;
                    if (expect - got).abs() > 1e-9 * expect.abs().max(1.0) {
                        return Err(RunError::Validation(format!(
                            "{name} evaluator={expect} machine={got}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Where a [`Session`] runs the compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The simulated CM/2 SIMD machine — slicewise or fieldwise
    /// according to the pipeline that compiled the executable.
    Cm2 {
        /// Processing-element (node) count.
        nodes: usize,
    },
    /// The CM/5 MIMD execution engine: genuinely distributed sharded
    /// arrays, halo exchanges, combine trees (see `f90y-mimd`).
    Cm5Mimd {
        /// Processing-node count (must be a power of two).
        nodes: usize,
    },
    /// The accelerator model: array statements as kernel launches over
    /// device memory, with every host↔device byte an explicit transfer
    /// on the simulated clock (see `f90y-accel`).
    Accel {
        /// Device compute-unit count (must satisfy the manifest's node
        /// constraints: a power of two).
        nodes: usize,
    },
}

/// One configured run of an [`Executable`] — the single entry point
/// that replaced the old `run*` family.
///
/// Built by [`Executable::session`], configured by chaining, executed
/// by [`Session::run`]:
///
/// ```
/// use f90y_core::{Compiler, Pipeline, Target, Telemetry};
///
/// let exe = Compiler::new(Pipeline::F90y).compile("REAL A(32)\nA = A + 1.0\n")?;
/// let mut tel = Telemetry::new();
/// let run = exe
///     .session(Target::Cm5Mimd { nodes: 8 })
///     .telemetry(&mut tel)
///     .run()?;
/// assert!(run.finals().final_array("a")?.iter().all(|&x| x == 1.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session<'a> {
    exe: &'a Executable,
    target: Target,
    tel: Option<&'a mut Telemetry>,
    faults: Option<FaultPlan>,
    machine: Option<&'a mut Cm2>,
    sinks: Vec<&'a mut dyn TraceSink>,
    host_threads: usize,
}

impl<'a> Session<'a> {
    /// Record compilation-style telemetry for the run (spans plus
    /// `sim.*` / `mimd.*` counters; `mimd.fault.*` under a fault plan).
    #[must_use]
    pub fn telemetry(mut self, tel: &'a mut Telemetry) -> Self {
        self.tel = Some(tel);
        self
    }

    /// Inject the plan's deterministic faults
    /// ([`Target::Cm5Mimd`] only).
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Execute each superstep's compute phase on `n` host worker
    /// threads ([`Target::Cm5Mimd`] only; default 1 = sequential).
    /// Purely a wall-clock knob: node shards partition over the
    /// workers and results merge at the barrier in node-index order,
    /// so finals, telemetry and trace digests are bit-identical at
    /// any width — including under a fault plan. Validated by
    /// [`Session::run`] (`n ≥ 1`). Sessions that keep the default can
    /// be widened globally with `F90Y_HOST_THREADS=<n>` (the CI hook
    /// for re-running whole suites parallel); an explicit call here
    /// always wins.
    #[must_use]
    pub fn host_threads(mut self, n: usize) -> Self {
        self.host_threads = n;
        self
    }

    /// Record the run's flight-recorder trace and deliver it to `sink`
    /// when the run finishes. Superstep-clocked on [`Target::Cm5Mimd`]
    /// (per-node phases, send/recv flow edges, fault and recovery
    /// events), cycle-clocked on [`Target::Cm2`] (runtime-call phase
    /// slices), and always prefixed with one [`TraceEvent::Pass`] per
    /// middle-end pass. Chain several times to feed several sinks from
    /// one run (e.g. a [`ChromeTraceSink`] and a [`JsonlTraceSink`]).
    #[must_use]
    pub fn trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Run on an existing CM/2 instead of a fresh one, accumulating its
    /// stats ([`Target::Cm2`] only; the machine's node count must match
    /// the target's).
    #[must_use]
    pub fn on_machine(mut self, cm: &'a mut Cm2) -> Self {
        self.machine = Some(cm);
        self
    }

    /// Execute the session.
    ///
    /// # Errors
    ///
    /// [`RunError::InvalidSession`] when the configuration is
    /// inconsistent (non-power-of-two MIMD node count, a fault plan on
    /// the CM/2 target or targeting absent nodes, a zero or CM/2
    /// `host_threads` setting, a provided machine of the wrong size);
    /// [`RunError::Unrecoverable`] when an injected fault plan
    /// exhausts its recovery budgets; [`RunError::Execution`] on any
    /// other dynamic error.
    pub fn run(self) -> Result<Run, RunError> {
        let Session {
            exe,
            target,
            tel,
            faults,
            machine,
            mut sinks,
            host_threads,
        } = self;
        if host_threads == 0 {
            return Err(RunError::InvalidSession(
                "host_threads must be at least 1 (1 = sequential)".into(),
            ));
        }
        let mut local = Telemetry::disabled();
        let tel = tel.unwrap_or(&mut local);
        let want_trace = !sinks.is_empty();
        let (run, trace) = match target {
            Target::Cm2 { nodes } => {
                if faults.is_some() {
                    return Err(RunError::InvalidSession(
                        "fault plans apply to Target::Cm5Mimd only — the SIMD machine \
                         has no message layer to perturb"
                            .into(),
                    ));
                }
                if host_threads > 1 {
                    return Err(RunError::InvalidSession(format!(
                        "host_threads({host_threads}) applies to Target::Cm5Mimd only — \
                         the SIMD machine's cycle model is single-image"
                    )));
                }
                let (report, trace) = match machine {
                    Some(cm) => {
                        let have = cm.config().nodes;
                        if have != nodes {
                            return Err(RunError::InvalidSession(format!(
                                "on_machine provides a {have}-node CM/2 but the target \
                                 asks for {nodes} nodes"
                            )));
                        }
                        exe.run_cm2_impl(cm, tel, want_trace)?
                    }
                    None => {
                        let mut cm = exe.pipeline.machine(nodes);
                        exe.run_cm2_impl(&mut cm, tel, want_trace)?
                    }
                };
                (Run::Cm2(report), trace)
            }
            Target::Cm5Mimd { nodes } => {
                if machine.is_some() {
                    return Err(RunError::InvalidSession(
                        "on_machine provides a CM/2; it cannot host a Target::Cm5Mimd \
                         session"
                            .into(),
                    ));
                }
                if !nodes.is_power_of_two() {
                    return Err(RunError::InvalidSession(format!(
                        "MIMD node count must be a power of two, got {nodes}"
                    )));
                }
                if let Some(plan) = &faults {
                    plan.validate(nodes).map_err(RunError::InvalidSession)?;
                }
                // CI hook: `F90Y_HOST_THREADS` re-runs any MIMD suite
                // with a parallel compute phase without touching call
                // sites (results are bit-identical at any width, so
                // this can never change what a test observes). An
                // explicit `.host_threads()` call always wins.
                let host_threads = if host_threads == 1 {
                    std::env::var("F90Y_HOST_THREADS")
                        .ok()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or(1)
                } else {
                    host_threads
                };
                let (report, trace) =
                    exe.run_mimd_impl(nodes, faults, host_threads, tel, want_trace)?;
                (Run::Mimd(report), trace)
            }
            Target::Accel { nodes } => {
                if faults.is_some() {
                    return Err(RunError::InvalidSession(
                        "fault plans apply to Target::Cm5Mimd only — the accelerator \
                         model has no message layer to perturb"
                            .into(),
                    ));
                }
                if host_threads > 1 {
                    return Err(RunError::InvalidSession(format!(
                        "host_threads({host_threads}) applies to Target::Cm5Mimd only — \
                         the accelerator's device clock is single-image"
                    )));
                }
                if machine.is_some() {
                    return Err(RunError::InvalidSession(
                        "on_machine provides a CM/2; it cannot host a Target::Accel \
                         session"
                            .into(),
                    ));
                }
                f90y_hal::ACCEL
                    .check_nodes(nodes)
                    .map_err(RunError::InvalidSession)?;
                let (report, trace) = exe.run_accel_impl(nodes, tel, want_trace)?;
                (Run::Accel(report), trace)
            }
        };
        if let Some(mut trace) = trace {
            trace.prepend(exe.pass_trace_events());
            for sink in &mut sinks {
                sink.emit(&trace).map_err(RunError::Trace)?;
            }
        }
        Ok(run)
    }
}

/// What a [`Session`] produced: one report type across targets, with
/// target-independent accessors plus typed access to each report.
#[derive(Debug)]
pub enum Run {
    /// A CM/2 (SIMD) run.
    Cm2(RunReport),
    /// A CM/5 MIMD-engine run.
    Mimd(MimdRunReport),
    /// An accelerator run.
    Accel(AccelRunReport),
}

impl Run {
    /// Final variable values.
    pub fn finals(&self) -> &HostRun {
        match self {
            Run::Cm2(r) => &r.finals,
            Run::Mimd(r) => &r.finals,
            Run::Accel(r) => &r.finals,
        }
    }

    /// Sustained GFLOPS over the run.
    pub fn gflops(&self) -> f64 {
        match self {
            Run::Cm2(r) => r.gflops,
            Run::Mimd(r) => r.gflops,
            Run::Accel(r) => r.gflops,
        }
    }

    /// Modelled elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        match self {
            Run::Cm2(r) => r.elapsed_seconds,
            Run::Mimd(r) => r.elapsed_seconds,
            Run::Accel(r) => r.elapsed_seconds,
        }
    }

    /// The CM/2 report, when the session targeted the CM/2.
    pub fn as_cm2(&self) -> Option<&RunReport> {
        match self {
            Run::Cm2(r) => Some(r),
            _ => None,
        }
    }

    /// The MIMD report, when the session targeted the MIMD engine.
    pub fn as_mimd(&self) -> Option<&MimdRunReport> {
        match self {
            Run::Mimd(r) => Some(r),
            _ => None,
        }
    }

    /// The accelerator report, when the session targeted the
    /// accelerator.
    pub fn as_accel(&self) -> Option<&AccelRunReport> {
        match self {
            Run::Accel(r) => Some(r),
            _ => None,
        }
    }

    /// Unwrap the CM/2 report.
    ///
    /// # Panics
    ///
    /// Panics when the session ran on another target.
    pub fn into_cm2(self) -> RunReport {
        match self {
            Run::Cm2(r) => r,
            Run::Mimd(_) => panic!("session ran on Target::Cm5Mimd; use into_mimd()"),
            Run::Accel(_) => panic!("session ran on Target::Accel; use into_accel()"),
        }
    }

    /// Unwrap the MIMD report.
    ///
    /// # Panics
    ///
    /// Panics when the session ran on another target.
    pub fn into_mimd(self) -> MimdRunReport {
        match self {
            Run::Cm2(_) => panic!("session ran on Target::Cm2; use into_cm2()"),
            Run::Mimd(r) => r,
            Run::Accel(_) => panic!("session ran on Target::Accel; use into_accel()"),
        }
    }

    /// Unwrap the accelerator report.
    ///
    /// # Panics
    ///
    /// Panics when the session ran on another target.
    pub fn into_accel(self) -> AccelRunReport {
        match self {
            Run::Cm2(_) => panic!("session ran on Target::Cm2; use into_cm2()"),
            Run::Mimd(_) => panic!("session ran on Target::Cm5Mimd; use into_mimd()"),
            Run::Accel(r) => r,
        }
    }
}

/// One accelerator run's results and accounting.
#[derive(Debug)]
pub struct AccelRunReport {
    /// Sustained GFLOPS over the run.
    pub gflops: f64,
    /// Modelled elapsed time in seconds.
    pub elapsed_seconds: f64,
    /// The device's counters (launches, transfers, per-category
    /// cycles).
    pub stats: f90y_accel::AccelStats,
    /// Final variable values.
    pub finals: HostRun,
}

/// One MIMD run's results and accounting.
#[derive(Debug)]
pub struct MimdRunReport {
    /// Sustained GFLOPS over the run.
    pub gflops: f64,
    /// Modelled elapsed time in seconds.
    pub elapsed_seconds: f64,
    /// The MIMD machine's counters (messages, collectives, per-node
    /// busy time).
    pub stats: f90y_mimd::MimdStats,
    /// Final variable values.
    pub finals: HostRun,
}

/// One run's results and accounting.
#[derive(Debug)]
pub struct RunReport {
    /// Sustained GFLOPS over the run.
    pub gflops: f64,
    /// Modelled elapsed time in seconds.
    pub elapsed_seconds: f64,
    /// Fraction of elapsed time spent on the front end.
    pub host_fraction: f64,
    /// Raw counters.
    pub stats: MachineStats,
    /// Final variable values.
    pub finals: HostRun,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serving layer (`f90y-serve`) shares one compiled artifact
    /// across worker threads as an `Arc<Executable>`; this compile-time
    /// audit keeps `Executable` — and transitively the NIR, the pass
    /// reports and the compiled program — `Send + Sync`. If any layer
    /// grows interior mutability, this stops building and names it.
    #[test]
    fn executable_is_send_sync_for_artifact_sharing() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Executable>();
        assert_send_sync::<Compiler>();
        assert_send_sync::<CompileError>();
        assert_send_sync::<RunError>();
        assert_send_sync::<Run>();
    }

    #[test]
    fn quickstart_compiles_and_runs() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("INTEGER K(64,64)\nK = 2*K + 5\n")
            .unwrap();
        let run = exe.session(Target::Cm2 { nodes: 64 }).run().unwrap();
        assert!(run
            .finals()
            .final_array("k")
            .unwrap()
            .iter()
            .all(|&x| x == 5.0));
        assert!(run.gflops() > 0.0);
    }

    #[test]
    fn validate_catches_nothing_on_correct_programs() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile(&workloads::swe_source(16, 2))
            .unwrap();
        exe.validate().unwrap();
    }

    #[test]
    fn all_three_pipelines_agree_on_swe() {
        let src = workloads::swe_source(16, 2);
        let mut finals = Vec::new();
        for p in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
            let exe = Compiler::new(p).compile(&src).unwrap();
            let run = exe.session(Target::Cm2 { nodes: 16 }).run().unwrap();
            finals.push(run.finals().final_array("p").unwrap().to_vec());
        }
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[0], finals[2]);
    }

    #[test]
    fn session_rejects_inconsistent_configurations() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(8)\nA = A + 1.0\n")
            .unwrap();
        // Faults on the SIMD target.
        let err = exe
            .session(Target::Cm2 { nodes: 8 })
            .faults(FaultPlan::seeded(1))
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // Non-power-of-two MIMD partition.
        let err = exe.session(Target::Cm5Mimd { nodes: 6 }).run().unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // A fault plan aimed at a node the partition does not have.
        let err = exe
            .session(Target::Cm5Mimd { nodes: 4 })
            .faults(FaultPlan::seeded(1).kill(1, 9))
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // A machine of the wrong size.
        let mut cm = Pipeline::F90y.machine(16);
        let err = exe
            .session(Target::Cm2 { nodes: 8 })
            .on_machine(&mut cm)
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // Zero host threads.
        let err = exe
            .session(Target::Cm5Mimd { nodes: 8 })
            .host_threads(0)
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // A host pool on the single-image SIMD target.
        let err = exe
            .session(Target::Cm2 { nodes: 8 })
            .host_threads(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
    }

    #[test]
    fn accel_sessions_reject_inapplicable_options_with_typed_errors() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(8)\nA = A + 1.0\n")
            .unwrap();
        // Faults are a message-layer concept; the accelerator opts out
        // with a typed error, like the CM/2.
        let err = exe
            .session(Target::Accel { nodes: 8 })
            .faults(FaultPlan::seeded(1))
            .run()
            .unwrap_err();
        let msg = match err {
            RunError::InvalidSession(m) => m,
            other => panic!("expected InvalidSession, got {other:?}"),
        };
        assert!(msg.contains("no message layer"), "{msg}");
        // Host pools and borrowed CM/2s are equally inapplicable.
        let err = exe
            .session(Target::Accel { nodes: 8 })
            .host_threads(4)
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        let mut cm = Pipeline::F90y.machine(8);
        let err = exe
            .session(Target::Accel { nodes: 8 })
            .on_machine(&mut cm)
            .run()
            .unwrap_err();
        assert!(matches!(err, RunError::InvalidSession(_)));
        // Node counts are checked against the manifest, not a panic.
        let err = exe.session(Target::Accel { nodes: 6 }).run().unwrap_err();
        let msg = match err {
            RunError::InvalidSession(m) => m,
            other => panic!("expected InvalidSession, got {other:?}"),
        };
        assert!(msg.contains("power of two"), "{msg}");
    }

    #[test]
    fn accel_sessions_report_launches_and_transfers() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(32,32), S\nA = A + 3.0\nS = SUM(A)\n")
            .unwrap();
        let cm2 = exe.session(Target::Cm2 { nodes: 16 }).run().unwrap();
        let accel = exe.session(Target::Accel { nodes: 16 }).run().unwrap();
        assert_eq!(
            cm2.finals().final_array("a").unwrap(),
            accel.finals().final_array("a").unwrap()
        );
        let report = accel.into_accel();
        assert!(report.stats.kernel_launches > 0);
        assert!(report.stats.d2h_transfers > 0, "finals cross the bus");
        assert!(report.gflops > 0.0);
    }

    #[test]
    fn host_threads_change_nothing_observable() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(32,32), S\nA = A + 3.0\nA = CSHIFT(A, 1, 1)\nS = SUM(A)\n")
            .unwrap();
        let observe = |threads: usize| {
            let mut tel = Telemetry::new();
            let run = exe
                .session(Target::Cm5Mimd { nodes: 16 })
                .host_threads(threads)
                .telemetry(&mut tel)
                .run()
                .unwrap();
            let finals: Vec<u64> = run
                .finals()
                .final_array("a")
                .unwrap()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            // Spans carry wall-clock nanos, so compare only the
            // deterministic halves of the report.
            let report = tel.report();
            (finals, report.counters, report.gauges)
        };
        let baseline = observe(1);
        assert_eq!(observe(2), baseline);
        assert_eq!(observe(8), baseline);
    }

    #[test]
    fn session_targets_agree_and_faults_keep_finals_identical() {
        let exe = Compiler::new(Pipeline::F90y)
            .compile("REAL A(32,32), S\nA = A + 3.0\nS = SUM(A)\n")
            .unwrap();
        let cm2 = exe.session(Target::Cm2 { nodes: 16 }).run().unwrap();
        let mimd = exe.session(Target::Cm5Mimd { nodes: 16 }).run().unwrap();
        let faulty = exe
            .session(Target::Cm5Mimd { nodes: 16 })
            .faults(
                FaultPlan::seeded(11)
                    .drop_per_mille(50)
                    .duplicate_per_mille(20),
            )
            .run()
            .unwrap();
        let a = cm2.finals().final_array("a").unwrap().to_vec();
        assert_eq!(a, mimd.finals().final_array("a").unwrap());
        assert_eq!(a, faulty.finals().final_array("a").unwrap());
        assert!(faulty.as_mimd().unwrap().stats.faults_injected() > 0);
    }
}
