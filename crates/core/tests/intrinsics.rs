//! End-to-end tests of the MERGE and TRANSPOSE intrinsics through the
//! full pipeline, validated against the reference evaluator.

use f90y_core::{Compiler, Pipeline, Target};

fn validate(src: &str) -> f90y_core::RunReport {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles");
    exe.validate().expect("matches the reference evaluator");
    exe.session(Target::Cm2 { nodes: 16 })
        .run()
        .expect("runs")
        .into_cm2()
}

#[test]
fn merge_is_elemental_and_reaches_the_node_code() {
    let src = "
        REAL a(16), b(16), c(16)
        FORALL (i=1:16) a(i) = i
        FORALL (i=1:16) b(i) = 100 + i
        c = MERGE(a, b, a > 8.0)
    ";
    let exe = Compiler::new(Pipeline::F90y).compile(src).unwrap();
    // MERGE must compile onto the PEs (fselv), not fall to the host.
    let sel = exe
        .compiled
        .blocks
        .iter()
        .flat_map(|b| b.routine.body())
        .filter(|i| matches!(i, f90y_peac::Instr::Fselv { .. }))
        .count();
    assert!(sel >= 1, "MERGE should emit a masked vector move");
    let run = exe
        .session(Target::Cm2 { nodes: 16 })
        .run()
        .unwrap()
        .into_cm2();
    let c = run.finals.final_array("c").unwrap();
    for i in 1..=16usize {
        let expect = if i > 8 { i as f64 } else { 100.0 + i as f64 };
        assert_eq!(c[i - 1], expect, "C({i})");
    }
    exe.validate().unwrap();
}

#[test]
fn merge_with_scalar_branches() {
    let run = validate(
        "
        REAL a(12), s(12)
        FORALL (i=1:12) a(i) = i - 6
        s = MERGE(1.0, -1.0, a >= 0.0)
        ",
    );
    let s = run.finals.final_array("s").unwrap();
    for (i, &v) in s.iter().enumerate() {
        let expect = if (i as f64 + 1.0) - 6.0 >= 0.0 {
            1.0
        } else {
            -1.0
        };
        assert_eq!(v, expect, "S({})", i + 1);
    }
}

#[test]
fn merge_fuses_into_blocks_with_neighbours() {
    let src = "
        REAL a(32), b(32), c(32), d(32)
        FORALL (i=1:32) a(i) = i
        b = 2.0*a
        c = MERGE(a, b, a > 16.0)
        d = c + a
    ";
    let exe = Compiler::new(Pipeline::F90y).compile(src).unwrap();
    // b, c, d computations fuse into one block (a's init is separate
    // only if the reorderer could not join it).
    assert!(
        exe.compiled.blocks.len() <= 2,
        "MERGE must not break blocking: {} blocks",
        exe.compiled.blocks.len()
    );
    exe.validate().unwrap();
}

#[test]
fn transpose_round_trips() {
    let run = validate(
        "
        REAL a(4,6), at(6,4), back(4,6)
        FORALL (i=1:4, j=1:6) a(i,j) = 10*i + j
        at = TRANSPOSE(a)
        back = TRANSPOSE(at)
        ",
    );
    let a = run.finals.final_array("a").unwrap();
    let back = run.finals.final_array("back").unwrap();
    assert_eq!(a, back, "double transpose is the identity");
    let at = run.finals.final_array("at").unwrap();
    assert_eq!(at[0], 11.0); // AT(1,1) = A(1,1)
    assert_eq!(at[1], 21.0); // AT(1,2) = A(2,1)
    assert_eq!(at[6 * 4 - 1], 46.0); // AT(6,4) = A(4,6)
}

#[test]
fn transpose_is_charged_as_communication() {
    let src = "
        REAL a(32,32), at(32,32)
        FORALL (i=1:32, j=1:32) a(i,j) = i*j
        at = TRANSPOSE(a)
    ";
    let exe = Compiler::new(Pipeline::F90y).compile(src).unwrap();
    let run = exe
        .session(Target::Cm2 { nodes: 16 })
        .run()
        .unwrap()
        .into_cm2();
    assert!(
        run.stats.comm_calls >= 1,
        "a transpose is a general permutation (router)"
    );
}

#[test]
fn transpose_of_non_square_in_expressions() {
    validate(
        "
        REAL a(3,5), b(5,3), c(5,3)
        FORALL (i=1:3, j=1:5) a(i,j) = i + 10*j
        FORALL (i=1:5, j=1:3) b(i,j) = 1
        c = TRANSPOSE(a) + b
        ",
    );
}

#[test]
fn rank_errors_are_static() {
    let err = Compiler::new(Pipeline::F90y)
        .compile("REAL a(4), b(4)\nb = TRANSPOSE(a)\n")
        .unwrap_err();
    assert!(err.to_string().contains("rank"), "{err}");
}

#[test]
fn partial_sum_along_each_axis() {
    let run = validate(
        "
        REAL a(3,4), rows(4), cols(3)
        FORALL (i=1:3, j=1:4) a(i,j) = 10*i + j
        rows = SUM(a, DIM=1)
        cols = SUM(a, DIM=2)
        ",
    );
    let rows = run.finals.final_array("rows").unwrap();
    // SUM over i of 10*i + j = 60 + 3*j
    for (j, &v) in rows.iter().enumerate() {
        assert_eq!(v, 60.0 + 3.0 * (j as f64 + 1.0), "rows({})", j + 1);
    }
    let cols = run.finals.final_array("cols").unwrap();
    // SUM over j of 10*i + j = 40*i + 10
    for (i, &v) in cols.iter().enumerate() {
        assert_eq!(v, 40.0 * (i as f64 + 1.0) + 10.0, "cols({})", i + 1);
    }
}

#[test]
fn partial_maxval_and_minval() {
    let run = validate(
        "
        REAL a(4,5), mx(5), mn(4)
        FORALL (i=1:4, j=1:5) a(i,j) = MOD(i*7 + j*3, 11)
        mx = MAXVAL(a, DIM=1)
        mn = MINVAL(a, DIM=2)
        ",
    );
    assert_eq!(run.finals.final_array("mx").unwrap().len(), 5);
    assert_eq!(run.finals.final_array("mn").unwrap().len(), 4);
}

#[test]
fn spread_replicates_along_a_new_axis() {
    let run = validate(
        "
        REAL v(4), m1(3,4), m2(4,3)
        FORALL (i=1:4) v(i) = i*i
        m1 = SPREAD(v, 1, 3)
        m2 = SPREAD(v, 2, 3)
        ",
    );
    let m1 = run.finals.final_array("m1").unwrap();
    for r in 0..3 {
        for c in 0..4usize {
            assert_eq!(
                m1[r * 4 + c],
                ((c + 1) * (c + 1)) as f64,
                "m1({},{})",
                r + 1,
                c + 1
            );
        }
    }
    let m2 = run.finals.final_array("m2").unwrap();
    for r in 0..4usize {
        for c in 0..3 {
            assert_eq!(
                m2[r * 3 + c],
                ((r + 1) * (r + 1)) as f64,
                "m2({},{})",
                r + 1,
                c + 1
            );
        }
    }
}

#[test]
fn dot_product_matches_sum_of_products() {
    let run = validate(
        "
        REAL a(8), b(8)
        REAL d, s
        FORALL (i=1:8) a(i) = i
        FORALL (i=1:8) b(i) = 9 - i
        d = DOT_PRODUCT(a, b)
        s = SUM(a*b)
        ",
    );
    let d = run.finals.final_scalar("d").unwrap();
    let s = run.finals.final_scalar("s").unwrap();
    assert_eq!(d, s);
    let expect: f64 = (1..=8).map(|i| (i * (9 - i)) as f64).sum();
    assert_eq!(d, expect);
}

#[test]
fn sum_dim_requires_a_literal() {
    let err = Compiler::new(Pipeline::F90y)
        .compile("REAL a(4,4), r(4)\nINTEGER k\nk = 1\nr = SUM(a, k)\n")
        .unwrap_err();
    assert!(err.to_string().contains("literal"), "{err}");
}

#[test]
fn spread_feeding_computation_blocks() {
    // SPREAD result participates in whole-array arithmetic.
    validate(
        "
        REAL v(6), m(6,6), out(6,6)
        FORALL (i=1:6) v(i) = i
        FORALL (i=1:6, j=1:6) m(i,j) = i*j
        out = m + SPREAD(v, 1, 6)
        ",
    );
}

#[test]
fn redblack_workload_validates_and_uses_masked_moves() {
    use f90y_core::workloads;
    let src = workloads::redblack_source(16, 2);
    let exe = Compiler::new(Pipeline::F90y).compile(&src).unwrap();
    exe.validate().unwrap();
    // The strided half-sweeps must pad to masked full-array moves
    // (Fig. 10 machinery in a real kernel).
    assert!(
        exe.report.masked_pads >= 2,
        "pads: {}",
        exe.report.masked_pads
    );
    let sel = exe
        .compiled
        .blocks
        .iter()
        .flat_map(|b| b.routine.body())
        .filter(|i| matches!(i, f90y_peac::Instr::Fselv { .. }))
        .count();
    assert!(sel >= 2, "masked moves in node code: {sel}");
}

#[test]
fn logical_arrays_flow_through_the_machine() {
    let run = validate(
        "
        REAL a(16), b(16)
        LOGICAL m(16)
        FORALL (i=1:16) a(i) = i - 8
        m = a > 0.0
        b = MERGE(a, -a, m)
        WHERE (m) b = b + 100.0
        ",
    );
    let b = run.finals.final_array("b").unwrap();
    let m = run.finals.final_array("m").unwrap();
    for i in 0..16usize {
        let a = (i as f64 + 1.0) - 8.0;
        let expect_m = if a > 0.0 { 1.0 } else { 0.0 };
        assert_eq!(m[i], expect_m, "m({})", i + 1);
        let expect_b = if a > 0.0 { a + 100.0 } else { -a };
        assert_eq!(b[i], expect_b, "b({})", i + 1);
    }
}

#[test]
fn logical_scalars_and_literals() {
    let run = validate(
        "
        LOGICAL flag
        REAL a(8)
        flag = .TRUE.
        IF (flag) THEN
          a = 1.0
        ELSE
          a = 2.0
        END IF
        flag = .NOT. flag
        ",
    );
    assert!(run
        .finals
        .final_array("a")
        .unwrap()
        .iter()
        .all(|&x| x == 1.0));
    assert_eq!(run.finals.final_scalar("flag").unwrap(), 0.0);
}
