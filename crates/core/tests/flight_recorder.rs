//! End-to-end tests of the session flight recorder: a traced SWE run
//! on the MIMD engine must pair every message send with exactly one
//! receive, agree with the `mimd.*` telemetry counters, and export a
//! well-formed Chrome trace; the CM/2 target must produce a
//! cycle-clocked trace from the same `.trace(sink)` chainer.

use f90y_core::{
    workloads, ChromeTraceSink, ClockDomain, Compiler, JsonlTraceSink, Pipeline, Target, Telemetry,
    Trace, TraceBuffer, TraceEvent,
};

fn traced_swe(nodes: usize) -> (Trace, Telemetry) {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(&workloads::swe_source(32, 2))
        .expect("swe compiles");
    let mut tel = Telemetry::new();
    let mut buf = TraceBuffer::default();
    exe.session(Target::Cm5Mimd { nodes })
        .telemetry(&mut tel)
        .trace(&mut buf)
        .run()
        .expect("swe runs");
    (buf.trace.expect("trace captured"), tel)
}

#[test]
fn traced_swe_pairs_every_send_with_exactly_one_recv() {
    let (trace, tel) = traced_swe(16);
    assert_eq!(trace.clock(), ClockDomain::Superstep);
    let paired = trace.verify_flow_pairing().expect("flows pair");
    assert_eq!(trace.sends(), paired);
    assert_eq!(trace.recvs(), paired);
    let messages = tel
        .report()
        .counter("mimd.messages")
        .expect("mimd.messages counter");
    assert_eq!(paired as u64, messages, "trace flows == telemetry count");
    assert!(paired > 0, "SWE halo exchange must message on 16 nodes");
}

#[test]
fn traced_run_prepends_one_pass_event_per_middle_end_pass() {
    let (trace, _) = traced_swe(16);
    let passes: Vec<_> = trace
        .events()
        .iter()
        .take_while(|e| matches!(e, TraceEvent::Pass { .. }))
        .collect();
    assert!(!passes.is_empty(), "pass events lead the trace");
    for (i, ev) in passes.iter().enumerate() {
        if let TraceEvent::Pass { ordinal, name, .. } = ev {
            assert_eq!(*ordinal, i as u64);
            assert!(!name.is_empty());
        }
    }
    // No Pass events after the machine section begins.
    let tail_passes = trace
        .events()
        .iter()
        .skip(passes.len())
        .filter(|e| matches!(e, TraceEvent::Pass { .. }))
        .count();
    assert_eq!(tail_passes, 0);
}

#[test]
fn chrome_export_carries_flow_edges_and_loads_as_json() {
    let (trace, _) = traced_swe(16);
    let chrome = trace.to_chrome_json();
    assert!(chrome.starts_with('{') && chrome.ends_with('}'));
    assert!(chrome.contains("\"traceEvents\""));
    let starts = chrome.matches("\"ph\":\"s\"").count();
    let finishes = chrome.matches("\"ph\":\"f\"").count();
    let paired = trace.verify_flow_pairing().unwrap();
    assert_eq!(starts, paired, "one flow start per message");
    assert_eq!(finishes, paired, "one flow finish per message");
}

#[test]
fn traced_swe_is_deterministic_across_runs() {
    let (a, _) = traced_swe(16);
    let (b, _) = traced_swe(16);
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.to_chrome_json(), b.to_chrome_json());
}

#[test]
fn one_session_feeds_chrome_and_jsonl_sinks_together() {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(&workloads::swe_source(16, 1))
        .expect("swe compiles");
    let mut chrome = ChromeTraceSink::new(Vec::new());
    let mut jsonl = JsonlTraceSink::new(Vec::new());
    let mut buf = TraceBuffer::default();
    exe.session(Target::Cm5Mimd { nodes: 4 })
        .trace(&mut chrome)
        .trace(&mut jsonl)
        .trace(&mut buf)
        .run()
        .expect("swe runs");
    let trace = buf.trace.expect("trace captured");
    let chrome = String::from_utf8(chrome.into_inner()).unwrap();
    let jsonl = String::from_utf8(jsonl.into_inner()).unwrap();
    assert_eq!(chrome, format!("{}\n", trace.to_chrome_json()));
    assert_eq!(jsonl, trace.to_jsonl());
    // JSONL: one header line plus one line per event.
    assert_eq!(jsonl.lines().count(), trace.len() + 1);
}

#[test]
fn cm2_sessions_trace_on_the_cycle_clock() {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(&workloads::swe_source(16, 1))
        .expect("swe compiles");
    let mut buf = TraceBuffer::default();
    exe.session(Target::Cm2 { nodes: 16 })
        .trace(&mut buf)
        .run()
        .expect("swe runs");
    let trace = buf.trace.expect("trace captured");
    assert_eq!(trace.clock(), ClockDomain::Cycle);
    let phases = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Phase { .. }))
        .count();
    assert!(phases > 0, "CM/2 runtime calls appear as phase slices");
}

#[test]
fn untraced_sessions_stay_untraced() {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(&workloads::swe_source(16, 1))
        .expect("swe compiles");
    // No .trace() chainer: the machines must not pay for recording.
    let run = exe
        .session(Target::Cm5Mimd { nodes: 4 })
        .run()
        .expect("swe runs");
    assert!(run.into_mimd().stats.supersteps > 0);
}
