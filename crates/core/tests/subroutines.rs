//! End-to-end tests of subroutine inlining: the paper's "scientific
//! library functions" motivation.

use f90y_core::{Compiler, Pipeline, Target};

fn validate(src: &str) -> f90y_core::RunReport {
    let exe = Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles");
    exe.validate().expect("matches the reference evaluator");
    exe.session(Target::Cm2 { nodes: 16 })
        .run()
        .expect("runs")
        .into_cm2()
}

#[test]
fn a_library_smoother_inlines_and_validates() {
    let run = validate(
        "
PROGRAM main
REAL t(32), s(32)
FORALL (i=1:32) t(i) = MOD(i*13, 50)
CALL smooth(t, s)
CALL smooth(s, t)
END PROGRAM main

SUBROUTINE smooth(x, y)
REAL x(32), y(32)
y = 0.25*CSHIFT(x, -1, 1) + 0.5*x + 0.25*CSHIFT(x, 1, 1)
END SUBROUTINE smooth
",
    );
    let t = run.finals.final_array("t").unwrap();
    assert_eq!(t.len(), 32);
    // Smoothing twice preserves the mean (circular convolution with a
    // unit-sum kernel).
    let mean: f64 = t.iter().sum::<f64>() / 32.0;
    let init_mean: f64 = (1..=32).map(|i| ((i * 13) % 50) as f64).sum::<f64>() / 32.0;
    assert!((mean - init_mean).abs() < 1e-9);
}

#[test]
fn scalar_arguments_by_reference_and_value() {
    let run = validate(
        "
PROGRAM main
REAL a(8)
REAL total
FORALL (i=1:8) a(i) = i
CALL scale_and_sum(a, 2.0 + 1.0, total)
END PROGRAM main

SUBROUTINE scale_and_sum(v, factor, out)
REAL v(8)
REAL factor, out
v = v * factor
out = SUM(v)
END SUBROUTINE scale_and_sum
",
    );
    // factor = 3.0 by value; v scaled in place; out by reference.
    assert_eq!(run.finals.final_scalar("total").unwrap(), 36.0 * 3.0);
    let a = run.finals.final_array("a").unwrap();
    assert_eq!(a[7], 24.0);
}

#[test]
fn nested_calls_inline_transitively() {
    let run = validate(
        "
PROGRAM main
REAL x(16)
FORALL (i=1:16) x(i) = i
CALL twice(x)
END PROGRAM main

SUBROUTINE dbl(v)
REAL v(16)
v = 2.0*v
END SUBROUTINE dbl

SUBROUTINE twice(v)
REAL v(16)
CALL dbl(v)
CALL dbl(v)
END SUBROUTINE twice
",
    );
    let x = run.finals.final_array("x").unwrap();
    assert_eq!(x[0], 4.0);
    assert_eq!(x[15], 64.0);
}

#[test]
fn locals_rename_apart_across_call_sites() {
    let run = validate(
        "
PROGRAM main
REAL a(8), b(8)
REAL tmp
tmp = 99.0
FORALL (i=1:8) a(i) = i
FORALL (i=1:8) b(i) = 10*i
CALL norm(a)
CALL norm(b)
END PROGRAM main

SUBROUTINE norm(v)
REAL v(8)
REAL tmp
tmp = MAXVAL(v)
v = v / tmp
END SUBROUTINE norm
",
    );
    // The caller's tmp is untouched by the subroutine's local tmp.
    assert_eq!(run.finals.final_scalar("tmp").unwrap(), 99.0);
    let a = run.finals.final_array("a").unwrap();
    assert_eq!(a[7], 1.0);
    let b = run.finals.final_array("b").unwrap();
    assert_eq!(b[7], 1.0);
}

#[test]
fn inlined_library_code_fuses_with_caller_statements() {
    // The motivation: library routines participate in blocking.
    let src = "
PROGRAM main
REAL a(64), b(64)
FORALL (i=1:64) a(i) = i
CALL axpyish(a, b)
b = b + 1.0
END PROGRAM main

SUBROUTINE axpyish(x, y)
REAL x(64), y(64)
y = 2.0*x + 3.0
END SUBROUTINE axpyish
";
    let exe = Compiler::new(Pipeline::F90y).compile(src).unwrap();
    // The subroutine's statement and the caller's `b = b + 1` fuse.
    assert!(
        exe.compiled.blocks.len() <= 2,
        "inlined code must fuse with the caller: {} blocks",
        exe.compiled.blocks.len()
    );
    exe.validate().unwrap();
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

fn expect_error(src: &str, needle: &str) {
    let err = Compiler::new(Pipeline::F90y).compile(src).unwrap_err();
    assert!(
        err.to_string().contains(needle),
        "expected '{needle}' in: {err}"
    );
}

#[test]
fn unknown_subroutine_is_reported() {
    expect_error("REAL a(4)\nCALL ghost(a)\n", "unknown subroutine");
}

#[test]
fn arity_mismatch_is_reported() {
    expect_error(
        "
REAL a(4)
CALL f(a, a)
END
SUBROUTINE f(x)
REAL x(4)
x = 0.0
END SUBROUTINE f
",
        "expects 1 arguments",
    );
}

#[test]
fn bounds_mismatch_is_reported() {
    expect_error(
        "
REAL a(8)
CALL f(a)
END
SUBROUTINE f(x)
REAL x(4)
x = 0.0
END SUBROUTINE f
",
        "bounds",
    );
}

#[test]
fn expression_actual_for_written_dummy_is_reported() {
    expect_error(
        "
REAL y
CALL f(1.0 + 2.0)
END
SUBROUTINE f(x)
REAL x
x = 0.0
END SUBROUTINE f
",
        "must be a variable",
    );
}

#[test]
fn recursion_is_reported() {
    expect_error(
        "
REAL a(4)
CALL f(a)
END
SUBROUTINE f(x)
REAL x(4)
CALL f(x)
END SUBROUTINE f
",
        "recursion",
    );
}
