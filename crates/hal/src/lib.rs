//! # f90y-hal — target hardware abstraction layer
//!
//! The paper's retargeting claim (§5.3.1) is that the front end is
//! machine-independent: porting the compiler to the CM/5 "retains the
//! majority of its structure" because machine facts are concentrated in
//! the back end. This crate takes that concentration one step further
//! (ROADMAP item 3): every machine fact the backends used to hard-code —
//! vector width, clock rates, comm topology, per-operation dispatch and
//! transfer costs — lives here as *data*, in a [`TargetManifest`], and
//! the machine crates consume manifests instead of scattering constants.
//!
//! * [`manifest`] — the manifest schema ([`TargetManifest`], cost
//!   blocks, node constraints, topology, memory regions), the builtin
//!   CM/2 / CM/5 / Accel manifests, and the [`Registry`] keyed by
//!   manifest name.
//! * [`mod@replay`] — the machine-level [`TraceEvent`] log a SIMD run emits
//!   and the generalized replay estimator ([`replay::replay`]) that
//!   re-times a trace under any manifest carrying a MIMD cost block.
//!   For the CM/5 manifest it reproduces the retired `f90y-cm5`
//!   estimator's numbers bit for bit (golden tests pin this).
//!
//! The manifests are `const` — a manifest is a claim about a machine,
//! not a runtime object — so backends can define their own public cost
//! constants as field reads and the compiler proves the tables agree.

pub mod manifest;
pub mod replay;

pub use manifest::{
    AccelCosts, MemoryRegion, MimdCosts, NodeConstraints, Registry, SimdCosts, TargetKind,
    TargetManifest, Topology, ACCEL, ACCEL_COSTS, CM2, CM2_SIMD_COSTS, CM5, CM5_MIMD_COSTS,
};
pub use replay::{replay, ReplayError, ReplayStats, TraceEvent};
