//! Capability manifests: machine facts as data.
//!
//! A [`TargetManifest`] records everything a backend needs to know
//! about its machine that is a *fact about the hardware* rather than an
//! algorithm: clocks, vector width, node-count constraints, comm
//! topology, memory regions, and the per-operation cost tables. The
//! three builtin manifests ([`CM2`], [`CM5`], [`ACCEL`]) are `const`;
//! the [`Registry`] keys them by name for `f90yc --list-targets` and
//! the serve protocol.
//!
//! The cost blocks are split by execution model rather than forced into
//! one shape — a SIMD sequencer's IFIFO overhead and an accelerator's
//! host↔device transfer setup are different *kinds* of fact:
//!
//! * [`SimdCosts`] — the CM/2 model: dispatch/IFIFO overhead, runtime
//!   call entry, hypercube wire cycles, router multiplier, host costs.
//!   Its methods are the cycle formulas `f90y-cm2` charges.
//! * [`MimdCosts`] — the CM/5 model: SPARC/VU clocks, fat-tree
//!   bandwidth, control-processor dispatch, and the replay beat
//!   weights [`crate::replay::replay`] uses.
//! * [`AccelCosts`] — the accelerator model (after ForOpenCL, see
//!   PAPERS.md): device clock, kernel-launch overhead, and explicit
//!   host↔device transfer costs per call and per element.

use std::fmt;

use f90y_peac::costs::{MEM_CYCLES, VOP_CYCLES};

/// The execution model a manifest describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Lockstep SIMD: one sequencer, one cycle clock (CM/2).
    Simd,
    /// Distributed MIMD: per-node programs, superstep clock (CM/5).
    Mimd,
    /// Host-directed accelerator: kernel launches over device memory
    /// with explicit host↔device transfers.
    Accel,
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetKind::Simd => write!(f, "SIMD"),
            TargetKind::Mimd => write!(f, "MIMD"),
            TargetKind::Accel => write!(f, "accelerator"),
        }
    }
}

/// The communication topology connecting a machine's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Boolean hypercube, two wires per dimension (the CM-2's NEWS grid
    /// and general router both ride it).
    Hypercube,
    /// Fat-tree data network plus a combine-capable control network
    /// (CM-5).
    FatTree,
    /// A single shared host↔device bus: every byte between host and
    /// device memory crosses it as an explicit transfer.
    HostBus,
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Hypercube => write!(f, "boolean hypercube (2 wires/dim)"),
            Topology::FatTree => write!(f, "fat tree + control network"),
            Topology::HostBus => write!(f, "host\u{2194}device bus"),
        }
    }
}

/// What node counts a target accepts. "Node" is the manifest's unit of
/// independent progress: a slicewise PE on the CM/2, a SPARC node on
/// the CM/5, a compute unit on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConstraints {
    /// Smallest accepted node count.
    pub min: usize,
    /// Largest accepted node count.
    pub max: usize,
    /// Whether the count must be a power of two (layout splitting and
    /// combine trees assume it on every builtin target).
    pub power_of_two: bool,
}

impl NodeConstraints {
    /// Human-readable form for `--list-targets` and error messages.
    pub fn describe(&self) -> String {
        if self.power_of_two {
            format!("power of two in {}..={}", self.min, self.max)
        } else {
            format!("{}..={}", self.min, self.max)
        }
    }

    /// Whether `nodes` satisfies the constraints.
    pub fn allows(&self, nodes: usize) -> bool {
        nodes >= self.min && nodes <= self.max && (!self.power_of_two || nodes.is_power_of_two())
    }
}

/// One addressable memory region of a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegion {
    /// Short name (`"cm"`, `"device"`, `"host"`, …).
    pub name: &'static str,
    /// What lives there and how it is reached.
    pub note: &'static str,
}

/// The CM/2 (SIMD) cost block: every constant `f90y-cm2`'s cost model
/// charges, with the cycle formulas as methods. The constants'
/// justifications live with the re-exports in `f90y_cm2::costs`; here
/// they are plain machine facts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdCosts {
    /// Sequencer + IFIFO overhead to call one PEAC routine.
    pub dispatch_base_cycles: u64,
    /// Additional cycles per routine argument pushed over the IFIFO.
    pub dispatch_per_arg_cycles: u64,
    /// Runtime-library entry overhead for a communication or reduction
    /// call.
    pub rt_call_cycles: u64,
    /// Cycles to move one 64-bit element over a hypercube dimension's
    /// two 1-bit wires.
    pub wire_cycles_per_elem: u64,
    /// Router multiplier over grid (NEWS) communication.
    pub router_factor: u64,
    /// Host-side cycles per host program operation.
    pub host_op_cycles: u64,
    /// Host (front end) clock in Hz.
    pub host_clock_hz: f64,
}

impl SimdCosts {
    /// Node cycles for a PEAC routine dispatch executing `iterations`
    /// subgrid-loop iterations of a body costing `body_cycles` per
    /// iteration.
    pub fn dispatch_cycles(&self, nargs: usize, body_cycles: u64, iterations: u64) -> u64 {
        self.dispatch_base_cycles
            + self.dispatch_per_arg_cycles * nargs as u64
            + body_cycles * iterations
    }

    /// Node cycles for a grid (NEWS) shift: every node copies its
    /// subgrid (in/out through the vector unit) and serialises its
    /// boundary-crossing elements onto the wires.
    pub fn grid_comm_cycles(&self, iterations_per_node: u64, crossing_per_node: u64) -> u64 {
        let local_copy = 2 * iterations_per_node * MEM_CYCLES;
        let wire = crossing_per_node * self.wire_cycles_per_elem;
        self.rt_call_cycles + local_copy + wire
    }

    /// Node cycles for a general router copy moving every subgrid
    /// element to an arbitrary destination.
    pub fn router_comm_cycles(&self, subgrid: usize) -> u64 {
        self.rt_call_cycles + subgrid as u64 * self.wire_cycles_per_elem * self.router_factor
    }

    /// Node cycles for a full reduction: a local vector pass over the
    /// subgrid, then log₂(P) combine steps over the hypercube.
    pub fn reduction_cycles(&self, iterations_per_node: u64, nodes: usize) -> u64 {
        let local = iterations_per_node * (MEM_CYCLES + VOP_CYCLES);
        let combine =
            (nodes.max(2).trailing_zeros() as u64) * (self.wire_cycles_per_elem + VOP_CYCLES);
        self.rt_call_cycles + local + combine
    }

    /// Node cycles to materialise a coordinate subgrid: one generation
    /// pass writing the subgrid through the vector unit.
    pub fn coordinate_gen_cycles(&self, iterations_per_node: u64) -> u64 {
        self.rt_call_cycles + iterations_per_node * (VOP_CYCLES + MEM_CYCLES)
    }
}

/// The CM/5 (MIMD) cost block: the machine constants `f90y-mimd`'s
/// engine configures itself with, plus the beat weights the replay
/// estimator applies to a traced SIMD run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MimdCosts {
    /// Node SPARC clock (33 MHz).
    pub sparc_clock_hz: f64,
    /// Vector-unit clock (16 MHz).
    pub vu_clock_hz: f64,
    /// Vector units per node (4).
    pub vus_per_node: usize,
    /// Fat-tree per-node bandwidth in bytes/second (~20 MB/s).
    pub network_bytes_per_sec: f64,
    /// Network latency per communication call, in seconds (software
    /// overhead of the data-network send/receive path).
    pub net_call_seconds: f64,
    /// Control-processor dispatch overhead per block launch, in SPARC
    /// cycles: the CM-5's active-message dispatch was far leaner than
    /// the CM-2 IFIFO protocol.
    pub cp_dispatch_cycles: u64,
    /// Per-argument broadcast cost in control-processor cycles.
    pub cp_per_arg_cycles: u64,
    /// Replay beat weight for memory instructions: each VU has its own
    /// memory port, so a word streams at half a beat.
    pub mem_beat_weight: f64,
    /// Replay beat weight for divide instructions (extra beats).
    pub div_beat_weight: f64,
    /// Replay beat weight for library-call instructions.
    pub lib_beat_weight: f64,
    /// SPARC cycles per replayed host operation (the partition manager
    /// does host work at SPARC speed).
    pub host_op_sparc_cycles: f64,
    /// Bytes per element on the wire (64-bit reals).
    pub element_bytes: f64,
}

/// The accelerator cost block (modeled on ForOpenCL's host/device
/// split): a device clock, kernel-launch overhead, and explicit
/// host↔device transfer costs. The numbers describe a generic
/// early-1990s-budget attached array processor scaled to the same
/// arithmetic as the CM targets, so cross-target tables stay readable;
/// only the *structure* (launches and transfers on a simulated clock)
/// is the point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelCosts {
    /// Device clock in Hz.
    pub device_clock_hz: f64,
    /// Device cycles of launch overhead per kernel (queue submission,
    /// argument binding, scheduling).
    pub kernel_launch_cycles: u64,
    /// Additional launch cycles per kernel argument.
    pub launch_per_arg_cycles: u64,
    /// Device cycles of setup per host↔device transfer call (DMA
    /// programming, synchronisation).
    pub transfer_setup_cycles: u64,
    /// Device cycles per 64-bit element crossing the host↔device bus.
    pub transfer_cycles_per_elem: u64,
    /// Device cycles of entry overhead per device-side communication or
    /// reduction call (shift, gather, reduce, coordinate generation).
    pub comm_call_cycles: u64,
    /// Extra per-element factor a general gather pays over a structured
    /// shift (arbitrary addressing defeats coalescing).
    pub gather_factor: u64,
    /// Host-side cycles per host program operation.
    pub host_op_cycles: u64,
    /// Host clock in Hz.
    pub host_clock_hz: f64,
}

/// Everything the toolchain knows about one target, as data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetManifest {
    /// Registry key and wire name (`"cm2"`, `"cm5"`, `"accel"`).
    pub name: &'static str,
    /// Human-readable machine name.
    pub display: &'static str,
    /// Execution model.
    pub kind: TargetKind,
    /// Vector lanes per issue slot (the PEAC `VLEN` — every builtin
    /// target executes PEAC routines over `VLEN`-element vectors).
    pub vector_lanes: usize,
    /// Parallel vector units per node (1 except the CM/5's 4 VUs).
    pub units_per_node: usize,
    /// The primary compute clock in Hz (node clock for CM/2, VU clock
    /// for CM/5, device clock for Accel).
    pub clock_hz: f64,
    /// Accepted node counts.
    pub nodes: NodeConstraints,
    /// Communication topology.
    pub topology: Topology,
    /// Addressable memory regions.
    pub memory_regions: &'static [MemoryRegion],
    /// SIMD cost block, when the target has one.
    pub simd: Option<SimdCosts>,
    /// MIMD cost block, when the target has one.
    pub mimd: Option<MimdCosts>,
    /// Accelerator cost block, when the target has one.
    pub accel: Option<AccelCosts>,
}

impl TargetManifest {
    /// Check a node count against [`TargetManifest::nodes`].
    ///
    /// # Errors
    ///
    /// Returns the message session validation and config constructors
    /// surface, naming the constraint and the offending count.
    pub fn check_nodes(&self, nodes: usize) -> Result<(), String> {
        if self.nodes.allows(nodes) {
            Ok(())
        } else {
            Err(format!(
                "{} node count must be a {}, got {nodes}",
                self.display,
                self.nodes.describe()
            ))
        }
    }
}

/// The CM/2 SIMD cost table (the constants `f90y_cm2::costs` re-exports
/// with their justifications).
pub const CM2_SIMD_COSTS: SimdCosts = SimdCosts {
    dispatch_base_cycles: 1000,
    dispatch_per_arg_cycles: 40,
    rt_call_cycles: 1200,
    wire_cycles_per_elem: 32,
    router_factor: 6,
    host_op_cycles: 8,
    host_clock_hz: 25.0e6,
};

/// The CM/5 MIMD cost table (the constants the retired `f90y-cm5` crate
/// hard-coded, plus the replay beat weights that were literals in its
/// estimator).
pub const CM5_MIMD_COSTS: MimdCosts = MimdCosts {
    sparc_clock_hz: 33.0e6,
    vu_clock_hz: 16.0e6,
    vus_per_node: 4,
    network_bytes_per_sec: 20.0e6,
    net_call_seconds: 25.0e-6,
    cp_dispatch_cycles: 400,
    cp_per_arg_cycles: 10,
    mem_beat_weight: 0.5,
    div_beat_weight: 5.0,
    lib_beat_weight: 10.0,
    host_op_sparc_cycles: 2.0,
    element_bytes: 8.0,
};

/// The accelerator cost table. A 100 MHz device clock puts one kernel
/// launch (~600 cycles ≈ 6 µs) and one transfer setup (~2000 cycles ≈
/// 20 µs) in the range early DMA-attached array processors paid, and
/// 16 cycles per 64-bit element models a ~50 MB/s host bus.
pub const ACCEL_COSTS: AccelCosts = AccelCosts {
    device_clock_hz: 100.0e6,
    kernel_launch_cycles: 600,
    launch_per_arg_cycles: 20,
    transfer_setup_cycles: 2000,
    transfer_cycles_per_elem: 16,
    comm_call_cycles: 800,
    gather_factor: 4,
    host_op_cycles: 8,
    host_clock_hz: 25.0e6,
};

/// The CM/2 manifest: the paper's primary target (§2.2).
pub const CM2: TargetManifest = TargetManifest {
    name: "cm2",
    display: "CM/2",
    kind: TargetKind::Simd,
    vector_lanes: f90y_peac::isa::VLEN,
    units_per_node: 1,
    clock_hz: 7.0e6,
    nodes: NodeConstraints {
        min: 1,
        max: 2048,
        power_of_two: true,
    },
    topology: Topology::Hypercube,
    memory_regions: &[
        MemoryRegion {
            name: "cm",
            note: "distributed PE memory, blockwise layouts",
        },
        MemoryRegion {
            name: "host",
            note: "front-end memory; element access crosses the IFIFO",
        },
    ],
    simd: Some(CM2_SIMD_COSTS),
    mimd: None,
    accel: None,
};

/// The CM/5 manifest: the paper's retarget (§5.3.1). The constraint
/// range covers simulator partitions; real CM-5s shipped 32–1024
/// nodes, which [`crate::replay()`] callers conventionally respect.
pub const CM5: TargetManifest = TargetManifest {
    name: "cm5",
    display: "CM/5",
    kind: TargetKind::Mimd,
    vector_lanes: f90y_peac::isa::VLEN,
    units_per_node: 4,
    clock_hz: 16.0e6,
    nodes: NodeConstraints {
        min: 1,
        max: 1024,
        power_of_two: true,
    },
    topology: Topology::FatTree,
    memory_regions: &[
        MemoryRegion {
            name: "node",
            note: "per-node SPARC+VU memory, sharded arrays with halos",
        },
        MemoryRegion {
            name: "host",
            note: "partition-manager memory",
        },
    ],
    simd: None,
    mimd: Some(CM5_MIMD_COSTS),
    accel: None,
};

/// The accelerator manifest: the ForOpenCL-style third target. Nodes
/// are device compute units; arrays live in device memory and every
/// host access is an explicit bus transfer.
pub const ACCEL: TargetManifest = TargetManifest {
    name: "accel",
    display: "Accel",
    kind: TargetKind::Accel,
    vector_lanes: f90y_peac::isa::VLEN,
    units_per_node: 1,
    clock_hz: 100.0e6,
    nodes: NodeConstraints {
        min: 1,
        max: 4096,
        power_of_two: true,
    },
    topology: Topology::HostBus,
    memory_regions: &[
        MemoryRegion {
            name: "device",
            note: "device-global memory; kernel operands live here",
        },
        MemoryRegion {
            name: "host",
            note: "host memory; crossing the bus is a charged transfer",
        },
    ],
    simd: None,
    mimd: None,
    accel: Some(ACCEL_COSTS),
};

/// The backend registry: every manifest the toolchain can target,
/// keyed by name. `f90yc --list-targets` prints it; the serve protocol
/// and `core::Target` validation consult it.
#[derive(Debug, Clone, Copy)]
pub struct Registry {
    manifests: &'static [TargetManifest],
}

/// The builtin manifests in registration order.
pub const BUILTIN_MANIFESTS: &[TargetManifest] = &[CM2, CM5, ACCEL];

impl Registry {
    /// The registry of builtin targets.
    pub fn builtin() -> Registry {
        Registry {
            manifests: BUILTIN_MANIFESTS,
        }
    }

    /// Look a manifest up by its registry name.
    pub fn get(&self, name: &str) -> Option<&'static TargetManifest> {
        self.manifests.iter().find(|m| m.name == name)
    }

    /// All registered manifests, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &'static TargetManifest> {
        self.manifests.iter()
    }

    /// Number of registered manifests.
    pub fn len(&self) -> usize {
        self.manifests.len()
    }

    /// Whether the registry is empty (never true for the builtin set).
    pub fn is_empty(&self) -> bool {
        self.manifests.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The golden tables: the manifest-derived numbers must stay
    // byte-identical to the constants the backends hard-coded before
    // the HAL refactor. A change here is a cost-model change and must
    // be made deliberately, in the manifest, with the benchmarks
    // regenerated.

    #[test]
    fn cm2_cost_table_matches_the_pre_hal_constants() {
        let c = CM2.simd.expect("CM/2 has a SIMD cost block");
        assert_eq!(c.dispatch_base_cycles, 1000);
        assert_eq!(c.dispatch_per_arg_cycles, 40);
        assert_eq!(c.rt_call_cycles, 1200);
        assert_eq!(c.wire_cycles_per_elem, 32);
        assert_eq!(c.router_factor, 6);
        assert_eq!(c.host_op_cycles, 8);
        assert_eq!(c.host_clock_hz.to_bits(), 25.0e6_f64.to_bits());
        assert_eq!(CM2.clock_hz.to_bits(), 7.0e6_f64.to_bits());
    }

    #[test]
    fn cm5_cost_table_matches_the_pre_hal_constants() {
        let c = CM5.mimd.expect("CM/5 has a MIMD cost block");
        assert_eq!(c.sparc_clock_hz.to_bits(), 33.0e6_f64.to_bits());
        assert_eq!(c.vu_clock_hz.to_bits(), 16.0e6_f64.to_bits());
        assert_eq!(c.vus_per_node, 4);
        assert_eq!(c.network_bytes_per_sec.to_bits(), 20.0e6_f64.to_bits());
        assert_eq!(c.net_call_seconds.to_bits(), 25.0e-6_f64.to_bits());
        assert_eq!(c.cp_dispatch_cycles, 400);
        assert_eq!(c.cp_per_arg_cycles, 10);
        // The replay weights were literals in the retired estimator.
        assert_eq!(c.mem_beat_weight.to_bits(), 0.5_f64.to_bits());
        assert_eq!(c.div_beat_weight.to_bits(), 5.0_f64.to_bits());
        assert_eq!(c.lib_beat_weight.to_bits(), 10.0_f64.to_bits());
        assert_eq!(c.host_op_sparc_cycles.to_bits(), 2.0_f64.to_bits());
        assert_eq!(c.element_bytes.to_bits(), 8.0_f64.to_bits());
    }

    #[test]
    fn cm2_cycle_formulas_match_the_pre_hal_functions() {
        // The formulas as f90y-cm2's costs.rs wrote them before the
        // refactor, inlined here as the golden reference.
        let c = CM2_SIMD_COSTS;
        for nargs in [0usize, 1, 4, 9] {
            for body in [0u64, 6, 60, 600] {
                for iters in [0u64, 1, 32, 4096] {
                    assert_eq!(
                        c.dispatch_cycles(nargs, body, iters),
                        1000 + 40 * nargs as u64 + body * iters
                    );
                }
            }
        }
        for iters in [0u64, 1, 32, 4096] {
            for crossing in [0u64, 1, 64, 2048] {
                assert_eq!(
                    c.grid_comm_cycles(iters, crossing),
                    1200 + 2 * iters * MEM_CYCLES + crossing * 32
                );
            }
            for nodes in [1usize, 2, 16, 2048] {
                assert_eq!(
                    c.reduction_cycles(iters, nodes),
                    1200 + iters * (MEM_CYCLES + VOP_CYCLES)
                        + (nodes.max(2).trailing_zeros() as u64) * (32 + VOP_CYCLES)
                );
            }
            assert_eq!(
                c.coordinate_gen_cycles(iters),
                1200 + iters * (VOP_CYCLES + MEM_CYCLES)
            );
        }
        for subgrid in [0usize, 1, 1024] {
            assert_eq!(
                c.router_comm_cycles(subgrid),
                1200 + subgrid as u64 * 32 * 6
            );
        }
    }

    #[test]
    fn registry_resolves_every_builtin_by_name() {
        let r = Registry::builtin();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        for name in ["cm2", "cm5", "accel"] {
            let m = r.get(name).expect("builtin registered");
            assert_eq!(m.name, name);
        }
        assert!(r.get("gpu").is_none());
        let names: Vec<&str> = r.iter().map(|m| m.name).collect();
        assert_eq!(names, ["cm2", "cm5", "accel"]);
    }

    #[test]
    fn node_constraints_enforce_range_and_power_of_two() {
        assert!(CM2.check_nodes(1).is_ok());
        assert!(CM2.check_nodes(2048).is_ok());
        assert!(CM2.check_nodes(4096).is_err());
        assert!(CM2.check_nodes(100).is_err());
        let msg = ACCEL.check_nodes(3).unwrap_err();
        assert!(
            msg.contains("power of two in 1..=4096") && msg.contains("got 3"),
            "constraint error should name the rule and the count: {msg}"
        );
    }

    #[test]
    fn manifests_describe_distinct_machines() {
        assert_eq!(CM2.kind, TargetKind::Simd);
        assert_eq!(CM5.kind, TargetKind::Mimd);
        assert_eq!(ACCEL.kind, TargetKind::Accel);
        assert_eq!(CM2.topology, Topology::Hypercube);
        assert_eq!(CM5.topology, Topology::FatTree);
        assert_eq!(ACCEL.topology, Topology::HostBus);
        for m in BUILTIN_MANIFESTS {
            assert_eq!(m.vector_lanes, f90y_peac::isa::VLEN);
            assert!(m.memory_regions.len() >= 2);
            assert!(!format!("{}", m.topology).is_empty());
            assert!(!format!("{}", m.kind).is_empty());
        }
    }
}
