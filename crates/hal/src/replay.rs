//! Trace replay: re-time a SIMD run under another manifest's cost
//! model.
//!
//! The paper's §5.3.1 port argument: the compiled program is machine-
//! independent, so retargeting is a *cost-model* port. A traced CM/2
//! run records machine-level events ([`TraceEvent`]); [`replay`] walks
//! them under any manifest carrying a [`MimdCosts`] block and produces
//! the re-timed accounting. For [`crate::CM5`] this reproduces the
//! retired `f90y-cm5` analytic estimator bit for bit (the golden test
//! below pins the arithmetic).
//!
//! [`MimdCosts`]: crate::manifest::MimdCosts

use std::error::Error;
use std::fmt;

use f90y_peac::isa::VLEN;

use crate::manifest::TargetManifest;

/// One machine-level event, recorded when tracing is enabled. Traces
/// let retargeting studies replay a run under a different cost model
/// without re-executing. Defined here (not in the machine crate)
/// because the event vocabulary is the HAL's: every machine that wants
/// replay-retargeting emits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The machine the trace was captured on: always the first event,
    /// so replay consumers can reject traces whose subgrid geometry was
    /// baked in for a different node count.
    Machine {
        /// Node count of the traced machine.
        nodes: usize,
    },
    /// A PEAC routine dispatch.
    Dispatch {
        /// Per-node subgrid-loop iterations.
        iterations: u64,
        /// Total (machine-wide) elements computed.
        elements: usize,
        /// Charged vector-arithmetic instructions in the body.
        arith: u64,
        /// Charged (non-overlapped) memory instructions in the body.
        mem: u64,
        /// Division instructions in the body.
        div: u64,
        /// Library-call instructions in the body.
        lib: u64,
        /// Routine arguments pushed.
        nargs: usize,
        /// Machine-wide flops the dispatch performed.
        flops: u64,
    },
    /// A grid (NEWS) communication.
    GridComm {
        /// Per-node subgrid vectors copied.
        iterations: u64,
        /// Per-node boundary elements crossing the network.
        crossing: u64,
    },
    /// A router-path data movement.
    Router {
        /// Per-node elements moved.
        subgrid: usize,
    },
    /// A global reduction.
    Reduce {
        /// Per-node subgrid vectors scanned.
        iterations: u64,
    },
    /// Host work (front-end operations).
    HostOps(u64),
}

/// Replay time accounting produced by [`replay`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// Seconds of vector-unit time (the critical path of compute).
    pub vu_seconds: f64,
    /// Seconds of node-SPARC time *not hidden* behind the VUs.
    pub sparc_exposed_seconds: f64,
    /// Seconds of control-processor dispatch time.
    pub control_seconds: f64,
    /// Seconds of network communication time.
    pub network_seconds: f64,
    /// Machine-wide flops.
    pub flops: u64,
}

impl ReplayStats {
    /// Total modelled elapsed seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.vu_seconds + self.sparc_exposed_seconds + self.control_seconds + self.network_seconds
    }

    /// Sustained GFLOPS.
    pub fn gflops(&self) -> f64 {
        let s = self.elapsed_seconds();
        if s == 0.0 {
            0.0
        } else {
            self.flops as f64 / s / 1e9
        }
    }
}

/// Errors from the replay estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError(pub(crate) String);

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace replay error: {}", self.0)
    }
}

impl Error for ReplayError {}

/// Replay a traced SIMD run under `manifest`'s MIMD cost model, for a
/// partition of `nodes` nodes.
///
/// The trace must come from a machine with the **same node count** as
/// the partition being estimated: per-node subgrid geometry is baked
/// into the events.
///
/// # Errors
///
/// Fails when the trace is empty (tracing was not enabled), when the
/// manifest has no MIMD cost block, or when the trace was captured on
/// a machine whose node count disagrees with `nodes`.
pub fn replay(
    trace: &[TraceEvent],
    manifest: &TargetManifest,
    nodes: usize,
) -> Result<ReplayStats, ReplayError> {
    let c = manifest.mimd.ok_or_else(|| {
        ReplayError(format!(
            "manifest '{}' has no MIMD replay cost block",
            manifest.name
        ))
    })?;
    if trace.is_empty() {
        return Err(ReplayError(
            "empty trace (enable_trace before running)".into(),
        ));
    }
    let mut s = ReplayStats::default();
    let vus = c.vus_per_node as f64;
    for e in trace {
        match *e {
            TraceEvent::Machine {
                nodes: traced_nodes,
            } => {
                if traced_nodes != nodes {
                    return Err(ReplayError(format!(
                        "node count mismatch: trace node count is {traced_nodes} but config \
                         node count is {nodes}: per-node subgrid geometry is baked into the \
                         events, so the replay would mis-time every dispatch; re-trace \
                         on a matching machine"
                    )));
                }
            }
            TraceEvent::Dispatch {
                iterations,
                arith,
                mem,
                div,
                lib,
                nargs,
                flops,
                ..
            } => {
                // Subgrid elements per node = iterations × VLEN lanes;
                // the vector units share them, each pipelining one
                // element per cycle per instruction. Divides and
                // library calls cost extra beats; memory instructions
                // stream at the manifest's beat weight (each VU has its
                // own memory port on the CM-5, hence the half-beat).
                let elems_per_node = iterations as f64 * VLEN as f64;
                let per_vu = elems_per_node / vus;
                let beats = arith as f64 * per_vu
                    + mem as f64 * per_vu * c.mem_beat_weight
                    + div as f64 * per_vu * c.div_beat_weight
                    + lib as f64 * per_vu * c.lib_beat_weight;
                s.vu_seconds += beats / c.vu_clock_hz;
                // SPARC bookkeeping: pointer updates + loop control per
                // iteration (iterations now per-VU), largely overlapped
                // with VU compute; charge the excess only.
                let sparc_ops = (nargs as f64 + 2.0) * (iterations as f64 / vus).max(1.0);
                let sparc_secs = sparc_ops / c.sparc_clock_hz;
                let vu_secs = beats / c.vu_clock_hz;
                if sparc_secs > vu_secs {
                    s.sparc_exposed_seconds += sparc_secs - vu_secs;
                }
                s.control_seconds += (c.cp_dispatch_cycles + c.cp_per_arg_cycles * nargs as u64)
                    as f64
                    / c.sparc_clock_hz;
                s.flops += flops;
            }
            TraceEvent::GridComm {
                iterations,
                crossing,
            } => {
                // Local copy streams through the VUs (in and out, hence
                // the 2); crossing elements ride the network.
                let local = iterations as f64 * VLEN as f64 * 2.0 / vus / c.vu_clock_hz;
                let wire = crossing as f64 * c.element_bytes / c.network_bytes_per_sec;
                s.network_seconds += c.net_call_seconds + local + wire;
            }
            TraceEvent::Router { subgrid } => {
                // Every element traverses the network.
                s.network_seconds +=
                    c.net_call_seconds + subgrid as f64 * c.element_bytes / c.network_bytes_per_sec;
            }
            TraceEvent::Reduce { iterations } => {
                let local = iterations as f64 * VLEN as f64 / vus / c.vu_clock_hz;
                // The target's control network reduces in hardware.
                s.network_seconds += c.net_call_seconds + local;
            }
            TraceEvent::HostOps(n) => {
                s.sparc_exposed_seconds += n as f64 * c.host_op_sparc_cycles / c.sparc_clock_hz;
            }
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{CM2, CM5};

    fn synthetic_trace(nodes: usize) -> Vec<TraceEvent> {
        vec![
            TraceEvent::Machine { nodes },
            TraceEvent::Dispatch {
                iterations: 128,
                elements: 128 * VLEN * nodes,
                arith: 5,
                mem: 3,
                div: 1,
                lib: 2,
                nargs: 4,
                flops: 123_456,
            },
            TraceEvent::GridComm {
                iterations: 128,
                crossing: 64,
            },
            TraceEvent::Router { subgrid: 512 },
            TraceEvent::Reduce { iterations: 128 },
            TraceEvent::HostOps(37),
            // A dispatch small enough that SPARC bookkeeping is
            // exposed past the VU time.
            TraceEvent::Dispatch {
                iterations: 1,
                elements: VLEN * nodes,
                arith: 1,
                mem: 0,
                div: 0,
                lib: 0,
                nargs: 9,
                flops: 4,
            },
        ]
    }

    /// The golden reference: the retired `f90y-cm5` estimator's
    /// arithmetic, inlined with its original literals, applied to the
    /// same events. `replay` under the CM/5 manifest must agree to the
    /// bit.
    fn pre_hal_cm5_estimate(trace: &[TraceEvent]) -> ReplayStats {
        let (sparc_clock, vu_clock, vus, net_bps) = (33.0e6_f64, 16.0e6_f64, 4.0_f64, 20.0e6_f64);
        let (net_call, cp_dispatch, cp_per_arg) = (25.0e-6_f64, 400u64, 10u64);
        let mut s = ReplayStats::default();
        for e in trace {
            match *e {
                TraceEvent::Machine { .. } => {}
                TraceEvent::Dispatch {
                    iterations,
                    arith,
                    mem,
                    div,
                    lib,
                    nargs,
                    flops,
                    ..
                } => {
                    let elems_per_node = iterations as f64 * VLEN as f64;
                    let per_vu = elems_per_node / vus;
                    let beats = arith as f64 * per_vu
                        + mem as f64 * per_vu * 0.5
                        + div as f64 * per_vu * 5.0
                        + lib as f64 * per_vu * 10.0;
                    s.vu_seconds += beats / vu_clock;
                    let sparc_ops = (nargs as f64 + 2.0) * (iterations as f64 / vus).max(1.0);
                    let sparc_secs = sparc_ops / sparc_clock;
                    let vu_secs = beats / vu_clock;
                    if sparc_secs > vu_secs {
                        s.sparc_exposed_seconds += sparc_secs - vu_secs;
                    }
                    s.control_seconds +=
                        (cp_dispatch + cp_per_arg * nargs as u64) as f64 / sparc_clock;
                    s.flops += flops;
                }
                TraceEvent::GridComm {
                    iterations,
                    crossing,
                } => {
                    let local = iterations as f64 * VLEN as f64 * 2.0 / vus / vu_clock;
                    let wire = crossing as f64 * 8.0 / net_bps;
                    s.network_seconds += net_call + local + wire;
                }
                TraceEvent::Router { subgrid } => {
                    s.network_seconds += net_call + subgrid as f64 * 8.0 / net_bps;
                }
                TraceEvent::Reduce { iterations } => {
                    let local = iterations as f64 * VLEN as f64 / vus / vu_clock;
                    s.network_seconds += net_call + local;
                }
                TraceEvent::HostOps(n) => {
                    s.sparc_exposed_seconds += n as f64 * 2.0 / sparc_clock;
                }
            }
        }
        s
    }

    #[test]
    fn cm5_replay_is_bit_identical_to_the_pre_hal_estimator() {
        let trace = synthetic_trace(64);
        let got = replay(&trace, &CM5, 64).expect("replay succeeds");
        let want = pre_hal_cm5_estimate(&trace);
        assert_eq!(got.vu_seconds.to_bits(), want.vu_seconds.to_bits());
        assert_eq!(
            got.sparc_exposed_seconds.to_bits(),
            want.sparc_exposed_seconds.to_bits()
        );
        assert_eq!(
            got.control_seconds.to_bits(),
            want.control_seconds.to_bits()
        );
        assert_eq!(
            got.network_seconds.to_bits(),
            want.network_seconds.to_bits()
        );
        assert_eq!(got.flops, want.flops);
        assert_eq!(
            got.elapsed_seconds().to_bits(),
            want.elapsed_seconds().to_bits()
        );
        assert!(got.gflops() > 0.0);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let err = replay(&[], &CM5, 64).expect_err("empty trace rejected");
        assert!(err.to_string().contains("empty trace"));
    }

    #[test]
    fn node_count_mismatch_is_an_error() {
        let trace = synthetic_trace(64);
        let err = replay(&trace, &CM5, 256).expect_err("mismatch rejected");
        let msg = err.to_string();
        assert!(msg.contains("trace node count is 64"), "{msg}");
        assert!(msg.contains("config node count is 256"), "{msg}");
        assert!(replay(&trace, &CM5, 64).is_ok());
    }

    #[test]
    fn manifest_without_mimd_costs_is_an_error() {
        let trace = synthetic_trace(64);
        let err = replay(&trace, &CM2, 64).expect_err("no MIMD block");
        assert!(err.to_string().contains("no MIMD replay cost block"));
    }

    #[test]
    fn zero_work_replay_reports_zero_gflops() {
        let stats = ReplayStats::default();
        assert_eq!(stats.gflops(), 0.0);
        assert_eq!(stats.elapsed_seconds(), 0.0);
    }
}
