//! # f90y-lowering — semantic lowering from Fortran 90 ASTs to NIR
//!
//! The paper's front-end semantic lowering stage (§4.1): "consumes ASTs
//! produced by syntactic analysis and performs pattern matching using a
//! set of semantic equations. … There are five semantic equations, one
//! for each of the semantic domains — declarations, types, values,
//! imperatives, and shapes."
//!
//! The equations here are the same piecewise syntactic pattern matches,
//! written as Rust methods on [`Lowerer`]:
//!
//! | Equation | Method | Maps |
//! |---|---|---|
//! | `D[…]` | [`Lowerer::lower_decls`] | declarations → `DECLSET` |
//! | `T[…]` | [`Lowerer::lower_type`] | type specs → `dfield`/scalar types |
//! | `S[…]` | [`Lowerer::lower_shape`] | array specs / triplets → shapes |
//! | `V[…]` | [`Lowerer::lower_expr`] | expressions → value terms |
//! | `I[…]` | [`Lowerer::lower_stmt`] | statements → imperative actions |
//!
//! Lowering "simply filters out the static semantics of the source
//! language and expresses the residual as a valid NIR program without
//! attempts at optimization" — blocking and masking transformations live
//! in `f90y-transform`.
//!
//! ## Representation choices (documented deviations)
//!
//! * Fortran `REAL` lowers to `float_64`: the slicewise CM/2 computes on
//!   64-bit Weitek units and our simulators keep all numeric buffers in
//!   `f64`, so widening `REAL` avoids modelling float32 rounding twice.
//!   `float_32` remains in the NIR type system.
//! * Array sections lower to the staging `section[…]` field restrictor;
//!   the mask-padding transformation (paper Fig. 10) rewrites them to
//!   `everywhere` + parity masks before code generation.
//! * Section bounds and `FORALL`/labelled-`DO` bounds must be integer
//!   literals (benchmark generators emit literal sizes). Variable-bound
//!   `DO` loops lower to `WHILE` with an explicit induction variable.
//!
//! ## Example
//!
//! ```
//! let unit = f90y_frontend::parse("INTEGER K(128,64), L(128)\nL = 6\nK = 2*K + 5\n")?;
//! let nir = f90y_lowering::lower(&unit)?;
//! f90y_nir::typecheck::check(&nir).expect("lowered programs are well-typed");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod inline;

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use f90y_frontend::ast::{
    BaseType, BinOpAst, DataRef, Expr, ProgramUnit, Stmt, Subscript, TypeDecl, UnOpAst,
};
use f90y_frontend::token::Span;
use f90y_nir::build as nb;
use f90y_nir::{
    BinOp, Const, Decl, FieldAction, Imp, LValue, MoveClause, ScalarType, SectionRange, Shape,
    Type, UnOp, Value,
};

/// A semantic error found during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// Human-readable description.
    pub message: String,
    /// Source location of the offending construct.
    pub span: Span,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at {}: {}", self.span, self.message)
    }
}

impl Error for LowerError {}

/// Lower a parsed program unit to a typechecked, shapechecked NIR
/// imperative.
///
/// # Errors
///
/// Fails on semantic errors (unknown names, bad intrinsic usage,
/// unsupported constructs) and on any residual type or shape error.
pub fn lower(unit: &ProgramUnit) -> Result<Imp, LowerError> {
    let mut lw = Lowerer::new(unit)?;
    let program = lw.lower_unit(unit)?;
    // Paper §4.1: each unit "has been typechecked and shapechecked".
    f90y_nir::typecheck::check(&program).map_err(|e| LowerError {
        message: format!("lowered program failed static checking: {e}"),
        span: Span::default(),
    })?;
    Ok(program)
}

/// Lower a multi-unit source file: subroutines inline into the main
/// program (see [`inline`]), then the flat unit lowers as usual.
///
/// # Errors
///
/// Fails on inlining errors (unknown routines, binding mismatches,
/// recursion) or any error [`lower`] reports.
pub fn lower_file(file: &f90y_frontend::ast::SourceFile) -> Result<Imp, LowerError> {
    let flat = inline::inline_file(file)?;
    lower(&flat)
}

/// How an identifier is classified during lowering.
#[derive(Debug, Clone, PartialEq)]
enum Sym {
    /// A scalar variable.
    Scalar(ScalarType),
    /// An array over the named domain with the given bounds.
    Array {
        /// The bound domain name.
        domain: String,
        /// Element type.
        elem: ScalarType,
        /// Declared per-axis bounds.
        bounds: Vec<(i64, i64)>,
    },
    /// A `DO`-loop index bound to a serial domain (referenced as
    /// `do_index`).
    LoopIndex {
        /// The `DO` domain name.
        domain: String,
    },
    /// A `FORALL` index: references become `local_under(shape, dim)`.
    ForallIndex {
        /// The `FORALL` shape.
        shape: Shape,
        /// 1-based axis.
        dim: usize,
    },
    /// A `WHILE`-lowered loop variable (plain scalar).
    WhileVar(ScalarType),
}

/// The semantic lowering engine. One instance lowers one program unit.
#[derive(Debug)]
pub struct Lowerer {
    symbols: HashMap<String, Sym>,
    /// Distinct array shapes in declaration order, with their domain
    /// names.
    domains: Vec<(String, Shape)>,
    fresh: usize,
}

const DOMAIN_NAMES: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

impl Lowerer {
    /// Build the symbol table and domain bindings for a unit.
    ///
    /// # Errors
    ///
    /// Fails on duplicate declarations.
    pub fn new(unit: &ProgramUnit) -> Result<Self, LowerError> {
        let mut lw = Lowerer {
            symbols: HashMap::new(),
            domains: Vec::new(),
            fresh: 0,
        };
        for d in &unit.decls {
            lw.declare(d)?;
        }
        Ok(lw)
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn domain_for(&mut self, bounds: &[(i64, i64)]) -> String {
        let shape = Shape::Product(
            bounds
                .iter()
                .map(|&(lo, hi)| Shape::Interval(lo, hi))
                .collect(),
        );
        if let Some((name, _)) = self.domains.iter().find(|(_, s)| *s == shape) {
            return name.clone();
        }
        let name = DOMAIN_NAMES
            .get(self.domains.len())
            .map(|s| (*s).to_string())
            .unwrap_or_else(|| format!("dom{}", self.domains.len()));
        self.domains.push((name.clone(), shape));
        name
    }

    // -----------------------------------------------------------------
    // Equation D: declarations, and T/S: types and shapes
    // -----------------------------------------------------------------

    fn declare(&mut self, d: &TypeDecl) -> Result<(), LowerError> {
        let elem = Self::lower_base_type(d.base);
        for e in &d.entities {
            if self.symbols.contains_key(&e.name) {
                return Err(LowerError {
                    message: format!("'{}' declared twice", e.name),
                    span: d.span,
                });
            }
            let dims = e.dims.as_ref().or(d.dimension.as_ref());
            let sym = match dims {
                Some(specs) => {
                    let bounds: Vec<(i64, i64)> = specs.iter().map(|s| (s.lo, s.hi)).collect();
                    let domain = self.domain_for(&bounds);
                    Sym::Array {
                        domain,
                        elem,
                        bounds,
                    }
                }
                None => Sym::Scalar(elem),
            };
            self.symbols.insert(e.name.clone(), sym);
        }
        Ok(())
    }

    /// Equation `T[…]`: map a Fortran base type to an NIR scalar type.
    ///
    /// `REAL` widens to `float_64` (see the crate docs).
    pub fn lower_base_type(base: BaseType) -> ScalarType {
        match base {
            BaseType::Integer => ScalarType::Integer32,
            BaseType::Logical => ScalarType::Logical32,
            BaseType::Real | BaseType::DoublePrecision => ScalarType::Float64,
        }
    }

    /// Equation `T[…]`: the NIR type of a declared entity.
    pub fn lower_type(&self, name: &str) -> Option<Type> {
        match self.symbols.get(name)? {
            Sym::Scalar(s) | Sym::WhileVar(s) => Some(Type::Scalar(*s)),
            Sym::Array { domain, elem, .. } => {
                Some(Type::dfield(Shape::domain(domain), Type::Scalar(*elem)))
            }
            Sym::LoopIndex { .. } | Sym::ForallIndex { .. } => {
                Some(Type::Scalar(ScalarType::Integer32))
            }
        }
    }

    /// Equation `S[…]`: the declared shape of an array entity.
    pub fn lower_shape(&self, name: &str) -> Option<Shape> {
        match self.symbols.get(name)? {
            Sym::Array { bounds, .. } => Some(Shape::Product(
                bounds
                    .iter()
                    .map(|&(lo, hi)| Shape::Interval(lo, hi))
                    .collect(),
            )),
            _ => None,
        }
    }

    /// Equation `D[…]`: all declarations of the unit as one `DECLSET`.
    pub fn lower_decls(&mut self, unit: &ProgramUnit) -> Result<Decl, LowerError> {
        let mut decls = Vec::new();
        for d in &unit.decls {
            let elem = Self::lower_base_type(d.base);
            for e in &d.entities {
                let ty = self.lower_type(&e.name).expect("declared in constructor");
                match &e.init {
                    Some(init) => {
                        let v = self.lower_expr_in(init, &HashMap::new())?;
                        decls.push(Decl::Initialized(e.name.clone(), ty, v));
                    }
                    None => decls.push(Decl::Decl(e.name.clone(), ty)),
                }
                let _ = elem;
            }
        }
        Ok(Decl::DeclSet(decls))
    }

    // -----------------------------------------------------------------
    // Unit structure
    // -----------------------------------------------------------------

    /// Lower the whole unit: domains, declarations, then the statement
    /// sequence.
    ///
    /// # Errors
    ///
    /// Fails on any semantic error in the statements.
    pub fn lower_unit(&mut self, unit: &ProgramUnit) -> Result<Imp, LowerError> {
        let decls = self.lower_decls(unit)?;
        let mut body_stmts = Vec::with_capacity(unit.stmts.len());
        for s in &unit.stmts {
            body_stmts.push(self.lower_stmt(s)?);
        }
        let mut program = Imp::WithDecl(decls, Box::new(Imp::seq(body_stmts)));
        // Bind domains outermost, first-declared outermost.
        for (name, shape) in self.domains.iter().rev() {
            program = Imp::WithDomain(name.clone(), shape.clone(), Box::new(program));
        }
        Ok(Imp::Program(Box::new(program)))
    }

    // -----------------------------------------------------------------
    // Equation I: imperatives
    // -----------------------------------------------------------------

    /// Equation `I[…]`: lower one statement.
    ///
    /// # Errors
    ///
    /// Fails on semantic errors.
    pub fn lower_stmt(&mut self, stmt: &Stmt) -> Result<Imp, LowerError> {
        match stmt {
            Stmt::Continue { .. } => Ok(Imp::Skip),
            Stmt::Assign { lhs, rhs, span } => self.lower_assign(lhs, rhs, *span, None),
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                let mut lowered = self.lower_body(else_body)?;
                for (cond, body) in arms.iter().rev() {
                    let c = self.lower_expr(cond, *span)?;
                    let t = self.lower_body(body)?;
                    lowered = Imp::IfThenElse(c, Box::new(t), Box::new(lowered));
                }
                Ok(lowered)
            }
            Stmt::DoWhile { cond, body, span } => {
                let c = self.lower_expr(cond, *span)?;
                let b = self.lower_body(body)?;
                Ok(Imp::While(c, Box::new(b)))
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => self.lower_do(var, lo, hi, step.as_ref(), body, *span),
            Stmt::Forall {
                triplets,
                assign,
                span,
            } => self.lower_forall(triplets, assign, *span),
            Stmt::Where {
                mask,
                then_body,
                else_body,
                span,
            } => self.lower_where(mask, then_body, else_body, *span),
            Stmt::Call { name, span, .. } => Err(LowerError {
                message: format!(
                    "CALL '{name}' reached lowering; use lower_file so subroutines inline"
                ),
                span: *span,
            }),
        }
    }

    fn lower_body(&mut self, body: &[Stmt]) -> Result<Imp, LowerError> {
        let mut out = Vec::with_capacity(body.len());
        for s in body {
            out.push(self.lower_stmt(s)?);
        }
        Ok(Imp::seq(out))
    }

    fn lower_do(
        &mut self,
        var: &str,
        lo: &Expr,
        hi: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
        span: Span,
    ) -> Result<Imp, LowerError> {
        let declared = match self.symbols.get(var) {
            None => false,
            Some(Sym::Scalar(ScalarType::Integer32)) | Some(Sym::WhileVar(_)) => true,
            Some(_) => {
                return Err(LowerError {
                    message: format!("loop variable '{var}' is not an integer scalar"),
                    span,
                })
            }
        };
        let step_const = match step {
            None => Some(1),
            Some(e) => e.as_int(),
        };
        let (lo_c, hi_c) = (lo.as_int(), hi.as_int());
        if let (false, Some(lo), Some(hi), Some(1)) = (declared, lo_c, hi_c, step_const) {
            // Constant unit-stride DO: a serial shape, the transformable
            // form (paper Fig. 9 uses serial_interval domains).
            self.symbols.insert(
                var.to_string(),
                Sym::LoopIndex {
                    domain: var.to_string(),
                },
            );
            let b = self.lower_body(body);
            self.symbols.remove(var);
            return Ok(Imp::Do(
                var.to_string(),
                Shape::SerialInterval(lo, hi),
                Box::new(b?),
            ));
        }
        // General DO: explicit induction variable and WHILE.
        let lo_v = self.lower_expr(lo, span)?;
        let hi_v = self.lower_expr(hi, span)?;
        let step_v = match step {
            Some(e) => self.lower_expr(e, span)?,
            None => nb::int(1),
        };
        let saved = self
            .symbols
            .insert(var.to_string(), Sym::WhileVar(ScalarType::Integer32));
        let b = self.lower_body(body);
        match saved {
            Some(s) => {
                self.symbols.insert(var.to_string(), s);
            }
            None => {
                self.symbols.remove(var);
            }
        }
        let b = b?;
        // Positive-step loops only (negative constant steps could flip
        // the comparison; reject them explicitly).
        if step_const.is_some_and(|s| s <= 0) {
            return Err(LowerError {
                message: "non-positive DO step is not supported".into(),
                span,
            });
        }
        let cond = nb::bin(BinOp::Le, nb::svar(var), hi_v);
        let advance = Imp::Move(vec![MoveClause::unmasked(
            LValue::SVar(var.to_string()),
            nb::add(nb::svar(var), step_v),
        )]);
        let looped = Imp::While(cond, Box::new(Imp::seq(vec![b, advance])));
        if declared {
            // The declared variable is the induction variable (F77
            // semantics: it holds a defined value after the loop).
            let init = Imp::Move(vec![MoveClause::unmasked(
                LValue::SVar(var.to_string()),
                lo_v,
            )]);
            Ok(Imp::seq(vec![init, looped]))
        } else {
            Ok(Imp::WithDecl(
                Decl::Initialized(var.to_string(), Type::Scalar(ScalarType::Integer32), lo_v),
                Box::new(looped),
            ))
        }
    }

    fn lower_forall(
        &mut self,
        triplets: &[(String, Expr, Expr, Option<Expr>)],
        assign: &Stmt,
        span: Span,
    ) -> Result<Imp, LowerError> {
        let Stmt::Assign { lhs, rhs, .. } = assign else {
            return Err(LowerError {
                message: "FORALL controls a non-assignment".into(),
                span,
            });
        };
        // Build the FORALL shape; bounds must be literals.
        let mut dims = Vec::with_capacity(triplets.len());
        for (name, lo, hi, step) in triplets {
            let (Some(lo), Some(hi)) = (lo.as_int(), hi.as_int()) else {
                return Err(LowerError {
                    message: format!("FORALL bounds for '{name}' must be integer literals"),
                    span,
                });
            };
            if step.as_ref().and_then(|e| e.as_int()).unwrap_or(1) != 1 {
                return Err(LowerError {
                    message: "strided FORALL triplets are not supported".into(),
                    span,
                });
            }
            dims.push(Shape::Interval(lo, hi));
        }
        let shape = Shape::Product(dims);

        // The canonical data-parallel case (paper Fig. 7): the target's
        // subscripts are exactly the FORALL indices in order and the
        // shape covers the whole array — lower to a single MOVE with
        // everywhere and local_under coordinates.
        let canonical = {
            let target_shape = self.lower_shape(&lhs.name);
            let subs_match = lhs.subs.as_ref().is_some_and(|subs| {
                subs.len() == triplets.len()
                    && subs.iter().zip(triplets).all(|(s, (name, ..))| match s {
                        Subscript::Index(Expr::Ref(r)) => r.subs.is_none() && r.name == *name,
                        _ => false,
                    })
            });
            subs_match && target_shape.as_ref().is_some_and(|t| t.conforms(&shape))
        };
        if canonical {
            for (dim, (name, ..)) in triplets.iter().enumerate() {
                self.symbols.insert(
                    name.clone(),
                    Sym::ForallIndex {
                        shape: shape.clone(),
                        dim: dim + 1,
                    },
                );
            }
            let src = self.lower_expr(rhs, span);
            for (name, ..) in triplets {
                self.symbols.remove(name);
            }
            match src {
                Ok(src) => {
                    return Ok(Imp::Move(vec![MoveClause::unmasked(
                        LValue::AVar(lhs.name.clone(), FieldAction::Everywhere),
                        src,
                    )]))
                }
                // A non-identity gather on the right-hand side: fall
                // through to the general (serial) lowering below.
                Err(e) if e.message.contains("non-identity FORALL subscript") => {}
                Err(e) => return Err(e),
            }
        }

        // General FORALL: a parallel DO with subscripted moves. Correct
        // only when the right-hand side does not read the target (the
        // full semantics needs a temporary; see DESIGN.md).
        let mut reads_target = false;
        expr_reads(rhs, &lhs.name, &mut reads_target);
        if reads_target {
            return Err(LowerError {
                message: format!(
                    "general FORALL reading its own target '{}' is not supported",
                    lhs.name
                ),
                span,
            });
        }
        let dom = self.fresh_name("forall");
        for (dim, (name, ..)) in triplets.iter().enumerate() {
            self.symbols.insert(
                name.clone(),
                Sym::LoopIndex {
                    domain: dom.clone(),
                },
            );
            // Remember which axis this index names.
            if let Some(Sym::LoopIndex { .. }) = self.symbols.get(name) {
                // Axis is recovered via position when lowering refs.
            }
            let _ = dim;
        }
        // Map each index to its axis for DoIndex lowering.
        let axis_of: HashMap<String, usize> = triplets
            .iter()
            .enumerate()
            .map(|(i, (n, ..))| (n.clone(), i + 1))
            .collect();
        let body = self.lower_assign(lhs, rhs, span, Some((&dom, &axis_of)));
        for (name, ..) in triplets {
            self.symbols.remove(name);
        }
        Ok(Imp::Do(dom, shape, Box::new(body?)))
    }

    fn lower_where(
        &mut self,
        mask: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        span: Span,
    ) -> Result<Imp, LowerError> {
        let mask_v = self.lower_expr(mask, span)?;
        let not_mask = nb::un(UnOp::Not, mask_v.clone());
        let mut moves = Vec::new();
        for (body, m) in [(then_body, &mask_v), (else_body, &not_mask)] {
            for s in body {
                let Stmt::Assign { lhs, rhs, span } = s else {
                    return Err(LowerError {
                        message: "WHERE bodies may contain only array assignments".into(),
                        span: s.span(),
                    });
                };
                let imp = self.lower_assign(lhs, rhs, *span, None)?;
                let Imp::Move(clauses) = imp else {
                    return Err(LowerError {
                        message: "WHERE assignment did not lower to a MOVE".into(),
                        span: *span,
                    });
                };
                for c in clauses {
                    if !matches!(c.dst, LValue::AVar(_, FieldAction::Everywhere)) {
                        return Err(LowerError {
                            message: "WHERE assignments must be whole-array".into(),
                            span: *span,
                        });
                    }
                    let guarded_mask = if c.is_unmasked() {
                        m.clone()
                    } else {
                        nb::bin(BinOp::And, m.clone(), c.mask)
                    };
                    moves.push(Imp::Move(vec![MoveClause {
                        mask: guarded_mask,
                        src: c.src,
                        dst: c.dst,
                    }]));
                }
            }
        }
        Ok(Imp::seq(moves))
    }

    fn lower_assign(
        &mut self,
        lhs: &DataRef,
        rhs: &Expr,
        span: Span,
        do_ctx: Option<(&str, &HashMap<String, usize>)>,
    ) -> Result<Imp, LowerError> {
        let axis_env = do_ctx.map(|(d, m)| (d.to_string(), m.clone()));
        let axis_map = axis_env
            .as_ref()
            .map(|(_, m)| m.clone())
            .unwrap_or_default();
        let src = self.lower_expr_in(rhs, &axis_map)?;
        let dst = self.lower_lvalue(lhs, span, &axis_map)?;
        Ok(Imp::Move(vec![MoveClause::unmasked(dst, src)]))
    }

    fn lower_lvalue(
        &mut self,
        r: &DataRef,
        span: Span,
        axis_map: &HashMap<String, usize>,
    ) -> Result<LValue, LowerError> {
        match self.symbols.get(&r.name).cloned() {
            None => Err(LowerError {
                message: format!("assignment to undeclared '{}'", r.name),
                span,
            }),
            Some(Sym::Scalar(_)) | Some(Sym::WhileVar(_)) => {
                if r.subs.is_some() {
                    return Err(LowerError {
                        message: format!("subscripts on scalar '{}'", r.name),
                        span,
                    });
                }
                Ok(LValue::SVar(r.name.clone()))
            }
            Some(Sym::LoopIndex { .. }) | Some(Sym::ForallIndex { .. }) => Err(LowerError {
                message: format!("assignment to loop index '{}'", r.name),
                span,
            }),
            Some(Sym::Array { bounds, .. }) => {
                let fa = self.lower_field_action(r, &bounds, span, axis_map)?;
                Ok(LValue::AVar(r.name.clone(), fa))
            }
        }
    }

    fn lower_field_action(
        &mut self,
        r: &DataRef,
        bounds: &[(i64, i64)],
        span: Span,
        axis_map: &HashMap<String, usize>,
    ) -> Result<FieldAction, LowerError> {
        let Some(subs) = &r.subs else {
            return Ok(FieldAction::Everywhere);
        };
        if subs.len() != bounds.len() {
            return Err(LowerError {
                message: format!(
                    "'{}' has rank {} but {} subscripts given",
                    r.name,
                    bounds.len(),
                    subs.len()
                ),
                span,
            });
        }
        let any_triplet = subs.iter().any(Subscript::is_triplet);
        if any_triplet {
            // A section; every axis becomes a range, indices degenerate.
            let mut ranges = Vec::with_capacity(subs.len());
            for (s, &(blo, bhi)) in subs.iter().zip(bounds) {
                let range = match s {
                    Subscript::Index(e) => {
                        let Some(i) = e.as_int() else {
                            return Err(LowerError {
                                message: "mixed index/section subscripts must use \
                                          integer literals"
                                    .into(),
                                span,
                            });
                        };
                        SectionRange::new(i, i)
                    }
                    Subscript::Triplet { lo, hi, step } => {
                        let lo = match lo {
                            Some(e) => e.as_int().ok_or_else(|| LowerError {
                                message: "section bounds must be integer literals".into(),
                                span,
                            })?,
                            None => blo,
                        };
                        let hi = match hi {
                            Some(e) => e.as_int().ok_or_else(|| LowerError {
                                message: "section bounds must be integer literals".into(),
                                span,
                            })?,
                            None => bhi,
                        };
                        let step = match step {
                            Some(e) => e.as_int().ok_or_else(|| LowerError {
                                message: "section strides must be integer literals".into(),
                                span,
                            })?,
                            None => 1,
                        };
                        if step < 1 {
                            return Err(LowerError {
                                message: "negative section strides are not supported".into(),
                                span,
                            });
                        }
                        SectionRange::strided(lo, hi, step)
                    }
                };
                ranges.push(range);
            }
            // A full-array unit-stride section is just `everywhere`.
            let full = ranges
                .iter()
                .zip(bounds)
                .all(|(r, &(blo, bhi))| r.lo == blo && r.hi == bhi && r.step == 1);
            if full {
                return Ok(FieldAction::Everywhere);
            }
            return Ok(FieldAction::Section(ranges));
        }
        // Identity FORALL subscripting — `B(i,j)` where `i, j` are the
        // active FORALL indices in axis order — denotes the whole field
        // in parallel (paper Fig. 7 uses `everywhere` for exactly this).
        let identity = subs.iter().enumerate().all(|(axis, s)| match s {
            Subscript::Index(Expr::Ref(r)) if r.subs.is_none() => matches!(
                self.symbols.get(&r.name),
                Some(Sym::ForallIndex { dim, .. }) if *dim == axis + 1
            ),
            _ => false,
        });
        if identity {
            return Ok(FieldAction::Everywhere);
        }
        // All plain indices: shapewise subscripting.
        let mut ixs = Vec::with_capacity(subs.len());
        for s in subs {
            let Subscript::Index(e) = s else {
                unreachable!("triplets handled above")
            };
            let ix = self.lower_expr_in(e, axis_map)?;
            // A non-identity use of a FORALL coordinate inside a
            // subscript would denote a gather (communication); the
            // canonical data-parallel path does not support it.
            let mut has_coord = false;
            ix.walk(&mut |v| {
                if matches!(v, Value::LocalUnder(..)) {
                    has_coord = true;
                }
            });
            if has_coord {
                return Err(LowerError {
                    message: format!(
                        "non-identity FORALL subscript on '{}' requires communication \
                         (unsupported in the canonical path)",
                        r.name
                    ),
                    span,
                });
            }
            ixs.push(ix);
        }
        Ok(FieldAction::Subscript(ixs))
    }

    // -----------------------------------------------------------------
    // Equation V: values
    // -----------------------------------------------------------------

    /// Equation `V[…]`: lower an expression.
    ///
    /// # Errors
    ///
    /// Fails on semantic errors in the expression.
    pub fn lower_expr(&mut self, e: &Expr, span: Span) -> Result<Value, LowerError> {
        let _ = span;
        self.lower_expr_in(e, &HashMap::new())
    }

    fn lower_expr_in(
        &mut self,
        e: &Expr,
        axis_map: &HashMap<String, usize>,
    ) -> Result<Value, LowerError> {
        match e {
            Expr::Int(v) => {
                let v32 = i32::try_from(*v).map_err(|_| LowerError {
                    message: format!("integer literal {v} exceeds 32 bits"),
                    span: Span::default(),
                })?;
                Ok(Value::Scalar(Const::I32(v32)))
            }
            Expr::Real(v) | Expr::Double(v) => Ok(Value::Scalar(Const::F64(*v))),
            Expr::Logical(v) => Ok(Value::Scalar(Const::Bool(*v))),
            Expr::Unary(op, a) => {
                let av = self.lower_expr_in(a, axis_map)?;
                Ok(match op {
                    UnOpAst::Neg => nb::un(UnOp::Neg, av),
                    UnOpAst::Plus => av,
                    UnOpAst::Not => nb::un(UnOp::Not, av),
                })
            }
            Expr::Binary(op, a, b) => {
                let av = self.lower_expr_in(a, axis_map)?;
                let bv = self.lower_expr_in(b, axis_map)?;
                Ok(nb::bin(Self::lower_binop(*op), av, bv))
            }
            Expr::Ref(r) => self.lower_ref(r, axis_map),
        }
    }

    fn lower_binop(op: BinOpAst) -> BinOp {
        match op {
            BinOpAst::Add => BinOp::Add,
            BinOpAst::Sub => BinOp::Sub,
            BinOpAst::Mul => BinOp::Mul,
            BinOpAst::Div => BinOp::Div,
            BinOpAst::Pow => BinOp::Pow,
            BinOpAst::Eq => BinOp::Eq,
            BinOpAst::Ne => BinOp::Ne,
            BinOpAst::Lt => BinOp::Lt,
            BinOpAst::Le => BinOp::Le,
            BinOpAst::Gt => BinOp::Gt,
            BinOpAst::Ge => BinOp::Ge,
            BinOpAst::And => BinOp::And,
            BinOpAst::Or => BinOp::Or,
        }
    }

    fn lower_ref(
        &mut self,
        r: &DataRef,
        axis_map: &HashMap<String, usize>,
    ) -> Result<Value, LowerError> {
        match self.symbols.get(&r.name).cloned() {
            Some(Sym::Scalar(_)) | Some(Sym::WhileVar(_)) => {
                if r.subs.is_some() {
                    return Err(LowerError {
                        message: format!("subscripts on scalar '{}'", r.name),
                        span: r.span,
                    });
                }
                Ok(Value::SVar(r.name.clone()))
            }
            Some(Sym::LoopIndex { domain }) => {
                if r.subs.is_some() {
                    return Err(LowerError {
                        message: format!("subscripts on loop index '{}'", r.name),
                        span: r.span,
                    });
                }
                let dim = axis_map.get(&r.name).copied().unwrap_or(1);
                Ok(Value::DoIndex(domain, dim))
            }
            Some(Sym::ForallIndex { shape, dim }) => Ok(Value::LocalUnder(shape, dim)),
            Some(Sym::Array { bounds, .. }) => {
                let fa = self.lower_field_action(r, &bounds, r.span, axis_map)?;
                Ok(Value::AVar(r.name.clone(), fa))
            }
            None => self.lower_intrinsic(r, axis_map),
        }
    }

    fn lower_intrinsic(
        &mut self,
        r: &DataRef,
        axis_map: &HashMap<String, usize>,
    ) -> Result<Value, LowerError> {
        let Some(subs) = &r.subs else {
            return Err(LowerError {
                message: format!("undeclared variable '{}'", r.name),
                span: r.span,
            });
        };
        // Collect positional and keyword arguments.
        let mut positional = Vec::new();
        let mut keywords: HashMap<String, Value> = HashMap::new();
        for s in subs {
            match s {
                Subscript::Index(Expr::Ref(kw))
                    if kw.name.ends_with('=') && kw.subs.as_ref().is_some_and(|x| x.len() == 1) =>
                {
                    let key = kw.name.trim_end_matches('=').to_string();
                    let Some(Subscript::Index(value)) = kw.subs.as_ref().and_then(|x| x.first())
                    else {
                        return Err(LowerError {
                            message: format!("malformed keyword argument '{key}'"),
                            span: r.span,
                        });
                    };
                    keywords.insert(key, self.lower_expr_in(value, axis_map)?);
                }
                Subscript::Index(e) => positional.push(self.lower_expr_in(e, axis_map)?),
                Subscript::Triplet { .. } => {
                    return Err(LowerError {
                        message: format!(
                            "'{}' is not declared as an array (section on unknown name)",
                            r.name
                        ),
                        span: r.span,
                    })
                }
            }
        }
        let arg = |n: usize, key: &str, keywords: &mut HashMap<String, Value>| -> Option<Value> {
            keywords.remove(key).or_else(|| positional.get(n).cloned())
        };
        let int_ty = || Type::Scalar(ScalarType::Integer32);
        let f64_ty = || Type::Scalar(ScalarType::Float64);
        let name = r.name.as_str();
        let v = match name {
            "cshift" | "eoshift" => {
                let array = arg(0, "array", &mut keywords).ok_or_else(|| LowerError {
                    message: format!("{name} requires an ARRAY argument"),
                    span: r.span,
                })?;
                let shift = arg(1, "shift", &mut keywords).ok_or_else(|| LowerError {
                    message: format!("{name} requires a SHIFT argument"),
                    span: r.span,
                })?;
                let mut args = vec![(f64_ty(), array), (int_ty(), shift)];
                if name == "eoshift" {
                    let dim = keywords
                        .remove("dim")
                        .or_else(|| positional.get(3).cloned())
                        .unwrap_or(nb::int(1));
                    let boundary = keywords
                        .remove("boundary")
                        .or_else(|| positional.get(2).cloned());
                    // NIR eoshift order: (array, shift, dim[, boundary]).
                    args.push((int_ty(), dim));
                    if let Some(b) = boundary {
                        args.push((f64_ty(), b));
                    }
                } else {
                    let dim = arg(2, "dim", &mut keywords).unwrap_or(nb::int(1));
                    args.push((int_ty(), dim));
                }
                Value::FcnCall(name.to_string(), args)
            }
            "merge" => {
                if positional.len() != 3 || !keywords.is_empty() {
                    return Err(LowerError {
                        message: "MERGE requires (TSOURCE, FSOURCE, MASK)".into(),
                        span: r.span,
                    });
                }
                let mut it = positional.into_iter();
                let t = it.next().expect("len checked");
                let f = it.next().expect("len checked");
                let m = it.next().expect("len checked");
                Value::FcnCall(
                    "merge".into(),
                    vec![
                        (f64_ty(), t),
                        (f64_ty(), f),
                        (Type::Scalar(ScalarType::Logical32), m),
                    ],
                )
            }
            "transpose" => {
                let array = arg(0, "array", &mut keywords).ok_or_else(|| LowerError {
                    message: "TRANSPOSE requires an ARRAY argument".into(),
                    span: r.span,
                })?;
                Value::FcnCall("transpose".into(), vec![(f64_ty(), array)])
            }
            "sum" | "maxval" | "minval" => {
                let array = arg(0, "array", &mut keywords).ok_or_else(|| LowerError {
                    message: format!("{name} requires an ARRAY argument"),
                    span: r.span,
                })?;
                let mut call_args = vec![(f64_ty(), array)];
                if let Some(dim) = arg(1, "dim", &mut keywords) {
                    call_args.push((int_ty(), dim));
                }
                Value::FcnCall(name.to_string(), call_args)
            }
            "spread" => {
                let source = arg(0, "source", &mut keywords).ok_or_else(|| LowerError {
                    message: "SPREAD requires a SOURCE argument".into(),
                    span: r.span,
                })?;
                let dim = arg(1, "dim", &mut keywords).ok_or_else(|| LowerError {
                    message: "SPREAD requires a DIM argument".into(),
                    span: r.span,
                })?;
                let ncopies = arg(2, "ncopies", &mut keywords).ok_or_else(|| LowerError {
                    message: "SPREAD requires an NCOPIES argument".into(),
                    span: r.span,
                })?;
                Value::FcnCall(
                    "spread".into(),
                    vec![(f64_ty(), source), (int_ty(), dim), (int_ty(), ncopies)],
                )
            }
            "dot_product" => {
                // DOT_PRODUCT(a, b) ≡ SUM(a*b) — rewritten at lowering.
                if positional.len() != 2 {
                    return Err(LowerError {
                        message: "DOT_PRODUCT requires two vector arguments".into(),
                        span: r.span,
                    });
                }
                let mut it = positional.into_iter();
                let a = it.next().expect("len checked");
                let b = it.next().expect("len checked");
                Value::FcnCall("sum".into(), vec![(f64_ty(), nb::mul(a, b))])
            }
            "sin" | "cos" | "sqrt" | "exp" | "log" | "abs" => {
                let a = positional.first().cloned().ok_or_else(|| LowerError {
                    message: format!("{name} requires one argument"),
                    span: r.span,
                })?;
                let op = match name {
                    "sin" => UnOp::Sin,
                    "cos" => UnOp::Cos,
                    "sqrt" => UnOp::Sqrt,
                    "exp" => UnOp::Exp,
                    "log" => UnOp::Log,
                    _ => UnOp::Abs,
                };
                nb::un(op, a)
            }
            "dble" | "real" | "int" => {
                let a = positional.first().cloned().ok_or_else(|| LowerError {
                    message: format!("{name} requires one argument"),
                    span: r.span,
                })?;
                let op = match name {
                    "dble" => UnOp::ToFloat64,
                    // REAL widens like declarations do (crate docs).
                    "real" => UnOp::ToFloat64,
                    _ => UnOp::ToInt,
                };
                nb::un(op, a)
            }
            "mod" | "max" | "min" => {
                if positional.len() < 2 {
                    return Err(LowerError {
                        message: format!("{name} requires at least two arguments"),
                        span: r.span,
                    });
                }
                let op = match name {
                    "mod" => BinOp::Mod,
                    "max" => BinOp::Max,
                    _ => BinOp::Min,
                };
                if name == "mod" && positional.len() != 2 {
                    return Err(LowerError {
                        message: "MOD requires exactly two arguments".into(),
                        span: r.span,
                    });
                }
                let mut it = positional.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, x| nb::bin(op, acc, x))
            }
            other => {
                return Err(LowerError {
                    message: format!("unknown function or undeclared array '{other}'"),
                    span: r.span,
                })
            }
        };
        if !keywords.is_empty() {
            let names: Vec<&str> = keywords.keys().map(String::as_str).collect();
            return Err(LowerError {
                message: format!("unknown keyword arguments {names:?} for {name}"),
                span: r.span,
            });
        }
        Ok(v)
    }
}

fn expr_reads(e: &Expr, name: &str, found: &mut bool) {
    match e {
        Expr::Ref(r) => {
            if r.name == name {
                *found = true;
            }
            if let Some(subs) = &r.subs {
                for s in subs {
                    match s {
                        Subscript::Index(e) => expr_reads(e, name, found),
                        Subscript::Triplet { lo, hi, step } => {
                            for part in [lo, hi, step].into_iter().flatten() {
                                expr_reads(part, name, found);
                            }
                        }
                    }
                }
            }
        }
        Expr::Unary(_, a) => expr_reads(a, name, found),
        Expr::Binary(_, a, b) => {
            expr_reads(a, name, found);
            expr_reads(b, name, found);
        }
        _ => {}
    }
}
