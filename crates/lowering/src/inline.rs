//! Subroutine inlining: multi-unit source files flatten to one main
//! program before semantic lowering.
//!
//! The paper's intro motivates this path: the production CMF compiler
//! "cannot be used for developing scientific library functions for the
//! CM/2; these critical routines must be developed by hand at great
//! expense". Here library routines are ordinary `SUBROUTINE`s, expanded
//! at their call sites — which also hands their statements to the
//! blocking transformations, so a routine's whole-array operations fuse
//! with the caller's.
//!
//! ## Calling convention (checked, with positioned errors)
//!
//! * Array dummies bind by reference to array actuals of identical
//!   declared bounds.
//! * Scalar dummies bind by reference to scalar variables, or by value
//!   to expressions — but an expression actual must not be written by
//!   the subroutine.
//! * Locals are renamed apart per call site; recursion is rejected.

use std::collections::HashMap;

use f90y_frontend::ast::{
    DataRef, Expr, ProgramUnit, SourceFile, Stmt, Subroutine, Subscript, TypeDecl,
};
use f90y_frontend::token::Span;

use crate::LowerError;

/// Flatten a source file by expanding every `CALL` in the main program.
///
/// # Errors
///
/// Fails on unknown subroutines, arity or binding mismatches, and
/// (mutual) recursion.
pub fn inline_file(file: &SourceFile) -> Result<ProgramUnit, LowerError> {
    let subs: HashMap<&str, &Subroutine> = file
        .subroutines
        .iter()
        .map(|s| (s.name.as_str(), s))
        .collect();
    if subs.len() != file.subroutines.len() {
        return Err(LowerError {
            message: "duplicate subroutine names".into(),
            span: Span::default(),
        });
    }
    let caller_dims = dims_of(&file.program.decls);
    let mut ctx = InlineCtx {
        subs,
        counter: 0,
        extra_decls: Vec::new(),
    };
    let stmts = ctx.expand_stmts(&file.program.stmts, &caller_dims, 0)?;
    let mut decls = file.program.decls.clone();
    decls.extend(ctx.extra_decls);
    Ok(ProgramUnit {
        name: file.program.name.clone(),
        decls,
        stmts,
    })
}

/// Per-entity declared dims (`None` = scalar) for binding checks.
type DimsMap = HashMap<String, Option<Vec<(i64, i64)>>>;

fn dims_of(decls: &[TypeDecl]) -> DimsMap {
    let mut map = DimsMap::new();
    for d in decls {
        for e in &d.entities {
            let dims = e
                .dims
                .as_ref()
                .or(d.dimension.as_ref())
                .map(|specs| specs.iter().map(|s| (s.lo, s.hi)).collect());
            map.insert(e.name.clone(), dims);
        }
    }
    map
}

struct InlineCtx<'a> {
    subs: HashMap<&'a str, &'a Subroutine>,
    counter: usize,
    extra_decls: Vec<TypeDecl>,
}

impl<'a> InlineCtx<'a> {
    fn expand_stmts(
        &mut self,
        stmts: &[Stmt],
        caller_dims: &DimsMap,
        depth: usize,
    ) -> Result<Vec<Stmt>, LowerError> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.expand_stmt(s, caller_dims, depth, &mut out)?;
        }
        Ok(out)
    }

    fn expand_stmt(
        &mut self,
        stmt: &Stmt,
        caller_dims: &DimsMap,
        depth: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        match stmt {
            Stmt::Call { name, args, span } => {
                self.expand_call(name, args, *span, caller_dims, depth, out)
            }
            Stmt::Do {
                var,
                lo,
                hi,
                step,
                body,
                span,
            } => {
                let body = self.expand_stmts(body, caller_dims, depth)?;
                out.push(Stmt::Do {
                    var: var.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: step.clone(),
                    body,
                    span: *span,
                });
                Ok(())
            }
            Stmt::DoWhile { cond, body, span } => {
                let body = self.expand_stmts(body, caller_dims, depth)?;
                out.push(Stmt::DoWhile {
                    cond: cond.clone(),
                    body,
                    span: *span,
                });
                Ok(())
            }
            Stmt::If {
                arms,
                else_body,
                span,
            } => {
                let arms = arms
                    .iter()
                    .map(|(c, b)| Ok((c.clone(), self.expand_stmts(b, caller_dims, depth)?)))
                    .collect::<Result<_, LowerError>>()?;
                let else_body = self.expand_stmts(else_body, caller_dims, depth)?;
                out.push(Stmt::If {
                    arms,
                    else_body,
                    span: *span,
                });
                Ok(())
            }
            Stmt::Where {
                mask,
                then_body,
                else_body,
                span,
            } => {
                let then_body = self.expand_stmts(then_body, caller_dims, depth)?;
                let else_body = self.expand_stmts(else_body, caller_dims, depth)?;
                out.push(Stmt::Where {
                    mask: mask.clone(),
                    then_body,
                    else_body,
                    span: *span,
                });
                Ok(())
            }
            other => {
                out.push(other.clone());
                Ok(())
            }
        }
    }

    fn expand_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        caller_dims: &DimsMap,
        depth: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        if depth > 16 {
            return Err(LowerError {
                message: format!("CALL nesting exceeds 16 at '{name}' (recursion?)"),
                span,
            });
        }
        let Some(&sub) = self.subs.get(name) else {
            return Err(LowerError {
                message: format!("unknown subroutine '{name}'"),
                span,
            });
        };
        if args.len() != sub.params.len() {
            return Err(LowerError {
                message: format!(
                    "'{name}' expects {} arguments, got {}",
                    sub.params.len(),
                    args.len()
                ),
                span,
            });
        }
        let sub_dims = dims_of(&sub.decls);
        let written = written_names(&sub.stmts);

        // Build the renaming: formals first.
        let mut rename: HashMap<String, String> = HashMap::new();
        for (formal, actual) in sub.params.iter().zip(args) {
            let formal_dims = sub_dims.get(formal).cloned().ok_or_else(|| LowerError {
                message: format!("dummy argument '{formal}' of '{name}' is undeclared"),
                span: sub.span,
            })?;
            match actual {
                Expr::Ref(DataRef {
                    name: aname,
                    subs: None,
                    ..
                }) => {
                    // Variable actual: by reference. Array dummies need
                    // matching declared bounds.
                    let actual_dims =
                        caller_dims.get(aname).cloned().ok_or_else(|| LowerError {
                            message: format!("actual argument '{aname}' is undeclared"),
                            span,
                        })?;
                    match (&formal_dims, &actual_dims) {
                        (Some(fd), Some(ad)) => {
                            if fd != ad {
                                return Err(LowerError {
                                    message: format!(
                                        "array argument '{aname}' has bounds {ad:?} but \
                                         dummy '{formal}' of '{name}' declares {fd:?}"
                                    ),
                                    span,
                                });
                            }
                        }
                        (None, None) => {}
                        (Some(_), None) => {
                            return Err(LowerError {
                                message: format!(
                                    "dummy '{formal}' of '{name}' is an array but \
                                     '{aname}' is a scalar"
                                ),
                                span,
                            })
                        }
                        (None, Some(_)) => {
                            return Err(LowerError {
                                message: format!(
                                    "dummy '{formal}' of '{name}' is a scalar but \
                                     '{aname}' is an array"
                                ),
                                span,
                            })
                        }
                    }
                    rename.insert(formal.clone(), aname.clone());
                }
                expr => {
                    // Expression actual: by value into a fresh local.
                    if formal_dims.is_some() {
                        return Err(LowerError {
                            message: format!(
                                "array dummy '{formal}' of '{name}' needs an array \
                                 variable actual"
                            ),
                            span,
                        });
                    }
                    if written.contains(formal) {
                        return Err(LowerError {
                            message: format!(
                                "'{name}' writes dummy '{formal}', so the actual must \
                                 be a variable, not an expression"
                            ),
                            span,
                        });
                    }
                    self.counter += 1;
                    let fresh = format!("{name}__arg{}", self.counter);
                    // Declare with the dummy's type.
                    self.push_decl_for(sub, formal, &fresh, span)?;
                    out.push(Stmt::Assign {
                        lhs: DataRef {
                            name: fresh.clone(),
                            subs: None,
                            span,
                        },
                        rhs: expr.clone(),
                        span,
                    });
                    rename.insert(formal.clone(), fresh);
                }
            }
        }

        // Locals rename apart.
        for d in &sub.decls {
            for e in &d.entities {
                if sub.params.contains(&e.name) {
                    continue;
                }
                self.counter += 1;
                let fresh = format!("{name}__{}{}", e.name, self.counter);
                self.push_decl_for(sub, &e.name, &fresh, span)?;
                rename.insert(e.name.clone(), fresh);
            }
        }

        // Substitute and expand nested calls.
        let renamed: Vec<Stmt> = sub.stmts.iter().map(|s| subst_stmt(s, &rename)).collect();
        let expanded = self.expand_stmts(&renamed, caller_dims, depth + 1)?;
        out.extend(expanded);
        Ok(())
    }

    /// Emit a declaration for `fresh` copying the base type and dims of
    /// `original` inside `sub`.
    fn push_decl_for(
        &mut self,
        sub: &Subroutine,
        original: &str,
        fresh: &str,
        span: Span,
    ) -> Result<(), LowerError> {
        for d in &sub.decls {
            for e in &d.entities {
                if e.name == original {
                    self.extra_decls.push(TypeDecl {
                        base: d.base,
                        dimension: None,
                        parameter: false,
                        entities: vec![f90y_frontend::ast::Entity {
                            name: fresh.to_string(),
                            dims: e.dims.clone().or_else(|| d.dimension.clone()),
                            init: None,
                        }],
                        span,
                    });
                    return Ok(());
                }
            }
        }
        Err(LowerError {
            message: format!("'{}' uses undeclared name '{original}'", sub.name),
            span: sub.span,
        })
    }
}

/// Names assigned anywhere in a statement list (conservative: includes
/// names passed onward as `CALL` actuals).
fn written_names(stmts: &[Stmt]) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    fn walk(stmts: &[Stmt], out: &mut std::collections::HashSet<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { lhs, .. } => {
                    out.insert(lhs.name.clone());
                }
                Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => walk(body, out),
                Stmt::If {
                    arms, else_body, ..
                } => {
                    for (_, b) in arms {
                        walk(b, out);
                    }
                    walk(else_body, out);
                }
                Stmt::Where {
                    then_body,
                    else_body,
                    ..
                } => {
                    walk(then_body, out);
                    walk(else_body, out);
                }
                Stmt::Forall { assign, .. } => walk(std::slice::from_ref(assign), out),
                Stmt::Call { args, .. } => {
                    for a in args {
                        if let Expr::Ref(DataRef {
                            name, subs: None, ..
                        }) = a
                        {
                            out.insert(name.clone());
                        }
                    }
                }
                Stmt::Continue { .. } => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

// ---------------------------------------------------------------------
// Capture-free substitution over the AST
// ---------------------------------------------------------------------

fn subst_name(name: &str, map: &HashMap<String, String>) -> String {
    map.get(name).cloned().unwrap_or_else(|| name.to_string())
}

fn subst_ref(r: &DataRef, map: &HashMap<String, String>) -> DataRef {
    DataRef {
        name: subst_name(&r.name, map),
        subs: r.subs.as_ref().map(|subs| {
            subs.iter()
                .map(|s| match s {
                    Subscript::Index(e) => Subscript::Index(subst_expr(e, map)),
                    Subscript::Triplet { lo, hi, step } => Subscript::Triplet {
                        lo: lo.as_ref().map(|e| subst_expr(e, map)),
                        hi: hi.as_ref().map(|e| subst_expr(e, map)),
                        step: step.as_ref().map(|e| subst_expr(e, map)),
                    },
                })
                .collect()
        }),
        span: r.span,
    }
}

fn subst_expr(e: &Expr, map: &HashMap<String, String>) -> Expr {
    match e {
        Expr::Ref(r) => Expr::Ref(subst_ref(r, map)),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(subst_expr(a, map))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(subst_expr(a, map)),
            Box::new(subst_expr(b, map)),
        ),
        lit => lit.clone(),
    }
}

fn subst_stmt(s: &Stmt, map: &HashMap<String, String>) -> Stmt {
    match s {
        Stmt::Assign { lhs, rhs, span } => Stmt::Assign {
            lhs: subst_ref(lhs, map),
            rhs: subst_expr(rhs, map),
            span: *span,
        },
        Stmt::Do {
            var,
            lo,
            hi,
            step,
            body,
            span,
        } => Stmt::Do {
            var: subst_name(var, map),
            lo: subst_expr(lo, map),
            hi: subst_expr(hi, map),
            step: step.as_ref().map(|e| subst_expr(e, map)),
            body: body.iter().map(|b| subst_stmt(b, map)).collect(),
            span: *span,
        },
        Stmt::DoWhile { cond, body, span } => Stmt::DoWhile {
            cond: subst_expr(cond, map),
            body: body.iter().map(|b| subst_stmt(b, map)).collect(),
            span: *span,
        },
        Stmt::Forall {
            triplets,
            assign,
            span,
        } => Stmt::Forall {
            triplets: triplets
                .iter()
                .map(|(n, lo, hi, st)| {
                    (
                        n.clone(), // FORALL indices bind locally
                        subst_expr(lo, map),
                        subst_expr(hi, map),
                        st.as_ref().map(|e| subst_expr(e, map)),
                    )
                })
                .collect(),
            assign: Box::new(subst_stmt(assign, map)),
            span: *span,
        },
        Stmt::Where {
            mask,
            then_body,
            else_body,
            span,
        } => Stmt::Where {
            mask: subst_expr(mask, map),
            then_body: then_body.iter().map(|b| subst_stmt(b, map)).collect(),
            else_body: else_body.iter().map(|b| subst_stmt(b, map)).collect(),
            span: *span,
        },
        Stmt::If {
            arms,
            else_body,
            span,
        } => Stmt::If {
            arms: arms
                .iter()
                .map(|(c, b)| {
                    (
                        subst_expr(c, map),
                        b.iter().map(|x| subst_stmt(x, map)).collect(),
                    )
                })
                .collect(),
            else_body: else_body.iter().map(|b| subst_stmt(b, map)).collect(),
            span: *span,
        },
        Stmt::Call { name, args, span } => Stmt::Call {
            name: name.clone(),
            args: args.iter().map(|a| subst_expr(a, map)).collect(),
            span: *span,
        },
        Stmt::Continue { span } => Stmt::Continue { span: *span },
    }
}
