//! Golden tests: lowering the paper's worked examples and checking the
//! produced NIR against the figures (structure and printed syntax) and
//! against the reference evaluator (semantics).

use f90y_frontend::parse;
use f90y_lowering::lower;
use f90y_nir::eval::Evaluator;
use f90y_nir::pretty::print_imp;
use f90y_nir::{FieldAction, Imp, LValue};

fn lower_src(src: &str) -> Imp {
    let unit = parse(src).expect("parses");
    lower(&unit).expect("lowers")
}

fn run(src: &str) -> Evaluator {
    let p = lower_src(src);
    let mut ev = Evaluator::new();
    ev.run(&p).expect("evaluates");
    ev
}

/// Walk to the first MOVE in a program.
fn first_move(imp: &Imp) -> &Imp {
    let mut found = None;
    imp.walk(&mut |i| {
        if found.is_none() && matches!(i, Imp::Move(_)) {
            found = Some(i as *const Imp);
        }
    });
    let ptr = found.expect("program contains a MOVE");
    // Safety: pointer derived from the borrowed tree above and the tree
    // outlives the call.
    unsafe { &*ptr }
}

// ---------------------------------------------------------------------
// Figure 7: FORALL → parallel array notation
// ---------------------------------------------------------------------

#[test]
fn fig7_forall_lowers_to_single_move_with_local_under() {
    let p = lower_src("INTEGER, ARRAY(32,32) :: A\nFORALL (i=1:32, j=1:32) A(i,j) = i+j\n");
    // One MOVE, target everywhere, source BINARY(Add, local_under 1, local_under 2).
    assert_eq!(p.count_moves(), 1);
    let Imp::Move(clauses) = first_move(&p) else {
        unreachable!("first_move returns a Move")
    };
    assert_eq!(clauses.len(), 1);
    let c = &clauses[0];
    assert!(c.is_unmasked());
    assert!(matches!(
        &c.dst,
        LValue::AVar(name, FieldAction::Everywhere) if name == "a"
    ));
    let text = c.src.to_string();
    assert!(
        text.contains("BINARY(Add,local_under"),
        "source should add coordinate fields: {text}"
    );
    assert!(text.contains(",1)") && text.contains(",2)"));
}

#[test]
fn fig7_printed_program_has_paper_shape_bindings() {
    let p = lower_src("INTEGER, ARRAY(32,32) :: A\nFORALL (i=1:32, j=1:32) A(i,j) = i+j\n");
    let text = print_imp(&p);
    assert!(text.contains(
        "WITH_DOMAIN(('alpha',prod_dom[interval(point 1,point 32),interval(point 1,point 32)])"
    ));
    assert!(text.contains("WITH_DECL"));
    assert!(text.contains("AVAR('a',everywhere)"));
}

// ---------------------------------------------------------------------
// Figure 8: K/L whole-array program
// ---------------------------------------------------------------------

#[test]
fn fig8_lowering_structure_and_semantics() {
    let src = "INTEGER K(128,64), L(128)\nL = 6\nK = 2*K + 5\n";
    let p = lower_src(src);
    let text = print_imp(&p);
    // Two distinct domains: one for K(128,64), one for L(128).
    assert!(text.contains("WITH_DOMAIN(('alpha'"));
    assert!(text.contains("WITH_DOMAIN(('beta'"));
    assert!(text.contains("MOVE[(True,(SCALAR(integer_32,'6'),AVAR('l',everywhere)))]"));
    assert!(text.contains(
        "BINARY(Add,BINARY(Mul,SCALAR(integer_32,'2'),AVAR('k',everywhere)),SCALAR(integer_32,'5'))"
    ));

    let ev = run(src);
    assert!(ev.final_array_f64("l").unwrap().iter().all(|&x| x == 6.0));
    assert!(ev.final_array_f64("k").unwrap().iter().all(|&x| x == 5.0));
}

// ---------------------------------------------------------------------
// §2.1 section examples
// ---------------------------------------------------------------------

#[test]
fn section_assignment_semantics_match_f77_loop() {
    // Paper §2.1: L(32:64) = L(96:128); K(32:64,:) = K(32:64,:)**2
    let src = "
        INTEGER K(128,64), L(128)
        FORALL (i=1:128) L(i) = i
        FORALL (i=1:128, j=1:64) K(i,j) = i+j
        L(32:64) = L(96:128)
        K(32:64,:) = K(32:64,:)**2
    ";
    let ev = run(src);
    let l = ev.final_array_f64("l").unwrap();
    for i in 1..=128i64 {
        let expect = if (32..=64).contains(&i) {
            (i + 64) as f64
        } else {
            i as f64
        };
        assert_eq!(l[(i - 1) as usize], expect, "L({i})");
    }
    let k = ev.final_array_f64("k").unwrap();
    for i in 1..=128i64 {
        for j in 1..=64i64 {
            let base = (i + j) as f64;
            let expect = if (32..=64).contains(&i) {
                base * base
            } else {
                base
            };
            assert_eq!(k[((i - 1) * 64 + (j - 1)) as usize], expect, "K({i},{j})");
        }
    }
}

#[test]
fn dusty_deck_do_loops_match_array_statements() {
    // The same computation written both ways must agree.
    let f77 = "
        INTEGER K(128,64), L(128)
        DO 10 I=1,128
           L(I) = 6
           DO 20 J=1,64
              K(I,J) = 2*K(I,J) + 5
  20       CONTINUE
  10    CONTINUE
    ";
    let f90 = "INTEGER K(128,64), L(128)\nL = 6\nK = 2*K + 5\n";
    let ev77 = run(f77);
    let ev90 = run(f90);
    assert_eq!(
        ev77.final_array_f64("l").unwrap(),
        ev90.final_array_f64("l").unwrap()
    );
    assert_eq!(
        ev77.final_array_f64("k").unwrap(),
        ev90.final_array_f64("k").unwrap()
    );
}

// ---------------------------------------------------------------------
// Figure 10 source: strided masked assignment
// ---------------------------------------------------------------------

#[test]
fn fig10_source_program_evaluates() {
    let src = "
        INTEGER, ARRAY(32,32) :: A, B
        INTEGER, ARRAY(32) :: C
        INTEGER N
        N = 7
        A = N
        B(1:31:2,:) = A(1:31:2,:)
        C = N+1
        B(2:32:2,:) = 5*A(2:32:2,:)
    ";
    let ev = run(src);
    let b = ev.final_array_f64("b").unwrap();
    for i in 1..=32i64 {
        for j in 1..=32i64 {
            let expect = if i % 2 == 1 { 7.0 } else { 35.0 };
            assert_eq!(b[((i - 1) * 32 + (j - 1)) as usize], expect, "B({i},{j})");
        }
    }
    assert!(ev.final_array_f64("c").unwrap().iter().all(|&x| x == 8.0));
}

#[test]
fn where_elsewhere_lowers_to_disjoint_masked_moves() {
    let src = "
        REAL A(16), B(16)
        FORALL (i=1:16) A(i) = i - 8
        WHERE (A > 0.0)
          B = A
        ELSEWHERE
          B = -A
        END WHERE
    ";
    let p = lower_src(src);
    // Two masked MOVEs (one per arm).
    let mut masked = 0;
    p.walk(&mut |i| {
        if let Imp::Move(clauses) = i {
            masked += clauses.iter().filter(|c| !c.is_unmasked()).count();
        }
    });
    assert_eq!(masked, 2);
    let ev = run(src);
    let b = ev.final_array_f64("b").unwrap();
    for (ix, &x) in b.iter().enumerate() {
        let a = (ix as f64 + 1.0) - 8.0;
        assert_eq!(x, a.abs().max(a.abs()), "B({})", ix + 1);
    }
}

// ---------------------------------------------------------------------
// Figure 9 source program
// ---------------------------------------------------------------------

#[test]
fn fig9_source_program_evaluates() {
    let src = "
        INTEGER, ARRAY(64,64) :: A, B
        INTEGER, ARRAY(64) :: C
        FORALL (i=1:64, j=1:64) B(i,j) = 10*i + j
        FORALL (i=1:64, j=1:64) A(i,j) = B(i,j) + j
        DO 20 I=1,64
           C(I) = A(I,I)
  20    CONTINUE
        B = A
    ";
    let ev = run(src);
    let c = ev.final_array_f64("c").unwrap();
    for i in 1..=64i64 {
        assert_eq!(c[(i - 1) as usize], (10 * i + i + i) as f64, "C({i})");
    }
    let b = ev.final_array_f64("b").unwrap();
    assert_eq!(b, ev.final_array_f64("a").unwrap());
}

// ---------------------------------------------------------------------
// Intrinsics and the SWE excerpt (Figure 12 source form)
// ---------------------------------------------------------------------

#[test]
fn cshift_keyword_form_matches_positional() {
    let kw = "
        REAL v(16), z(16)
        FORALL (i=1:16) v(i) = i
        z = v - CSHIFT(v, DIM=1, SHIFT=-1)
    ";
    let pos = "
        REAL v(16), z(16)
        FORALL (i=1:16) v(i) = i
        z = v - CSHIFT(v, -1, 1)
    ";
    assert_eq!(
        run(kw).final_array_f64("z").unwrap(),
        run(pos).final_array_f64("z").unwrap()
    );
}

#[test]
fn swe_excerpt_statement_evaluates() {
    // Fig. 12: z = (fsdx*(v - cshift(v,...)) - fsdy*(u - cshift(u,...))) / (p + ...)
    let src = "
        REAL u(8,8), v(8,8), p(8,8), z(8,8)
        REAL fsdx, fsdy
        fsdx = 4.0
        fsdy = 5.0
        FORALL (i=1:8, j=1:8) u(i,j) = i
        FORALL (i=1:8, j=1:8) v(i,j) = j
        FORALL (i=1:8, j=1:8) p(i,j) = 100
        z = (fsdx*(v - CSHIFT(v, DIM=1, SHIFT=-1)) - fsdy*(u - CSHIFT(u, DIM=2, SHIFT=-1))) &
            / (p + CSHIFT(p, DIM=1, SHIFT=-1))
    ";
    let ev = run(src);
    let z = ev.final_array_f64("z").unwrap();
    assert_eq!(z.len(), 64);
    // v is constant along dim 1, so v - cshift(v, dim=1) == 0 everywhere;
    // u is constant along dim 2, so the second term is also 0.
    assert!(z.iter().all(|&x| x == 0.0));
}

#[test]
fn reductions_lower_and_evaluate() {
    let src = "
        REAL a(10)
        REAL s, mx, mn
        FORALL (i=1:10) a(i) = i
        s = SUM(a)
        mx = MAXVAL(a)
        mn = MINVAL(a)
    ";
    let ev = run(src);
    assert_eq!(ev.final_scalar_f64("s").unwrap(), 55.0);
    assert_eq!(ev.final_scalar_f64("mx").unwrap(), 10.0);
    assert_eq!(ev.final_scalar_f64("mn").unwrap(), 1.0);
}

#[test]
fn variable_bound_do_lowers_to_while() {
    let src = "
        INTEGER n, i, s
        n = 5
        s = 0
        DO i = 1, n
          s = s + i
        END DO
    ";
    let p = lower_src(src);
    let mut whiles = 0;
    p.walk(&mut |i| {
        if matches!(i, Imp::While(..)) {
            whiles += 1;
        }
    });
    assert_eq!(whiles, 1, "variable bounds need WHILE lowering");
    let ev = run(src);
    assert_eq!(ev.final_scalar_f64("s").unwrap(), 15.0);
}

#[test]
fn strided_do_lowers_and_evaluates() {
    let src = "
        INTEGER s
        s = 0
        DO i = 1, 10, 3
          s = s + i
        END DO
    ";
    let ev = run(src);
    assert_eq!(ev.final_scalar_f64("s").unwrap(), (1 + 4 + 7 + 10) as f64);
}

#[test]
fn scalar_control_flow_lowers() {
    let src = "
        INTEGER x, y
        x = 3
        IF (x > 2) THEN
          y = 10
        ELSE IF (x > 0) THEN
          y = 5
        ELSE
          y = 0
        END IF
    ";
    let ev = run(src);
    assert_eq!(ev.final_scalar_f64("y").unwrap(), 10.0);
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

#[test]
fn undeclared_variable_is_reported() {
    let unit = parse("x = 1\n").unwrap();
    let err = lower(&unit).unwrap_err();
    assert!(err.message.contains("undeclared"), "{}", err.message);
}

#[test]
fn unknown_function_is_reported() {
    let unit = parse("REAL x\nx = frobnicate(3)\n").unwrap();
    let err = lower(&unit).unwrap_err();
    assert!(err.message.contains("unknown function"), "{}", err.message);
}

#[test]
fn rank_mismatch_is_reported() {
    let unit = parse("REAL a(4,4)\na(1) = 0.0\n").unwrap();
    let err = lower(&unit).unwrap_err();
    assert!(err.message.contains("rank"), "{}", err.message);
}

#[test]
fn shape_disagreement_is_caught_by_checking() {
    let unit = parse("REAL a(4), b(8)\na = b\n").unwrap();
    let err = lower(&unit).unwrap_err();
    assert!(
        err.message.contains("shape"),
        "expected shape error, got: {}",
        err.message
    );
}

#[test]
fn negative_stride_sections_are_rejected() {
    let unit = parse("REAL a(8)\na(8:1:-1) = 0.0\n").unwrap();
    assert!(lower(&unit).is_err());
}

#[test]
fn forall_reading_its_target_in_general_form_is_rejected() {
    // Permuted indices (general path) + self-read: needs a temporary.
    let unit = parse("REAL a(4,4)\nFORALL (i=1:4, j=1:4) a(j,i) = a(i,j)\n").unwrap();
    assert!(lower(&unit).is_err());
}

#[test]
fn general_forall_with_permuted_indices_works_without_self_read() {
    let src = "
        REAL a(4,4), b(4,4)
        FORALL (i=1:4, j=1:4) b(i,j) = 10*i + j
        FORALL (i=1:4, j=1:4) a(j,i) = b(i,j)
    ";
    let ev = run(src);
    let a = ev.final_array_f64("a").unwrap();
    for i in 1..=4i64 {
        for j in 1..=4i64 {
            assert_eq!(
                a[((j - 1) * 4 + (i - 1)) as usize],
                (10 * i + j) as f64,
                "A({j},{i})"
            );
        }
    }
}

#[test]
fn eoshift_keyword_arguments_keep_nir_order() {
    // Regression: with both DIM and BOUNDARY given by keyword, lowering
    // used to swap the two into each other's NIR slots, so the boundary
    // value was read as the (invalid) dimension.
    let src = "
        REAL a(6), b(6), c(6)
        FORALL (i=1:6) a(i) = i
        b = EOSHIFT(a, DIM=1, SHIFT=2, BOUNDARY=-1.0)
        c = EOSHIFT(a, 2, -1.0, 1)
    ";
    let ev = run(src);
    let want = vec![3.0, 4.0, 5.0, 6.0, -1.0, -1.0];
    assert_eq!(ev.final_array_f64("b").unwrap(), want);
    // Positional Fortran order (ARRAY, SHIFT, BOUNDARY, DIM) agrees.
    assert_eq!(ev.final_array_f64("c").unwrap(), want);
}
