//! A five-point heat-diffusion stencil: the fine-grain neighbourhood
//! computation the paper's introduction says motivated Thinking
//! Machines' separate convolution compiler. Here the ordinary pipeline
//! handles it: the shifts become grid (NEWS) communication phases and
//! the update fuses into one computation block.
//!
//! ```text
//! cargo run --release --example heat_stencil [grid] [steps]
//! ```

use f90y_core::{workloads, Compiler, Pipeline, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let grid: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(256);
    let steps: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(10);

    let src = workloads::heat_source(grid, steps);
    let exe = Compiler::new(Pipeline::F90y).compile(&src)?;
    println!(
        "heat stencil {grid}x{grid}, {steps} steps: {} computation blocks, {} PEAC instructions",
        exe.compiled.blocks.len(),
        exe.compiled.total_node_instructions()
    );
    println!("\nnode code:\n\n{}", exe.compiled.listings());

    let run = exe.session(Target::Cm2 { nodes: 1024 }).run()?.into_cm2();
    let t = run.finals.final_array("t")?;
    let mean: f64 = t.iter().sum::<f64>() / t.len() as f64;
    println!("after {steps} steps: mean temperature {mean:.4} (diffusion preserves the mean)");
    println!(
        "{:.3} sustained GFLOPS on 1024 nodes ({} comm calls, {} dispatches)",
        run.gflops, run.stats.comm_calls, run.stats.dispatches
    );

    // Diffusion is conservative: the mean must match the initial mean.
    let init_mean: f64 = {
        // MOD(i*31 + j*17, 100) averaged over the grid.
        let mut sum = 0.0;
        for i in 1..=grid as i64 {
            for j in 1..=grid as i64 {
                sum += ((i * 31 + j * 17) % 100) as f64;
            }
        }
        sum / (grid * grid) as f64
    };
    assert!(
        (mean - init_mean).abs() < 1e-6 * init_mean.abs().max(1.0),
        "diffusion must conserve the mean: {mean} vs {init_mean}"
    );
    println!("conservation check passed ✓");
    Ok(())
}
