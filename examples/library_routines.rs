//! Scientific library routines, the paper's motivating gap:
//!
//! > "the CMF compiler in its current form cannot be used for developing
//! > scientific library functions for the CM/2; these critical routines
//! > must be developed by hand at great expense."
//!
//! Here a small smoothing/normalising library is written as ordinary
//! `SUBROUTINE`s; inlining hands their whole-array statements to the
//! blocking transformations, so library code fuses with caller code.
//!
//! ```text
//! cargo run --release --example library_routines
//! ```

use f90y_core::{Compiler, Pipeline, Target};

const SOURCE: &str = "
PROGRAM driver
REAL field(256), work(256)
REAL lo, hi
FORALL (i=1:256) field(i) = MOD(i*37, 101)
CALL smooth(field, work)
CALL smooth(work, field)
CALL rescale(field, 0.0 + 0.0, 1.0*1.0)
lo = MINVAL(field)
hi = MAXVAL(field)
END PROGRAM driver

SUBROUTINE smooth(x, y)
REAL x(256), y(256)
y = 0.25*CSHIFT(x, -1, 1) + 0.5*x + 0.25*CSHIFT(x, 1, 1)
END SUBROUTINE smooth

SUBROUTINE rescale(v, new_lo, new_hi)
REAL v(256)
REAL new_lo, new_hi
REAL vmin, vmax
vmin = MINVAL(v)
vmax = MAXVAL(v)
v = new_lo + (new_hi - new_lo)*(v - vmin)/(vmax - vmin)
END SUBROUTINE rescale
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exe = Compiler::new(Pipeline::F90y).compile(SOURCE)?;
    println!(
        "library + driver inlined into {} computation blocks, {} PEAC instructions\n",
        exe.compiled.blocks.len(),
        exe.compiled.total_node_instructions()
    );

    let run = exe.session(Target::Cm2 { nodes: 256 }).run()?.into_cm2();
    println!(
        "after smooth·smooth·rescale: MINVAL = {}, MAXVAL = {}",
        run.finals.final_scalar("lo")?,
        run.finals.final_scalar("hi")?,
    );
    assert_eq!(run.finals.final_scalar("lo")?, 0.0);
    assert_eq!(run.finals.final_scalar("hi")?, 1.0);

    println!(
        "{} dispatches, {} comm calls, {:.3} sustained GFLOPS on 256 nodes",
        run.stats.dispatches, run.stats.comm_calls, run.gflops
    );
    exe.validate()?;
    println!("validated against the NIR reference evaluator ✓");
    Ok(())
}
