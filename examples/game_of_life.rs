//! Conway's Game of Life with masked whole-array assignment —
//! `WHERE`/`END WHERE` becomes masked vector moves (`fselv`), the SIMD
//! conditional-assignment idiom the paper's §2.2 describes ("the
//! programmer must use masked moves to simulate conditional
//! assignment").
//!
//! ```text
//! cargo run --release --example game_of_life [steps]
//! ```

use f90y_core::{workloads, Compiler, Pipeline, Target};

fn render(grid: &[f64], n: usize) -> String {
    let mut out = String::new();
    for i in 0..n.min(24) {
        for j in 0..n.min(60) {
            out.push(if grid[i * n + j] != 0.0 { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let n = 32;

    let src = workloads::life_source(n, steps);
    let exe = Compiler::new(Pipeline::F90y).compile(&src)?;
    let run = exe.session(Target::Cm2 { nodes: 64 }).run()?.into_cm2();
    let g = run.finals.final_array("g")?;

    println!("Game of Life, {n}x{n} torus, {steps} generations:\n");
    println!("{}", render(&g, n));
    let masked = exe
        .compiled
        .blocks
        .iter()
        .flat_map(|b| b.routine.body())
        .filter(|i| matches!(i, f90y_peac::Instr::Fselv { .. }))
        .count();
    println!(
        "{} masked vector moves (fselv) in the node code — conditional assignment without \
         control flow",
        masked
    );
    println!(
        "{} computation blocks, {} communication calls/generation group, {:.3} GFLOPS",
        exe.compiled.blocks.len(),
        run.stats.comm_calls / steps.max(1) as u64,
        run.gflops
    );
    exe.validate()?;
    println!("validated against the NIR reference evaluator ✓");
    Ok(())
}
