//! Quickstart: compile a small Fortran 90 program with the Fortran-90-Y
//! pipeline, inspect every stage, and run it on a simulated CM/2.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use f90y_core::{Compiler, Pipeline, Target};
use f90y_nir::pretty::print_imp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §2.1 example: whole-array Fortran 90.
    let source = "
        INTEGER K(128,64), L(128)
        L = 6
        K = 2*K + 5
        L(32:64) = L(96:128)
        K(32:64,:) = K(32:64,:)**2
    ";
    println!("=== Fortran 90 source ===\n{source}");

    let exe = Compiler::new(Pipeline::F90y).compile(source)?;

    println!("=== NIR after semantic lowering ===\n");
    println!("{}\n", print_imp(&exe.nir));

    println!("=== NIR after blocking/masking transformations ===\n");
    println!("{}\n", print_imp(&exe.optimized));
    println!(
        "(transformations: {} section assignments padded to masks, {} statements hoisted, \
         {} computation blocks fused)\n",
        exe.report.masked_pads, exe.report.swaps, exe.report.blocks_after
    );

    println!("=== PEAC node routines ===\n");
    println!("{}", exe.compiled.listings());

    // Run on a 256-node machine and read the results back.
    let run = exe.session(Target::Cm2 { nodes: 256 }).run()?.into_cm2();
    let l = run.finals.final_array("l")?;
    let k = run.finals.final_array("k")?;
    println!("=== Execution on a 256-node CM/2 ===\n");
    println!("L(1)  = {}   L(32) = {}   L(128) = {}", l[0], l[31], l[127]);
    println!("K(1,1) = {}   K(40,7) = {}", k[0], k[39 * 64 + 6]);
    println!(
        "\n{} PEAC dispatches, {} runtime communication calls, {} node cycles, \
         {:.3} sustained GFLOPS",
        run.stats.dispatches,
        run.stats.comm_calls,
        run.stats.node_cycles(),
        run.gflops
    );

    // Every run can be validated against the NIR reference evaluator.
    exe.validate()?;
    println!("validated against the NIR reference evaluator ✓");
    Ok(())
}
