//! Retargeting demo (paper §5.3.1): compile once, run the identical
//! program on the CM/2 simulator, under the CM/5 three-way cost
//! model, and on the CM/5 MIMD engine — sharded arrays, real halo
//! messages — which must reproduce the CM/2 arrays bit for bit.
//!
//! ```text
//! cargo run --release --example retarget_cm5
//! ```

use f90y_core::{workloads, Compiler, Pipeline, Target};
use f90y_mimd::{run_and_estimate, split_block, MimdConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = workloads::swe_source(256, 3);
    let exe = Compiler::new(Pipeline::F90y).compile(&src)?;

    println!("one compiled program, two machines\n");
    println!("three-way split of block 0 for the CM/5 node:");
    let split = split_block(&exe.compiled.blocks[0]);
    println!("  vector units: {} instructions", split.vector_instructions);
    println!(
        "  node SPARC:   {} address/loop operations per subgrid iteration",
        split.sparc_ops_per_iteration
    );
    println!(
        "  control proc: dispatch of {} arguments\n",
        split.control_args
    );

    let cm2 = exe.session(Target::Cm2 { nodes: 2048 }).run()?.into_cm2();
    println!("CM/2, 2048 nodes: {:>7.2} GFLOPS", cm2.gflops);

    for nodes in [64, 256, 1024] {
        let config = MimdConfig::new(nodes);
        let (run, stats) = run_and_estimate(&exe.compiled, nodes)?;
        // The data is identical on both machines.
        assert_eq!(
            run.final_array("p")?,
            cm2.finals.final_array("p")?,
            "retargeting must not change results"
        );
        println!(
            "CM/5, {nodes:>4} nodes: {:>7.2} GFLOPS ({:.1}% of its {:.0} GF peak)",
            stats.gflops(),
            stats.gflops() / config.peak_gflops() * 100.0,
            config.peak_gflops()
        );
    }
    // Third machine: the MIMD engine really executes the sharded
    // program, so its numbers come from counted messages, not a model.
    println!();
    for nodes in [16, 64] {
        let mimd = exe.session(Target::Cm5Mimd { nodes }).run()?.into_mimd();
        assert_eq!(
            mimd.finals.final_array("p")?,
            cm2.finals.final_array("p")?,
            "MIMD execution must not change results"
        );
        println!(
            "MIMD, {nodes:>4} nodes: {:>7.2} GFLOPS, {} halo exchanges, {} messages, {} bytes",
            mimd.gflops, mimd.stats.halo_exchanges, mimd.stats.messages, mimd.stats.bytes
        );
    }
    println!("\nidentical results everywhere; only the cost model moved — §5.3.1's porting story");
    Ok(())
}
