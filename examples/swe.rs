//! The paper's §6 evaluation in one command: the shallow-water-equations
//! benchmark on the full 2048-node CM/2, under all three compilers.
//!
//! ```text
//! cargo run --release --example swe [grid] [steps]
//! ```

use f90y_core::{workloads, Compiler, Pipeline, Target};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let grid: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(512);
    let steps: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);
    let nodes = 2048;

    println!("shallow-water equations, {grid}x{grid} grid, {steps} time steps, {nodes} nodes\n");
    let src = workloads::swe_source(grid, steps);

    for pipeline in [Pipeline::StarLisp, Pipeline::Cmf, Pipeline::F90y] {
        let exe = Compiler::new(pipeline).compile(&src)?;
        let run = exe.session(Target::Cm2 { nodes }).run()?.into_cm2();
        println!(
            "{:<24} {:>7.2} GFLOPS   {:>3} computation phases/step group   \
             {:>9} dispatches   {:>9} comm calls",
            pipeline.name(),
            run.gflops,
            exe.compiled.blocks.len(),
            run.stats.dispatches,
            run.stats.comm_calls,
        );
    }

    println!(
        "\n(paper §6: *Lisp fieldwise 1.89, CM Fortran slicewise 2.79, Fortran-90-Y 2.99 \
         GFLOPS — the ordering and rough ratios are the reproduction target; see \
         EXPERIMENTS.md)"
    );
    Ok(())
}
