//! The MIMD acceptance suite: for the paper's workloads, the CM/5 MIMD
//! engine must (a) produce final arrays bit-identical to the CM/2
//! simulator's at every node count, and (b) agree with the analytic
//! CM/5 estimator on how much communication the program performs —
//! the engine counts real messages, the estimator counts trace events,
//! and both see the identical host program.

use f90y_core::{workloads, Compiler, Pipeline, Target, Telemetry};

fn f90y(src: &str) -> f90y_core::Executable {
    Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles")
}

/// Bit-identical finals on SIMD and MIMD targets for N ∈ {4, 16, 64},
/// and comm-call agreement with the estimator's trace within ±10%.
fn assert_mimd_matches(exe: &f90y_core::Executable, arrays: &[&str]) {
    let simd = exe
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("CM/2 run")
        .into_cm2();

    // The estimator's communication count: traced comm events.
    let mut cm = f90y_cm2::Cm2::new(f90y_cm2::Cm2Config::slicewise(64));
    cm.enable_trace();
    f90y_backend::fe::HostExecutor::new(&mut cm)
        .run(&exe.compiled)
        .expect("traced CM/2 run");
    let traced_comm = cm
        .trace()
        .expect("trace enabled")
        .iter()
        .filter(|e| {
            matches!(
                e,
                f90y_cm2::TraceEvent::GridComm { .. }
                    | f90y_cm2::TraceEvent::Router { .. }
                    | f90y_cm2::TraceEvent::Reduce { .. }
            )
        })
        .count() as f64;

    for nodes in [4usize, 16, 64] {
        let mimd = exe
            .session(Target::Cm5Mimd { nodes })
            .run()
            .expect("MIMD run")
            .into_mimd();
        for &name in arrays {
            assert_eq!(
                mimd.finals.final_array(name).unwrap(),
                simd.finals.final_array(name).unwrap(),
                "array '{name}' diverged at {nodes} nodes"
            );
        }
        mimd.stats.verify().expect("stats invariants");
        let measured = mimd.stats.comm_calls as f64;
        assert!(
            (measured - traced_comm).abs() <= 0.10 * traced_comm.max(1.0),
            "comm calls at {nodes} nodes: engine {measured} vs estimator {traced_comm}"
        );
    }
}

#[test]
fn swe_matches_bit_for_bit_at_every_node_count() {
    let exe = f90y(&workloads::swe_source(64, 3));
    assert_mimd_matches(&exe, &["u", "v", "p"]);
}

#[test]
fn fig9_matches_bit_for_bit_at_every_node_count() {
    let exe = f90y(workloads::fig9_source());
    assert_mimd_matches(&exe, &["a", "b", "c"]);
}

#[test]
fn heat_stencil_matches_bit_for_bit() {
    let exe = f90y(&workloads::heat_source(48, 3));
    assert_mimd_matches(&exe, &["t"]);
}

#[test]
fn mimd_telemetry_lands_under_its_own_namespace() {
    let exe = f90y(&workloads::swe_source(32, 2));
    let mut tel = Telemetry::new();
    let run = exe
        .session(Target::Cm5Mimd { nodes: 16 })
        .telemetry(&mut tel)
        .run()
        .expect("MIMD run")
        .into_mimd();
    let report = tel.report();

    assert_eq!(report.counter("mimd.nodes"), Some(16));
    assert_eq!(
        report.counter("mimd.dispatches"),
        Some(run.stats.dispatches)
    );
    assert_eq!(
        report.counter("mimd.comm_calls"),
        Some(run.stats.comm_calls)
    );
    assert_eq!(report.counter("mimd.messages"), Some(run.stats.messages));
    assert!(report.counter("mimd.bytes").unwrap_or(0) > 0);
    assert!(report.gauge("mimd.gflops").unwrap() > 0.0);
    // Per-phase seconds sum to the elapsed gauge (derived identity).
    let phases = report.gauge("mimd.compute_seconds").unwrap()
        + report.gauge("mimd.network_seconds").unwrap()
        + report.gauge("mimd.control_seconds").unwrap()
        + report.gauge("mimd.host_seconds").unwrap();
    let elapsed = report.gauge("mimd.elapsed_seconds").unwrap();
    assert!((phases - elapsed).abs() <= 1e-12 * elapsed.max(1.0));
    // Busiest node at least as busy as the least busy one.
    let max = report.gauge("mimd.node_busy_max_seconds").unwrap();
    let min = report.gauge("mimd.node_busy_min_seconds").unwrap();
    assert!(max >= min && min >= 0.0);
}

#[test]
fn mimd_scaling_shrinks_elapsed_time() {
    // Weak form of the paper's scaling claim: on a fixed-size problem,
    // more nodes must not be slower, and the compute phase must shrink.
    let exe = f90y(&workloads::swe_source(64, 3));
    let small = exe
        .session(Target::Cm5Mimd { nodes: 4 })
        .run()
        .expect("4 nodes")
        .into_mimd();
    let large = exe
        .session(Target::Cm5Mimd { nodes: 64 })
        .run()
        .expect("64 nodes")
        .into_mimd();
    assert!(
        large.stats.compute_seconds < small.stats.compute_seconds,
        "compute must scale down: {} vs {}",
        large.stats.compute_seconds,
        small.stats.compute_seconds
    );
    assert_eq!(small.stats.flops, large.stats.flops, "same work either way");
}
