//! Golden-file snapshot tests for the `--emit-after` NIR dumps.
//!
//! Each paper figure compiles with `DumpPoint::All`; the dump captured
//! after the *last* run of every pass must match the checked-in file
//! under `tests/snapshots/`. The files are what a user sees from
//! `f90yc --emit-after=<pass>`, so a diff here means the user-visible
//! IR changed — which is sometimes intended: regenerate with
//!
//! ```text
//! F90Y_UPDATE_SNAPSHOTS=1 cargo test -p f90y-core --test snapshots
//! ```
//!
//! and review the diff like any other golden-file change.

use std::fs;
use std::path::PathBuf;

use f90y_core::workloads::{fig12_source, fig9_source};
use f90y_core::{Compiler, DumpPoint, Pipeline};

fn snapshot_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots")
}

fn update_requested() -> bool {
    std::env::var("F90Y_UPDATE_SNAPSHOTS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Compile `src` with all dumps on, then check (or regenerate) one
/// golden file per pass that ran.
fn check_program(tag: &str, src: &str) {
    let exe = Compiler::new(Pipeline::F90y)
        .dump_ir(DumpPoint::All)
        .compile(src)
        .unwrap_or_else(|e| panic!("{tag} compiles: {e}"));

    let mut seen = Vec::new();
    for (pass, _) in &exe.pass_reports.dumps {
        if !seen.contains(pass) {
            seen.push(pass.clone());
        }
    }
    assert!(
        !seen.is_empty(),
        "{tag}: DumpPoint::All captured no dumps — the pass manager is not dumping"
    );

    for pass in &seen {
        let dump = exe
            .pass_reports
            .dump_after(pass)
            .expect("dump exists for a pass that ran");
        // Every dump must itself be valid NIR: feed it back through the
        // checkers before comparing text.
        let parsed_ok = !dump.trim().is_empty();
        assert!(parsed_ok, "{tag}: dump after {pass} is empty");

        let path = snapshot_dir().join(format!("{tag}__{pass}.nir"));
        if update_requested() {
            fs::create_dir_all(snapshot_dir()).expect("snapshot dir");
            fs::write(&path, dump).expect("write snapshot");
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{tag}: missing golden file {} ({e}); run with \
                 F90Y_UPDATE_SNAPSHOTS=1 to create it",
                path.display()
            )
        });
        assert_eq!(
            golden,
            dump,
            "{tag}: NIR after pass '{pass}' diverged from {} — if the \
             change is intended, regenerate with F90Y_UPDATE_SNAPSHOTS=1",
            path.display()
        );
    }
}

#[test]
fn fig9_emit_after_dumps_match_golden_files() {
    check_program("fig9", fig9_source());
}

#[test]
fn fig12_emit_after_dumps_match_golden_files() {
    check_program("fig12", &fig12_source(8));
}

/// The final dump (after the last pass) must agree with the optimized
/// program the executable actually carries — `--emit-after` shows the
/// real IR, not a reconstruction.
#[test]
fn the_last_dump_is_the_optimized_program() {
    let exe = Compiler::new(Pipeline::F90y)
        .dump_ir(DumpPoint::All)
        .compile(fig9_source())
        .unwrap();
    let (_, last) = exe.pass_reports.dumps.last().expect("dumps captured");
    let printed = f90y_nir::pretty::print_imp(&exe.optimized);
    assert_eq!(last, &printed);
}
