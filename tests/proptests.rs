//! Property-based tests over the whole pipeline.
//!
//! The central property is *translation validation on random programs*:
//! any generated data-parallel program must produce identical results
//! from (a) the NIR reference evaluator, (b) the fully optimized
//! Fortran-90-Y pipeline on the simulated CM/2, and (c) both baseline
//! pipelines — exercising lowering, every transformation, the PE
//! compiler's register allocator, and the machine in one sweep.

use proptest::prelude::*;

use f90y_core::{Compiler, Pipeline, Target};
use f90y_nir::eval::Evaluator;
use f90y_nir::SectionRange;
use f90y_nir::Shape;

// ---------------------------------------------------------------------
// Random program generation (source level)
// ---------------------------------------------------------------------

/// A random arithmetic expression over arrays a, b, c, scalar s and the
/// FORALL-style coordinates. Division is avoided (denominator zero) and
/// `**` is limited to squares to keep values tame.
fn arb_expr(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("s".to_string()),
        (1i32..9).prop_map(|k| k.to_string()),
        (1i32..5).prop_map(|k| format!("{k}.5")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} + {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} - {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("({x} * {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("MAX({x}, {y})")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("MIN({x}, {y})")),
            inner.clone().prop_map(|x| format!("(-{x})")),
            inner.clone().prop_map(|x| format!("ABS({x})")),
            inner.clone().prop_map(|x| format!("CSHIFT({x} + a, 1, 1)")),
        ]
    })
}

/// One random statement: plain assignment, masked WHERE, or a strided
/// section self-assignment.
fn arb_stmt() -> impl Strategy<Value = String> {
    let target = prop_oneof![Just("a"), Just("b"), Just("c")];
    prop_oneof![
        (target.clone(), arb_expr(2)).prop_map(|(t, e)| format!("{t} = {e}\n")),
        (target.clone(), arb_expr(1), arb_expr(1), 0i32..6)
            .prop_map(|(t, e, m, k)| format!("WHERE ({m} > {k}.0) {t} = {e}\n")),
        (target, arb_expr(1))
            .prop_map(|(t, e)| { format!("{t}(1:15:2) = {e}(1:15:2)\n", e = e_guard(&e)) }),
    ]
}

/// Section RHS must itself be a plain variable for a section-aligned
/// statement; non-variables fall back to `a`.
fn e_guard(e: &str) -> &str {
    match e {
        "a" | "b" | "c" => e,
        _ => "a",
    }
}

fn arb_program() -> impl Strategy<Value = String> {
    (proptest::collection::vec(arb_stmt(), 1..6), 1i32..9).prop_map(|(stmts, s0)| {
        let mut src = String::from("REAL a(16), b(16), c(16)\nREAL s\n");
        src.push_str(&format!("s = {s0}.25\n"));
        src.push_str("FORALL (i=1:16) a(i) = MOD(i*3, 7) - 3\n");
        src.push_str("FORALL (i=1:16) b(i) = MOD(i*5, 11) - 5\n");
        src.push_str("FORALL (i=1:16) c(i) = i - 8\n");
        for st in stmts {
            src.push_str(&st);
        }
        src
    })
}

/// Remove clause `clause` of the statement whose pre-order id is
/// `target`, mirroring the numbering of [`f90y_analysis::StmtIndex`]
/// (which follows `Imp::walk` exactly).
fn remove_clause(imp: &mut f90y_nir::Imp, target: usize, clause: usize, counter: &mut usize) {
    use f90y_nir::Imp;
    let my_id = *counter;
    *counter += 1;
    if my_id == target {
        if let Imp::Move(cs) = imp {
            cs.remove(clause);
        }
        return;
    }
    match imp {
        Imp::Program(b)
        | Imp::Do(_, _, b)
        | Imp::WithDecl(_, b)
        | Imp::WithDomain(_, _, b)
        | Imp::While(_, b) => remove_clause(b, target, clause, counter),
        Imp::Sequentially(xs) | Imp::Concurrently(xs) => {
            for x in xs {
                remove_clause(x, target, clause, counter);
            }
        }
        Imp::IfThenElse(_, t, e) => {
            remove_clause(t, target, clause, counter);
            remove_clause(e, target, clause, counter);
        }
        Imp::Move(_) | Imp::Skip => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The centrepiece: random programs agree between the evaluator and
    /// all three compiled pipelines.
    #[test]
    fn random_programs_translation_validate(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("generated programs parse");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            // Some generated programs are legitimately rejected (e.g.
            // a masked section target); rejection is fine, miscompiling
            // is not.
            Err(_) => return Ok(()),
        };
        let mut ev = Evaluator::new();
        ev.run(&nir).expect("reference evaluation succeeds");

        for pipeline in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
            let exe = Compiler::new(pipeline).compile(&src).expect("compiles");
            let run = exe
                .session(Target::Cm2 { nodes: 8 })
                .run()
                .expect("runs")
                .into_cm2();
            for name in ["a", "b", "c"] {
                let expect = ev.final_array_f64(name).expect("captured");
                let got = run.finals.final_array(name).expect("captured");
                for (i, (e, g)) in expect.iter().zip(&got).enumerate() {
                    prop_assert!(
                        (e - g).abs() <= 1e-9 * e.abs().max(1.0),
                        "{}: {name}[{i}] evaluator={e} machine={g}\n{src}",
                        pipeline.name()
                    );
                }
            }
        }
    }

    /// The lexer and parser never panic, whatever bytes arrive.
    #[test]
    fn frontend_is_total(src in "\\PC*") {
        let _ = f90y_frontend::parse(&src);
    }

    /// Shape geometry: the point iterator agrees with the size formula,
    /// and conformance is reflexive and symmetric.
    #[test]
    fn shape_points_match_size(
        extents in proptest::collection::vec((0i64..6, -3i64..4), 1..4)
    ) {
        let dims: Vec<Shape> = extents
            .iter()
            .map(|&(len, lo)| Shape::Interval(lo, lo + len - 1))
            .collect();
        let s = Shape::Product(dims);
        prop_assert_eq!(s.points().count(), s.size());
        prop_assert!(s.conforms(&s));
    }

    /// Section disjointness is symmetric and sound: if `disjoint`, no
    /// index is in both.
    #[test]
    fn section_disjointness_is_sound(
        lo1 in 1i64..20, len1 in 0i64..20, st1 in 1i64..5,
        lo2 in 1i64..20, len2 in 0i64..20, st2 in 1i64..5,
    ) {
        let s1 = SectionRange::strided(lo1, lo1 + len1, st1);
        let s2 = SectionRange::strided(lo2, lo2 + len2, st2);
        prop_assert_eq!(s1.disjoint(&s2), s2.disjoint(&s1));
        if s1.disjoint(&s2) {
            for i in lo1..=(lo1 + len1) {
                prop_assert!(
                    !(s1.contains(i) && s2.contains(i)),
                    "{s1} and {s2} share {i}"
                );
            }
        }
    }

    /// The full default pass list under `--verify-passes` never trips
    /// the inter-pass checks on a random well-formed program: every
    /// pass preserves static well-formedness and final values, and the
    /// verifier must agree.
    #[test]
    fn verified_pipeline_never_trips_on_random_programs(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("parses");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            Err(_) => return Ok(()),
        };
        let result = f90y_transform::default_passes().verify(true).run(&nir);
        prop_assert!(
            result.is_ok(),
            "inter-pass verification fired on a correct pipeline: {}\n{src}",
            result.err().map(|e| e.to_string()).unwrap_or_default()
        );
        let (_, report) = result.unwrap();
        prop_assert!(report.verified);
    }

    /// `dce-temps` never changes what the evaluator computes: running
    /// it after the rest of the pipeline leaves every final array
    /// bit-identical.
    #[test]
    fn dce_temps_preserves_evaluator_results(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("parses");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            Err(_) => return Ok(()),
        };
        let (pre, _) = f90y_transform::PassManager::from_names(&[
            "comm-split", "comm-cse", "mask-pad", "blocking",
        ])
        .expect("known names")
        .run(&nir)
        .expect("optimizes");
        let (post, report) = f90y_transform::PassManager::from_names(&["dce-temps"])
            .expect("known name")
            .run(&pre)
            .expect("dce runs");

        let mut ev_pre = Evaluator::new();
        ev_pre.run(&pre).expect("pre-dce program evaluates");
        let mut ev_post = Evaluator::new();
        ev_post.run(&post).expect("post-dce program evaluates");
        for name in ["a", "b", "c"] {
            let before = ev_pre.final_array_f64(name).expect("captured");
            let after = ev_post.final_array_f64(name).expect("captured");
            prop_assert_eq!(
                before, after,
                "dce-temps changed {} (deleted {} temps)\n{}",
                name, report.rewrites_of("dce-temps"), src
            );
        }
    }

    /// The blocking transformation never duplicates computation, and
    /// the cleanup passes (comm-cse, dce-temps) only ever remove
    /// clauses.
    #[test]
    fn transforms_conserve_clauses(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("parses");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            Err(_) => return Ok(()),
        };
        let (optimized, report) = f90y_transform::optimize_with_report(&nir).expect("optimizes");
        let count_clauses = |imp: &f90y_nir::Imp| {
            let mut n = 0usize;
            imp.walk(&mut |i| {
                if let f90y_nir::Imp::Move(cs) = i {
                    n += cs.len();
                }
            });
            n
        };
        // comm_split adds one clause per hoisted temporary; blocking
        // must not change the count further, while comm-cse and
        // dce-temps strictly remove. Compare against the per-statement
        // pipeline, which runs the same comm_split and mask padding but
        // none of the cleanups.
        let (per_stmt, _) = f90y_transform::per_statement_passes()
            .run(&nir)
            .expect("optimizes");
        let full = count_clauses(&optimized);
        let per = count_clauses(&per_stmt);
        prop_assert!(
            full <= per,
            "full pipeline produced {} clauses, per-statement {}", full, per
        );
        let removed = report.comm_merged + report.temps_deleted;
        prop_assert!(
            per - full <= removed,
            "clause deficit {} exceeds what cse/dce account for ({})",
            per - full, removed
        );
    }

    /// Every store the liveness analysis flags as `W-DEADSTORE` really
    /// is dead: deleting the flagged clause (one at a time) leaves the
    /// evaluator's final arrays and scalars bit-identical.
    #[test]
    fn flagged_dead_stores_are_deletable(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("parses");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            Err(_) => return Ok(()),
        };
        let index = f90y_analysis::StmtIndex::of(&nir);
        let live = f90y_analysis::Liveness::of(&nir, &index);
        if live.dead_stores.is_empty() {
            return Ok(());
        }
        let mut ev_ref = Evaluator::new();
        ev_ref.run(&nir).expect("reference evaluation succeeds");

        for ds in &live.dead_stores {
            let mut pruned = nir.clone();
            let mut counter = 0usize;
            remove_clause(&mut pruned, ds.stmt, ds.clause, &mut counter);
            let mut ev = Evaluator::new();
            ev.run(&pruned).expect("pruned program evaluates");
            for name in ["a", "b", "c"] {
                prop_assert_eq!(
                    ev_ref.final_array_f64(name).expect("captured"),
                    ev.final_array_f64(name).expect("captured"),
                    "deleting flagged dead store to '{}' (stmt {}) changed {}\n{}",
                    ds.var, ds.stmt, name, src
                );
            }
            prop_assert_eq!(
                ev_ref.final_scalar_f64("s").expect("captured"),
                ev.final_scalar_f64("s").expect("captured"),
                "deleting flagged dead store to '{}' (stmt {}) changed s\n{}",
                ds.var, ds.stmt, src
            );
        }
    }

    /// The liveness-driven `dce-temps` is at least as strong as the old
    /// syntactic scan: every temp the fixpoint of "no remaining reads"
    /// finds faint is also faint under the dataflow analysis.
    #[test]
    fn liveness_dce_subsumes_the_syntactic_scan(src in arb_program()) {
        let unit = f90y_frontend::parse(&src).expect("parses");
        let nir = match f90y_lowering::lower(&unit) {
            Ok(n) => n,
            Err(_) => return Ok(()),
        };
        let mut body = match f90y_transform::ProgramBody::decompose(&nir) {
            Ok(b) => b,
            Err(_) => return Ok(()),
        };
        f90y_transform::comm_split::run(&mut body).expect("comm-split runs");
        f90y_transform::comm_cse::run(&mut body).expect("comm-cse runs");
        let syntactic = f90y_transform::dce::dead_temps_syntactic(&body);
        let ghosts: std::collections::HashSet<String> =
            body.temps.iter().cloned().collect();
        let faint = f90y_analysis::faint_temps(&body.recompose(), &ghosts);
        prop_assert!(
            syntactic.is_subset(&faint),
            "syntactic scan found dead temps the liveness analysis kept: {:?}\n{}",
            syntactic.difference(&faint).collect::<Vec<_>>(), src
        );
    }
}
