//! The plan↔trace reconciliation suite (DESIGN.md §16): the static
//! communication-plan prediction must equal the machine's dynamic
//! counters **bit-exactly** on every shipped workload, under every
//! pipeline, at every node count, on every target.
//!
//! The static side never runs anything: [`Executable::predict`] folds
//! the backend's data-free interpretation of the compiled host program
//! into per-target counters. The dynamic side is the machine itself,
//! plus the flight recorder — on the CM/5 the predicted message count
//! is also held to the recorder's `Send` event count, so the
//! prediction, the counters and the trace all agree or the suite
//! fails naming the divergent counter.

use f90y_core::{workloads, Compiler, Pipeline, Target, TargetPrediction, TraceBuffer};

const PIPELINES: [Pipeline; 3] = [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp];
const NODE_COUNTS: [usize; 3] = [4, 16, 64];

/// Compile `src` under every pipeline and hold the static prediction
/// equal to the dynamic counters on every target at every node count.
fn assert_plan_reconciles(name: &str, src: &str) {
    for pipeline in PIPELINES {
        let exe = Compiler::new(pipeline)
            .compile(src)
            .unwrap_or_else(|e| panic!("{name} fails to compile under {}: {e}", pipeline.name()));
        for nodes in NODE_COUNTS {
            let ctx = format!("{name} / {} / {nodes} nodes", pipeline.name());

            let p = exe
                .predict(Target::Cm2 { nodes })
                .unwrap_or_else(|e| panic!("{ctx}: no exact static plan: {e}"));
            let r = exe
                .session(Target::Cm2 { nodes })
                .run()
                .expect("CM/2 run")
                .into_cm2();
            assert_eq!(
                p,
                TargetPrediction::Cm2 {
                    dispatches: r.stats.dispatches,
                    comm_calls: r.stats.comm_calls,
                    reductions: r.stats.reductions,
                },
                "{ctx}: CM/2 plan diverged from the machine"
            );

            let p = exe
                .predict(Target::Cm5Mimd { nodes })
                .unwrap_or_else(|e| panic!("{ctx}: no exact static plan: {e}"));
            let mut buf = TraceBuffer::new();
            let r = exe
                .session(Target::Cm5Mimd { nodes })
                .trace(&mut buf)
                .run()
                .expect("CM/5 run")
                .into_mimd();
            assert_eq!(
                p,
                TargetPrediction::Cm5 {
                    dispatches: r.stats.dispatches,
                    comm_calls: r.stats.comm_calls,
                    halo_exchanges: r.stats.halo_exchanges,
                    router_batches: r.stats.router_batches,
                    reductions: r.stats.reductions,
                    supersteps: r.stats.supersteps,
                    messages: r.stats.messages,
                },
                "{ctx}: CM/5 plan diverged from the machine"
            );
            // The third witness: the flight recorder's Send events.
            let trace = buf.trace.expect("trace captured");
            assert_eq!(
                trace.sends() as u64,
                r.stats.messages,
                "{ctx}: flight recorder diverged from the counter"
            );
            if let TargetPrediction::Cm5 { messages, .. } = p {
                assert_eq!(
                    messages,
                    trace.sends() as u64,
                    "{ctx}: static plan diverged from the flight recorder"
                );
            }

            let p = exe
                .predict(Target::Accel { nodes })
                .unwrap_or_else(|e| panic!("{ctx}: no exact static plan: {e}"));
            let r = exe
                .session(Target::Accel { nodes })
                .run()
                .expect("Accel run")
                .into_accel();
            assert_eq!(
                p,
                TargetPrediction::Accel {
                    kernel_launches: r.stats.kernel_launches,
                    h2d_transfers: r.stats.h2d_transfers,
                    d2h_transfers: r.stats.d2h_transfers,
                    comm_calls: r.stats.comm_calls,
                    reductions: r.stats.reductions,
                },
                "{ctx}: accelerator plan diverged from the machine"
            );
        }
    }
}

#[test]
fn swe_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("swe", &workloads::swe_source(8, 2));
}

#[test]
fn fig9_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("fig9", workloads::fig9_source());
}

#[test]
fn fig12_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("fig12", &workloads::fig12_source(8));
}

#[test]
fn heat_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("heat", &workloads::heat_source(8, 2));
}

#[test]
fn life_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("life", &workloads::life_source(8, 2));
}

#[test]
fn redblack_plan_reconciles_with_every_machine() {
    assert_plan_reconciles("redblack", &workloads::redblack_source(8, 2));
}
