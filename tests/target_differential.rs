//! The three-way target differential: for the paper's workloads, the
//! NIR reference evaluator, the CM/2 SIMD simulator, the CM/5 MIMD
//! engine, and the accelerator model must all compute bit-identical
//! finals at every node count. The targets differ in *everything the
//! manifest describes* — clocks, topology, launch and transfer costs —
//! and in nothing the program can observe.
//!
//! The fingerprint here is the serve protocol's FNV-1a over the finals
//! bytes (inlined to keep this suite free of a serve dev-dependency),
//! so equality below is exactly the equality `f90y-serve` clients see.

use f90y_core::{workloads, Compiler, Pipeline, Target};

fn f90y(src: &str) -> f90y_core::Executable {
    Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles")
}

/// FNV-1a 64 over a run's finals — `f90y_serve::engine::
/// finals_fingerprint` replicated byte for byte (sorted names, NUL
/// separators, IEEE-754 bit patterns little-endian), so equality here
/// is exactly the fingerprint equality serve clients observe.
fn fingerprint(finals: &f90y_backend::fe::HostRun) -> String {
    let mut names: Vec<&String> = finals.finals().keys().collect();
    names.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for name in names {
        eat(name.as_bytes());
        eat(&[0]);
        match &finals.finals()[name] {
            f90y_backend::fe::Final::Array(values) => {
                for v in values {
                    eat(&v.to_bits().to_le_bytes());
                }
            }
            f90y_backend::fe::Final::Scalar(v) => eat(&v.to_bits().to_le_bytes()),
        }
        eat(&[0]);
    }
    format!("fnv1a64:{hash:016x}")
}

/// Run one workload on all three machine targets at N ∈ {4, 16, 64},
/// plus the reference evaluator, and assert one common fingerprint.
fn assert_three_way(exe: &f90y_core::Executable, arrays: &[&str]) {
    // The machine-independent reference: the NIR evaluator.
    exe.validate().expect("reference evaluator agrees");

    let reference = exe
        .session(Target::Cm2 { nodes: 64 })
        .run()
        .expect("CM/2 run")
        .into_cm2();
    let want = fingerprint(&reference.finals);

    for nodes in [4usize, 16, 64] {
        let cm2 = exe
            .session(Target::Cm2 { nodes })
            .run()
            .expect("CM/2 run")
            .into_cm2();
        let mimd = exe
            .session(Target::Cm5Mimd { nodes })
            .run()
            .expect("CM/5 run")
            .into_mimd();
        let accel = exe
            .session(Target::Accel { nodes })
            .run()
            .expect("Accel run")
            .into_accel();

        for (target, finals) in [
            ("cm2", &cm2.finals),
            ("cm5", &mimd.finals),
            ("accel", &accel.finals),
        ] {
            for &name in arrays {
                assert_eq!(
                    finals.final_array(name).unwrap(),
                    reference.finals.final_array(name).unwrap(),
                    "array '{name}' diverged on {target} at {nodes} nodes"
                );
            }
            assert_eq!(
                fingerprint(finals),
                want,
                "fingerprint diverged on {target} at {nodes} nodes"
            );
        }
        accel.stats.verify().expect("accel stats invariants");
        assert!(
            accel.stats.kernel_launches > 0,
            "the accelerator must run its arrays through kernel launches"
        );
        assert!(
            accel.stats.d2h_transfers > 0,
            "reading finals back must cross the bus"
        );
    }
}

#[test]
fn swe_finals_agree_across_all_targets() {
    let exe = f90y(&workloads::swe_source(64, 3));
    assert_three_way(&exe, &["u", "v", "p"]);
}

#[test]
fn fig9_finals_agree_across_all_targets() {
    let exe = f90y(workloads::fig9_source());
    assert_three_way(&exe, &["a", "b", "c"]);
}

#[test]
fn heat_finals_agree_across_all_targets() {
    let exe = f90y(&workloads::heat_source(48, 3));
    assert_three_way(&exe, &["t"]);
}

#[test]
fn accel_costs_differ_even_when_answers_agree() {
    // Same answers, different machine: the accelerator's clock must
    // show launch and transfer time no other target reports.
    let exe = f90y(&workloads::heat_source(32, 2));
    let accel = exe
        .session(Target::Accel { nodes: 16 })
        .run()
        .expect("Accel run")
        .into_accel();
    assert!(accel.stats.launch_cycles > 0);
    assert!(accel.stats.transfer_cycles > 0);
    assert!(accel.stats.h2d_bytes + accel.stats.d2h_bytes > 0);
    assert!(accel.elapsed_seconds > 0.0);
}
