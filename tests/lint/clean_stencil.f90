PROGRAM clean_stencil
REAL t(16,16), tnew(16,16)
REAL kappa
kappa = 0.1
FORALL (i=1:16, j=1:16) t(i,j) = i*j
! The canonical clean idiom: shifts of t land in a distinct array, so
! no statement reads what it writes.
tnew = t + kappa*(CSHIFT(t, DIM=1, SHIFT=1) + CSHIFT(t, DIM=1, SHIFT=-1) - 2.0*t)
t = tnew
END PROGRAM clean_stencil
