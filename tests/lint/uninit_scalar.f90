PROGRAM uninit_scalar
REAL a(16)
REAL s, t
! s is read before any path assigns it (arrays are zero-initialised
! by the language model, scalars reported).
t = s + 1.0
a = t
END PROGRAM uninit_scalar
