PROGRAM alltoall
REAL a(16,16), b(16,16)
FORALL (i=1:16, j=1:16) a(i,j) = i - j
! TRANSPOSE is all-to-all communication: on a hypercube/mesh topology
! every element crosses the general router (W-ALLTOALL). The same
! program is quiet under a fat-tree target.
b = TRANSPOSE(a)
END PROGRAM alltoall
