PROGRAM race_section
REAL a(32)
FORALL (i=1:32) a(i) = i
! A misaligned section copy: the written elements 1:31 overlap the
! read elements 2:32 without being identical, so the parallel move
! reads values the same statement overwrites.
a(1:31) = a(2:32)
END PROGRAM race_section
