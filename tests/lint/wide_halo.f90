PROGRAM wide_halo
REAL a(16,16), b(16,16)
FORALL (i=1:16, j=1:16) a(i,j) = i + j
! The same array and axis move with width 1 and width 2: the 2-wide
! halo could ride the 1-wide exchange and usually means a missed
! stencil restructuring (W-WIDE-HALO).
b = CSHIFT(a, DIM=1, SHIFT=1) + CSHIFT(a, DIM=1, SHIFT=2)
END PROGRAM wide_halo
