PROGRAM redundant_comm
REAL a(16,16), b(16,16), c(16,16)
FORALL (i=1:16, j=1:16) a(i,j) = i * j
! 'a' is shifted once outside the loop, then re-shifted identically
! inside it with no intervening write to 'a': the inner exchange moves
! bytes the outer one already moved (W-REDUNDANT-COMM).
b = CSHIFT(a, DIM=1, SHIFT=1)
DO 10 k = 1, 4
  c = c + CSHIFT(a, DIM=1, SHIFT=1)
10 CONTINUE
END PROGRAM redundant_comm
