PROGRAM race_where_shift
REAL a(32,32)
FORALL (i=1:32, j=1:32) a(i,j) = i - j
! The shift race hides under a mask: the masked update still reads
! neighbours the same parallel statement may overwrite.
WHERE (a > 0.0)
  a = CSHIFT(a, DIM=2, SHIFT=-1)
END WHERE
END PROGRAM race_where_shift
