PROGRAM deadstore
REAL x, y
! The first store to x is never read before the second one kills it.
x = 1.0
x = 2.0
y = x
END PROGRAM deadstore
