PROGRAM race_self_shift
REAL a(32,32)
FORALL (i=1:32, j=1:32) a(i,j) = i + j
! A parallel assignment whose read set reaches its own write set
! through a circular shift: every element reads a neighbour that the
! same statement overwrites.
a = CSHIFT(a, DIM=1, SHIFT=1)
END PROGRAM race_self_shift
