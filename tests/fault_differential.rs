//! The fault-injection acceptance suite: deterministic fault plans
//! within their recovery budgets must be *invisible* in the results —
//! final arrays bit-identical to a fault-free run at every node count —
//! while exhausted budgets must surface as a typed
//! [`RunError::Unrecoverable`], never as a hang or silent corruption.

use f90y_core::{workloads, Compiler, FaultPlan, Pipeline, RunError, Target, Telemetry};

fn f90y(src: &str) -> f90y_core::Executable {
    Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles")
}

/// A hostile but in-budget plan: 10% drops, 3% duplicates, 2% delays,
/// one node stalled, and — on partitions that have node 1 — two kills.
fn hostile_plan(seed: u64, nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed)
        .drop_per_mille(100)
        .duplicate_per_mille(30)
        .delay_per_mille(20)
        .stall(2, 0, 50.0e-6);
    if nodes > 1 {
        plan = plan.kill(3, 1).kill(7, 0);
    }
    plan
}

/// Finals bit-identical between the fault-free run and a hostile
/// in-budget fault run, for N ∈ {4, 16, 64}.
fn assert_faults_invisible(exe: &f90y_core::Executable, arrays: &[&str]) {
    for nodes in [4usize, 16, 64] {
        let clean = exe
            .session(Target::Cm5Mimd { nodes })
            .run()
            .expect("fault-free run")
            .into_mimd();
        let faulty = exe
            .session(Target::Cm5Mimd { nodes })
            .faults(hostile_plan(0xBAD5EED, nodes))
            .run()
            .expect("fault run recovers in budget")
            .into_mimd();
        for &name in arrays {
            assert_eq!(
                faulty.finals.final_array(name).unwrap(),
                clean.finals.final_array(name).unwrap(),
                "array '{name}' diverged under faults at {nodes} nodes"
            );
        }
        faulty.stats.verify().expect("stats invariants");
        assert!(
            faulty.stats.faults_injected() > 0,
            "the plan must actually inject something at {nodes} nodes"
        );
        assert_eq!(faulty.stats.node_kills, 2, "both kills fire");
        assert_eq!(faulty.stats.node_restarts, 2, "every kill is recovered");
        assert!(
            faulty.stats.checkpoints > 0,
            "kill plans checkpoint every superstep"
        );
        assert!(faulty.stats.recovery_seconds > 0.0);
        // Reliability costs time, never correctness: the modelled clock
        // must move strictly forward relative to the clean run.
        assert!(faulty.elapsed_seconds > clean.elapsed_seconds);
    }
}

#[test]
fn swe_finals_survive_hostile_fault_plans() {
    let exe = f90y(&workloads::swe_source(64, 3));
    assert_faults_invisible(&exe, &["u", "v", "p"]);
}

#[test]
fn fig9_finals_survive_hostile_fault_plans() {
    let exe = f90y(workloads::fig9_source());
    assert_faults_invisible(&exe, &["a", "b", "c"]);
}

#[test]
fn heat_finals_survive_hostile_fault_plans() {
    let exe = f90y(&workloads::heat_source(48, 3));
    assert_faults_invisible(&exe, &["t"]);
}

#[test]
fn fault_telemetry_is_deterministic_and_namespaced() {
    let exe = f90y(&workloads::swe_source(32, 2));
    let observe = || {
        let mut tel = Telemetry::new();
        exe.session(Target::Cm5Mimd { nodes: 16 })
            .faults(hostile_plan(42, 16))
            .telemetry(&mut tel)
            .run()
            .expect("fault run");
        tel.report()
    };
    let a = observe();
    let b = observe();
    for key in [
        "mimd.fault.injected",
        "mimd.fault.msgs_dropped",
        "mimd.fault.msgs_duplicated",
        "mimd.fault.msgs_delayed",
        "mimd.fault.retries",
        "mimd.fault.dedup_suppressed",
        "mimd.fault.node_kills",
        "mimd.fault.node_restarts",
        "mimd.fault.node_stalls",
        "mimd.fault.checkpoints",
        "mimd.fault.checkpoint_bytes",
    ] {
        assert!(a.counter(key).is_some(), "{key} must be emitted");
        assert_eq!(
            a.counter(key),
            b.counter(key),
            "{key} must be identical across identical runs"
        );
    }
    assert!(a.counter("mimd.fault.injected").unwrap() > 0);
    assert_eq!(
        a.counter("mimd.fault.retries"),
        a.counter("mimd.fault.msgs_dropped"),
        "a completed run retries every loss exactly once"
    );
    assert_eq!(
        a.counter("mimd.fault.dedup_suppressed"),
        a.counter("mimd.fault.msgs_duplicated"),
        "dedup absorbs every duplicate"
    );
    assert_eq!(
        a.gauge("mimd.fault.recovery_seconds"),
        b.gauge("mimd.fault.recovery_seconds")
    );
}

#[test]
fn exhausted_retry_budget_is_a_typed_error_not_a_hang() {
    let exe = f90y(&workloads::swe_source(32, 2));
    // Every message dropped, zero retries allowed: unrecoverable.
    let err = exe
        .session(Target::Cm5Mimd { nodes: 4 })
        .faults(FaultPlan::seeded(1).drop_per_mille(1000).retries(0))
        .run()
        .expect_err("cannot deliver anything");
    match err {
        RunError::Unrecoverable(msg) => {
            assert!(
                msg.contains("retry budget"),
                "error should blame the retry budget: {msg}"
            );
        }
        other => panic!("expected RunError::Unrecoverable, got: {other}"),
    }
}

#[test]
fn exhausted_restart_budget_is_a_typed_error_not_a_hang() {
    let exe = f90y(&workloads::swe_source(32, 2));
    // Three kills against a budget of two restarts.
    let err = exe
        .session(Target::Cm5Mimd { nodes: 4 })
        .faults(
            FaultPlan::seeded(1)
                .kill(1, 0)
                .kill(2, 1)
                .kill(3, 2)
                .restarts(2),
        )
        .run()
        .expect_err("third kill exceeds the restart budget");
    match err {
        RunError::Unrecoverable(msg) => {
            assert!(
                msg.contains("restart"),
                "error should blame the restart budget: {msg}"
            );
        }
        other => panic!("expected RunError::Unrecoverable, got: {other}"),
    }
}
