//! Host-parallel determinism suite: `Session::host_threads(n)` must be
//! a pure wall-clock knob. For the paper's workloads, every observable
//! of a CM/5 MIMD run — final array bits, the `mimd.messages` telemetry
//! counter and the flight-recorder trace digest — must be bit-identical
//! across host thread counts, at every node count, with and without a
//! hostile (but in-budget) fault plan. The shard-per-worker engine
//! earns this by keeping superstep compute pure and merging shard
//! results and messages at the barrier in canonical sender order
//! (DESIGN.md §14).

use f90y_core::{workloads, Compiler, FaultPlan, Pipeline, Target, Telemetry, TraceBuffer};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const NODE_COUNTS: [usize; 2] = [16, 64];

fn f90y(src: &str) -> f90y_core::Executable {
    Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles")
}

/// A hostile but in-budget fault plan: drops, duplicates and delays
/// well inside the default retry budget, so the run completes and must
/// complete *identically* at any host-thread count.
fn hostile_plan() -> FaultPlan {
    FaultPlan::seeded(0xDE7E_12A1)
        .drop_per_mille(80)
        .duplicate_per_mille(30)
        .delay_per_mille(20)
}

/// Everything a client can observe about a MIMD run: the named finals
/// as exact bit patterns, the message counter, and the trace digest.
fn observe(
    exe: &f90y_core::Executable,
    nodes: usize,
    threads: usize,
    faults: Option<FaultPlan>,
    arrays: &[&str],
) -> (Vec<Vec<u64>>, u64, String) {
    let mut tel = Telemetry::new();
    let mut buf = TraceBuffer::new();
    let mut session = exe
        .session(Target::Cm5Mimd { nodes })
        .host_threads(threads)
        .telemetry(&mut tel)
        .trace(&mut buf);
    if let Some(plan) = faults {
        session = session.faults(plan);
    }
    let run = session.run().expect("MIMD run").into_mimd();
    let finals: Vec<Vec<u64>> = arrays
        .iter()
        .map(|&name| {
            run.finals
                .final_array(name)
                .expect("final array")
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();
    let messages = tel
        .report()
        .counter("mimd.messages")
        .expect("mimd.messages counter");
    let digest = buf.trace.expect("trace captured").digest();
    (finals, messages, digest)
}

/// The core claim: sweeping `host_threads` over [`THREAD_COUNTS`] at
/// every node count in [`NODE_COUNTS`], with and without faults,
/// changes nothing observable.
fn assert_thread_invariant(source: &str, arrays: &[&str], what: &str) {
    let exe = f90y(source);
    for nodes in NODE_COUNTS {
        for faults in [false, true] {
            let plan = || faults.then(hostile_plan);
            let baseline = observe(&exe, nodes, THREAD_COUNTS[0], plan(), arrays);
            assert!(baseline.1 > 0, "{what}: no messages at {nodes} nodes");
            for &threads in &THREAD_COUNTS[1..] {
                let observed = observe(&exe, nodes, threads, plan(), arrays);
                assert_eq!(
                    observed, baseline,
                    "{what}: host_threads={threads} diverged from sequential \
                     at {nodes} nodes (faults: {faults})"
                );
            }
        }
    }
}

#[test]
fn swe_is_thread_invariant() {
    assert_thread_invariant(&workloads::swe_source(64, 2), &["u", "v", "p"], "SWE 64x64");
}

#[test]
fn fig9_stencil_is_thread_invariant() {
    assert_thread_invariant(workloads::fig9_source(), &["a", "b", "c"], "Fig. 9 stencil");
}

#[test]
fn heat_is_thread_invariant() {
    assert_thread_invariant(&workloads::heat_source(64, 2), &["t"], "heat 64x64");
}

/// The faulted runs above share one seed; this check varies the plan
/// shape (kills force checkpoint/restore) to pin down that recovery
/// replay is also thread-count-invariant.
#[test]
fn recovery_replay_is_thread_invariant() {
    let exe = f90y(&workloads::swe_source(64, 2));
    let plan = || {
        FaultPlan::seeded(7)
            .drop_per_mille(50)
            .kill(2, 1)
            .restarts(2)
    };
    let baseline = observe(&exe, 16, 1, Some(plan()), &["u", "v", "p"]);
    for threads in [2usize, 8] {
        let observed = observe(&exe, 16, threads, Some(plan()), &["u", "v", "p"]);
        assert_eq!(
            observed, baseline,
            "checkpoint/restore replay diverged at host_threads={threads}"
        );
    }
}
