//! Repo-level integration tests: the full pipeline across crates, the
//! paper's worked examples end-to-end, and cross-pipeline agreement.

use f90y_core::{workloads, Compiler, Pipeline, Target};

fn f90y(src: &str) -> f90y_core::Executable {
    Compiler::new(Pipeline::F90y)
        .compile(src)
        .expect("compiles")
}

// ---------------------------------------------------------------------
// The paper's worked examples, end to end
// ---------------------------------------------------------------------

#[test]
fn section21_f77_and_f90_forms_agree_on_the_machine() {
    let e77 = f90y(workloads::fig_section21_f77());
    let e90 = f90y(workloads::fig_section21_f90());
    let r77 = e77
        .session(Target::Cm2 { nodes: 32 })
        .run()
        .unwrap()
        .into_cm2();
    let r90 = e90
        .session(Target::Cm2 { nodes: 32 })
        .run()
        .unwrap()
        .into_cm2();
    assert_eq!(
        r77.finals.final_array("k").unwrap(),
        r90.finals.final_array("k").unwrap()
    );
    assert_eq!(
        r77.finals.final_array("l").unwrap(),
        r90.finals.final_array("l").unwrap()
    );
    // And the F90 form is far cheaper: whole-array statements dispatch
    // node code, the dusty-deck loops run element-at-a-time on the host.
    assert!(
        r90.elapsed_seconds < r77.elapsed_seconds,
        "data-parallel form must be faster: {} vs {}",
        r90.elapsed_seconds,
        r77.elapsed_seconds
    );
}

#[test]
fn every_paper_figure_validates_on_the_machine() {
    for src in [
        workloads::fig7_source().to_string(),
        workloads::fig9_source().to_string(),
        workloads::fig10_source().to_string(),
        workloads::fig12_source(16),
    ] {
        f90y(&src).validate().unwrap();
    }
}

#[test]
fn all_three_pipelines_agree_on_every_workload() {
    for src in [
        workloads::swe_source(16, 2),
        workloads::heat_source(16, 3),
        workloads::life_source(16, 2),
    ] {
        let mut reference: Option<Vec<(String, f90y_backend::fe::Final)>> = None;
        for p in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
            let exe = Compiler::new(p).compile(&src).unwrap();
            let run = exe
                .session(Target::Cm2 { nodes: 16 })
                .run()
                .unwrap()
                .into_cm2();
            let mut finals: Vec<(String, f90y_backend::fe::Final)> = run
                .finals
                .finals()
                .iter()
                .filter(|(k, _)| !k.starts_with("tmp"))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            finals.sort_by(|a, b| a.0.cmp(&b.0));
            match &reference {
                None => reference = Some(finals),
                Some(r) => assert_eq!(r, &finals, "{} disagrees", p.name()),
            }
        }
    }
}

#[test]
fn results_are_node_count_invariant() {
    let exe = f90y(&workloads::swe_source(32, 2));
    let mut previous: Option<Vec<f64>> = None;
    for nodes in [1usize, 2, 16, 128, 2048] {
        let run = exe.session(Target::Cm2 { nodes }).run().unwrap().into_cm2();
        let p = run.finals.final_array("p").unwrap();
        if let Some(prev) = &previous {
            assert_eq!(prev, &p, "results changed at {nodes} nodes");
        }
        previous = Some(p);
    }
}

#[test]
fn performance_ordering_holds_at_scale() {
    let src = workloads::swe_source(256, 2);
    let mut gflops = Vec::new();
    for p in [Pipeline::F90y, Pipeline::Cmf, Pipeline::StarLisp] {
        let exe = Compiler::new(p).compile(&src).unwrap();
        gflops.push(
            exe.session(Target::Cm2 { nodes: 2048 })
                .run()
                .unwrap()
                .gflops(),
        );
    }
    assert!(
        gflops[0] > gflops[1] && gflops[1] > gflops[2],
        "F90-Y > CMF > *Lisp must hold: {gflops:?}"
    );
}

#[test]
fn more_nodes_are_never_slower() {
    let exe = f90y(&workloads::swe_source(128, 2));
    let mut last = f64::INFINITY;
    for nodes in [16usize, 64, 256, 1024] {
        let t = exe
            .session(Target::Cm2 { nodes })
            .run()
            .unwrap()
            .elapsed_seconds();
        assert!(
            t <= last * 1.0001,
            "scaling regressed at {nodes} nodes: {t} vs {last}"
        );
        last = t;
    }
}

#[test]
fn larger_problems_sustain_higher_gflops() {
    // The VP-ratio effect: overheads amortise over longer subgrid loops.
    let mut last = 0.0;
    for n in [64usize, 128, 256] {
        let exe = f90y(&workloads::swe_source(n, 2));
        let g = exe
            .session(Target::Cm2 { nodes: 2048 })
            .run()
            .unwrap()
            .gflops();
        assert!(
            g > last,
            "GFLOPS must grow with problem size: {g} vs {last}"
        );
        last = g;
    }
}

// ---------------------------------------------------------------------
// Cross-crate plumbing
// ---------------------------------------------------------------------

#[test]
fn peac_listings_round_trip_the_figure_notation() {
    let exe = f90y(&workloads::fig12_source(16));
    let listing = exe.compiled.listings();
    // Fig. 12 notation elements.
    assert!(listing.contains("flodv [aP"));
    assert!(listing.contains("]1++"));
    assert!(listing.contains("jnz ac2"));
    assert!(listing.contains("fdivv"));
}

#[test]
fn transform_report_reflects_swe_structure() {
    let exe = f90y(&workloads::swe_source(32, 2));
    // 17 shifts per step appear once in the loop body: hoisted temps.
    assert!(
        exe.report.comm_temps >= 14,
        "temps: {}",
        exe.report.comm_temps
    );
    // The three update stages fuse into a few blocks.
    assert!(exe.report.blocks_after >= 1);
    assert!(exe.compiled.blocks.len() <= 12);
}

#[test]
fn cm5_estimates_are_consistent_with_cm2_results() {
    let exe = f90y(&workloads::heat_source(64, 2));
    let cm2 = exe
        .session(Target::Cm2 { nodes: 256 })
        .run()
        .unwrap()
        .into_cm2();
    let (run5, stats5) = f90y_mimd::run_and_estimate(&exe.compiled, 256).unwrap();
    assert_eq!(
        cm2.finals.final_array("t").unwrap(),
        run5.final_array("t").unwrap()
    );
    assert!(stats5.gflops() > 0.0);
}

// ---------------------------------------------------------------------
// Telemetry: pass timings, counters, simulator cycle attribution
// ---------------------------------------------------------------------

#[test]
fn telemetry_covers_every_stage_and_round_trips() {
    use f90y_core::{Telemetry, TelemetryReport};

    let mut tel = Telemetry::new();
    let src = workloads::swe_source(32, 2);
    let exe = Compiler::new(Pipeline::F90y)
        .compile_with(&src, &mut tel)
        .expect("compiles");
    exe.session(Target::Cm2 { nodes: 64 })
        .telemetry(&mut tel)
        .run()
        .expect("runs");
    let report = tel.report();

    // Every pipeline stage ran inside a span with a nonzero duration.
    for stage in [
        "compile",
        "compile.frontend.parse",
        "compile.lowering",
        "compile.transform",
        "compile.backend",
        "run",
    ] {
        let nanos = report
            .span_nanos(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing from telemetry spans"));
        assert!(nanos > 0, "stage {stage} has zero duration");
    }

    // At least 8 distinct named counters spanning the frontend,
    // transform, backend and simulator layers (the acceptance floor).
    for counter in [
        "frontend.tokens",
        "frontend.ast_stmts",
        "transform.comm_temps",
        "transform.blocks_after",
        "backend.pe.madds_fused",
        "backend.pe.instructions",
        "backend.node_blocks",
        "sim.compute_cycles",
        "sim.comm_cycles",
        "sim.dispatches",
    ] {
        assert!(
            report.counter(counter).is_some(),
            "counter {counter} missing"
        );
    }
    assert!(report.counter("frontend.tokens").unwrap() > 0);
    assert!(report.counter("sim.compute_cycles").unwrap() > 0);
    assert!(report.gauge("backend.pe.vreg_pressure").unwrap() > 0.0);

    // Per-phase simulator cycle attribution sums exactly to the
    // category totals — no lost or double-counted cycles.
    for category in [
        "compute_cycles",
        "comm_cycles",
        "dispatch_overhead_cycles",
        "host_cycles",
    ] {
        let total = report.counter(&format!("sim.{category}")).unwrap();
        let attributed: u64 = report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("sim.phase.") && k.ends_with(&format!(".{category}")))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            attributed, total,
            "sim.phase.*.{category} must sum to sim.{category}"
        );
    }

    // The JSON report round-trips exactly.
    let parsed = TelemetryReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(parsed, report);
}

#[test]
fn disabled_telemetry_is_a_true_no_op() {
    use f90y_core::Telemetry;

    let mut tel = Telemetry::disabled();
    let src = workloads::heat_source(32, 2);
    let exe = Compiler::new(Pipeline::F90y)
        .compile_with(&src, &mut tel)
        .expect("compiles");
    let instrumented = exe
        .session(Target::Cm2 { nodes: 32 })
        .telemetry(&mut tel)
        .run()
        .expect("runs")
        .into_cm2();
    let report = tel.report();
    assert!(report.spans.is_empty());
    assert!(report.counters.is_empty());
    assert!(report.gauges.is_empty());

    // And the results are identical to the uninstrumented path.
    let plain = f90y(&src)
        .session(Target::Cm2 { nodes: 32 })
        .run()
        .expect("runs")
        .into_cm2();
    assert_eq!(plain.stats, instrumented.stats);
    assert_eq!(
        plain.finals.final_array("t").unwrap(),
        instrumented.finals.final_array("t").unwrap()
    );
}

#[test]
fn errors_surface_with_positions() {
    let err = Compiler::new(Pipeline::F90y)
        .compile("REAL a(4)\na = b + 1\n")
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("undeclared"), "{text}");
    assert!(text.contains("2:"), "position missing: {text}");
}

#[test]
fn shape_errors_are_static_not_dynamic() {
    let err = Compiler::new(Pipeline::F90y)
        .compile("REAL a(4), b(8)\na = b\n")
        .unwrap_err();
    assert!(err.to_string().contains("shape"), "{err}");
}
