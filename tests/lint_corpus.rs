//! The `--lint` negative-test corpus and the zero-false-positive sweep.
//!
//! Each seeded source under `tests/lint/` must produce *exactly* its
//! intended warning codes, and every shipped workload and paper figure
//! must lint clean — the diagnostics are only useful if the warnings
//! mean something and the clean programs stay quiet. Data-flow codes
//! run on the lowered NIR (`Compiler::lint`); the communication codes
//! (`W-WIDE-HALO`, `W-REDUNDANT-COMM`, `W-ALLTOALL`) run on the
//! optimized NIR against a target topology (`Compiler::lint_comm`),
//! exactly as `f90yc --lint` merges them.
//!
//! The third `W-RACE` rule (two `WHERE` branches with provably
//! overlapping masks writing the same section) cannot be seeded from
//! source: lowering emits complementary `m` / `.NOT. m` masks for
//! `WHERE`/`ELSEWHERE`, which the rule deliberately exempts. It is
//! covered by the `f90y-analysis` unit tests on hand-built NIR.

use f90y_core::{workloads, Compiler, Pipeline, Topology, WarnCode};

fn lint(source: &str) -> f90y_core::LintReport {
    Compiler::new(Pipeline::F90y)
        .lint(source)
        .expect("corpus sources must parse and lower")
}

/// The warning codes of a report, in diagnostic order.
fn codes(source: &str) -> Vec<WarnCode> {
    lint(source).diagnostics.iter().map(|d| d.code).collect()
}

/// The communication warning codes of the optimized program under a
/// target topology, in diagnostic order.
fn comm_codes(source: &str, topology: Topology) -> Vec<WarnCode> {
    Compiler::new(Pipeline::F90y)
        .lint_comm(source, topology)
        .expect("corpus sources must compile through the middle end")
        .iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn self_shift_race_is_flagged() {
    assert_eq!(
        codes(include_str!("lint/race_self_shift.f90")),
        vec![WarnCode::Race]
    );
}

#[test]
fn misaligned_section_race_is_flagged() {
    assert_eq!(
        codes(include_str!("lint/race_section.f90")),
        vec![WarnCode::Race]
    );
}

#[test]
fn masked_self_shift_race_is_flagged() {
    assert_eq!(
        codes(include_str!("lint/race_where_shift.f90")),
        vec![WarnCode::Race]
    );
}

#[test]
fn uninitialised_scalar_read_is_flagged() {
    let report = lint(include_str!("lint/uninit_scalar.f90"));
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>(),
        vec![WarnCode::Uninit]
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.var, "s");
    assert!(
        d.stmt.as_deref().is_some_and(|s| s.contains("MOVE")),
        "the diagnostic must carry the offending statement, got {:?}",
        d.stmt
    );
}

#[test]
fn dead_store_is_flagged() {
    let report = lint(include_str!("lint/deadstore.f90"));
    assert_eq!(
        report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>(),
        vec![WarnCode::DeadStore]
    );
    assert_eq!(report.diagnostics[0].var, "x");
}

#[test]
fn wide_halo_is_flagged() {
    let src = include_str!("lint/wide_halo.f90");
    assert_eq!(
        comm_codes(src, Topology::Hypercube),
        vec![WarnCode::WideHalo]
    );
    // The width mismatch is a topology-independent structural fact.
    assert_eq!(comm_codes(src, Topology::FatTree), vec![WarnCode::WideHalo]);
    assert!(codes(src).is_empty(), "no data-flow warnings expected");
}

#[test]
fn redundant_comm_is_flagged() {
    let src = include_str!("lint/redundant_comm.f90");
    assert_eq!(
        comm_codes(src, Topology::Hypercube),
        vec![WarnCode::RedundantComm]
    );
    assert!(codes(src).is_empty(), "no data-flow warnings expected");
}

#[test]
fn alltoall_is_flagged_on_the_hypercube_only() {
    let src = include_str!("lint/alltoall.f90");
    assert_eq!(
        comm_codes(src, Topology::Hypercube),
        vec![WarnCode::AllToAll]
    );
    // A fat tree or a host bus absorbs the transpose: same program,
    // quiet plan — the warning is topology-conditional by design.
    assert!(comm_codes(src, Topology::FatTree).is_empty());
    assert!(comm_codes(src, Topology::HostBus).is_empty());
    assert!(codes(src).is_empty(), "no data-flow warnings expected");
}

#[test]
fn seeded_diagnostics_render_their_codes() {
    let report = lint(include_str!("lint/race_self_shift.f90"));
    let text = report.diagnostics[0].to_string();
    assert!(text.contains("warning[W-RACE]"), "got: {text}");
}

#[test]
fn clean_corpus_file_is_clean() {
    assert!(lint(include_str!("lint/clean_stencil.f90")).is_clean());
}

/// The zero-false-positive sweep: every shipped workload generator,
/// paper figure and example source must lint clean.
#[test]
fn shipped_sources_lint_clean() {
    let sources: Vec<(String, String)> = vec![
        ("swe".into(), workloads::swe_source(8, 2)),
        ("heat".into(), workloads::heat_source(8, 3)),
        ("life".into(), workloads::life_source(8, 2)),
        ("redblack".into(), workloads::redblack_source(8, 2)),
        ("fig_2_1_f77".into(), workloads::fig_section21_f77().into()),
        ("fig_2_1_f90".into(), workloads::fig_section21_f90().into()),
        ("fig7".into(), workloads::fig7_source().into()),
        ("fig9".into(), workloads::fig9_source().into()),
        ("fig10".into(), workloads::fig10_source().into()),
        ("fig12".into(), workloads::fig12_source(8)),
        (
            "quickstart".into(),
            "INTEGER K(64,64)\nK = 2*K + 5\n".into(),
        ),
    ];
    for (name, src) in sources {
        let report = lint(&src);
        assert!(
            report.is_clean(),
            "{name} must lint clean, got: {:#?}",
            report.diagnostics
        );
        assert!(report.stmts_analyzed > 0, "{name} analysed no statements");
        // The communication codes must stay quiet too, under every
        // topology a shipped manifest declares — zero false positives.
        for topology in [Topology::Hypercube, Topology::FatTree, Topology::HostBus] {
            let comm = Compiler::new(Pipeline::F90y)
                .lint_comm(&src, topology)
                .expect("shipped sources compile");
            assert!(
                comm.is_empty(),
                "{name} must produce no comm warnings under {topology}: {comm:#?}"
            );
        }
    }
}
