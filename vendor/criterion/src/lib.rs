//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors just enough of criterion's API for `cargo bench`:
//! benchmark groups, `bench_function`/`bench_with_input`, and a
//! `Bencher` that reports per-iteration wall-clock means. There is no
//! statistical analysis, outlier rejection or HTML report — one line of
//! output per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Time a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A benchmark identifier: `group_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time a benchmark over an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Time a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {}
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iterations: 0,
        sample_size,
    };
    f(&mut b);
    let mean_ns = if b.iterations == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iterations as f64
    };
    println!(
        "{name:<40} {:>12} / iter ({} iterations)",
        format_ns(mean_ns),
        b.iterations
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// The bench entry point: run every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                ran += x;
                ran
            })
        });
        g.finish();
        assert!(ran >= 5 * 3);
    }
}
