//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors just enough of proptest's API for the repository's
//! property suites: strategies over ranges, tuples, collections and
//! simple regex-like string patterns, the `proptest!`/`prop_assert!`
//! macro family, and a deterministic case runner. There is no shrinking
//! and no failure persistence — a failing case panics with its inputs so
//! it can be reproduced by hand.

use std::cell::RefCell;
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------

/// A small deterministic generator; seeded per test from the test name
/// so runs are reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of values. Unlike real proptest there is no shrink tree;
/// `generate` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Recursive strategies: `recurse` receives the strategy built so
    /// far and returns a deeper one; leaves stay reachable at every
    /// level so generation terminates.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth.max(1) {
            let branch = recurse(strat.clone()).boxed();
            let l = leaf.clone();
            strat = BoxedStrategy::from_fn(move |rng| {
                // Lean toward branches but keep leaves reachable.
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union of the given alternatives (must be nonempty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len() as u64) as usize;
        self.0[ix].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $ix:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------
// Regex-ish string strategies
// ---------------------------------------------------------------------

/// String patterns: a single character class (`[ a-z0-9]`, or `\PC` for
/// printable characters) followed by an optional `*` or `{m,n}`
/// quantifier. This covers the patterns the repository's suites use;
/// anything unrecognised generates from the printable-ASCII class.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, rest) = parse_class(self);
        let (lo, hi) = parse_quantifier(rest);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_class(pattern: &str) -> (Vec<char>, &str) {
    if let Some(rest) = pattern.strip_prefix("\\PC") {
        // "Any printable character": printable ASCII plus a few
        // multibyte characters to keep lexers honest.
        let mut class: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
        class.extend(['é', 'λ', '→', '\u{00a0}']);
        return (class, rest);
    }
    if let Some(body) = pattern.strip_prefix('[') {
        if let Some(close) = body.find(']') {
            let mut class = Vec::new();
            let chars: Vec<char> = body[..close].chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                    for c in a..=b {
                        if let Some(c) = char::from_u32(c) {
                            class.push(c);
                        }
                    }
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            return (class, &body[close + 1..]);
        }
    }
    ((0x20u8..0x7f).map(char::from).collect(), "")
}

fn parse_quantifier(rest: &str) -> (usize, usize) {
    if rest == "*" {
        return (0, 48);
    }
    if let Some(body) = rest.strip_prefix('{') {
        if let Some(close) = body.find('}') {
            let spec = &body[..close];
            let mut parts = spec.splitn(2, ',');
            let lo = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let hi = parts
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(lo.max(1));
            return (lo, hi.max(lo));
        }
    }
    if rest.is_empty() {
        (1, 1)
    } else {
        (0, 48)
    }
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Build the canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::from_fn(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::from_fn(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// A strategy for vectors whose elements come from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng: &mut TestRng| {
            let len = size.lo + rng.below((size.hi - size.lo + 1) as u64) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// Per-test configuration (only `cases` matters here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; unused.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
            max_local_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs were rejected (e.g. by `prop_assume!`); it is
    /// skipped, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

thread_local! {
    static CASE_DESCRIPTION: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Record the current case's inputs so a panic can report them
/// (used by the `proptest!` expansion).
pub fn set_case_description(desc: String) {
    CASE_DESCRIPTION.with(|d| *d.borrow_mut() = desc);
}

/// The recorded inputs of the case being run.
pub fn case_description() -> String {
    CASE_DESCRIPTION.with(|d| d.borrow().clone())
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-definition macro: each `fn name(x in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written at the use site, as
/// with real proptest) running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} of {} failed: {msg}\n  inputs: {inputs}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = (3i32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn char_classes_parse() {
        let mut rng = TestRng::from_name("classes");
        for _ in 0..100 {
            let s = "[ a-c0-2]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| " abc012".contains(c)));
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..100 {
            let v = collection::vec(0i32..5, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
        let v = collection::vec(0i32..5, 6usize).generate(&mut rng);
        assert_eq!(v.len(), 6);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_round_trips(x in 0i32..100, flip in any::<bool>()) {
            prop_assert!(x >= 0);
            prop_assert_eq!(flip, flip);
            if flip {
                return Ok(());
            }
            prop_assert_ne!(x, -1);
        }
    }

    #[test]
    fn recursion_terminates() {
        let leaf = (0i32..5).prop_map(|v| v.to_string());
        let expr = leaf.prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = TestRng::from_name("recursion");
        for _ in 0..50 {
            let s = expr.generate(&mut rng);
            assert!(!s.is_empty());
        }
    }
}
